"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` (and ``python setup.py develop``) works on older
environments without the ``wheel`` package, where PEP 660 editable installs
are unavailable.
"""

from setuptools import setup

setup()
