"""Unit tests for workloads (specs, PyAES kernel, traffic generators)."""

import pytest

from repro.workloads.functions import (
    MINIMAL_FUNCTION,
    PYAES_FUNCTION,
    VIDEO_PROCESSING_FUNCTION,
    WORKLOAD_CATALOG,
    WorkloadSpec,
    get_workload,
)
from repro.workloads.pyaes import aes_ctr_keystream, measure_pyaes_cpu_seconds, pyaes_workload
from repro.workloads.traffic import (
    burst_arrivals,
    constant_rate_arrivals,
    idle_gap_probe_arrivals,
    poisson_arrivals,
)


class TestWorkloadSpecs:
    def test_catalog_contains_paper_workloads(self):
        assert {"minimal", "pyaes", "pyaes_short", "video_processing", "io_bound"} <= set(WORKLOAD_CATALOG)

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_pyaes_cpu_time_matches_paper(self):
        """§3.1: PyAES takes ~160 ms of CPU per request at 1 vCPU."""
        assert PYAES_FUNCTION.cpu_time_s == pytest.approx(0.160)

    def test_minimal_function_is_tiny(self):
        assert MINIMAL_FUNCTION.cpu_time_s < 1e-3

    def test_video_workload_decomposable(self):
        assert VIDEO_PROCESSING_FUNCTION.decomposable_chunks > 1
        chunks = VIDEO_PROCESSING_FUNCTION.chunk_cpu_times()
        assert sum(chunks) == pytest.approx(VIDEO_PROCESSING_FUNCTION.cpu_time_s)

    def test_to_function_config(self):
        config = PYAES_FUNCTION.to_function_config(0.5, 1.0, init_duration_s=2.0)
        assert config.alloc_vcpus == 0.5
        assert config.service_time_s == pytest.approx(0.160 / 0.5)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", cpu_time_s=-1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", cpu_time_s=0.1, decomposable_chunks=0)


class TestPyAes:
    def test_keystream_length(self):
        stream = aes_ctr_keystream(b"0123456789abcdef", nonce=0, num_blocks=3)
        assert len(stream) == 48

    def test_keystream_deterministic(self):
        a = aes_ctr_keystream(b"0123456789abcdef", nonce=7, num_blocks=2)
        b = aes_ctr_keystream(b"0123456789abcdef", nonce=7, num_blocks=2)
        assert a == b

    def test_different_nonce_different_stream(self):
        a = aes_ctr_keystream(b"0123456789abcdef", nonce=1, num_blocks=1)
        b = aes_ctr_keystream(b"0123456789abcdef", nonce=2, num_blocks=1)
        assert a != b

    def test_known_fips197_vector(self):
        """AES-128 single-block known-answer test (FIPS-197 appendix C.1 style vector)."""
        key = bytes(range(16))
        # Encrypting the counter block 000102...0f equals the classic FIPS vector
        # when the "nonce" encodes that block value.
        nonce = int.from_bytes(bytes(range(16)), "big")
        stream = aes_ctr_keystream(key, nonce=nonce, num_blocks=1)
        assert stream.hex() == "0a940bb5416ef045f1c39458c653ea5a"

    def test_encryption_round_trip(self):
        message = b"serverless costs demystified" * 3
        ciphertext = pyaes_workload(message)
        assert ciphertext != message
        assert pyaes_workload(ciphertext) == message  # CTR is an involution with the same keystream

    def test_invalid_key_length(self):
        with pytest.raises(ValueError):
            aes_ctr_keystream(b"short", nonce=0, num_blocks=1)

    def test_measure_cpu_seconds_positive(self):
        assert measure_pyaes_cpu_seconds(message_size_bytes=256, repetitions=1) > 0

    def test_measure_invalid_args(self):
        with pytest.raises(ValueError):
            measure_pyaes_cpu_seconds(message_size_bytes=0)


class TestTraffic:
    def test_constant_rate_count_and_spacing(self):
        arrivals = constant_rate_arrivals(10, 2.0)
        assert len(arrivals) == 20
        assert arrivals[1] - arrivals[0] == pytest.approx(0.1)

    def test_constant_rate_invalid(self):
        with pytest.raises(ValueError):
            constant_rate_arrivals(0, 1.0)

    def test_poisson_mean_rate(self):
        arrivals = poisson_arrivals(50, 20.0, seed=1)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)
        assert all(0 <= t < 20.0 for t in arrivals)

    def test_poisson_deterministic_by_seed(self):
        assert poisson_arrivals(5, 10.0, seed=3) == poisson_arrivals(5, 10.0, seed=3)

    def test_burst_deterministic_or_poisson(self):
        assert len(burst_arrivals(2.0, 10.0)) == 20
        assert burst_arrivals(2.0, 10.0, seed=1) != burst_arrivals(2.0, 10.0)

    def test_idle_gap_probes(self):
        arrivals = idle_gap_probe_arrivals([10.0, 20.0, 30.0])
        assert arrivals == [0.0, 10.0, 30.0]

    def test_idle_gap_negative_rejected(self):
        with pytest.raises(ValueError):
            idle_gap_probe_arrivals([-1.0])
