"""Overhead guard: obs off adds *nothing*; obs on changes *no result byte*.

Two halves of the observability contract:

- detached (``obs=None``, every default): no bus subscribers, no profiler
  hooks, no telemetry process -- the hot paths take the exact pre-obs branch;
- attached: collectors subscribe and sample, but because they only read, the
  simulation's summary, fleet timeline, queue tail and invoice are
  byte-identical to the same seed without them.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.obs import Observability
from repro.obs.telemetry import TelemetryProcess
from repro.platform.presets import get_platform_preset
from repro.sim.events import (
    RequestArrived,
    RequestCompleted,
    RequestExecuting,
    RequestFailed,
    RetryScheduled,
)
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION


def _build(seed, *, obs=None, retry=None, feedback="off", queue_depth=0):
    preset = get_platform_preset("gcp_run_like")
    deployments = []
    for index in range(2):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=4.0, duration_s=6.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=1.0, memory_gb=2.0),
            max_hosts=1,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="gcp_run_request",
        seed=seed,
        feedback=feedback,
        retry=retry,
        obs=obs,
    )


def _fingerprint(result):
    return json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "queue": [entry.sandbox_name for entry in result.fleet.queue],
            "unplaceable": result.fleet.unplaceable,
        },
        sort_keys=True,
    ).encode()


class TestDetachedAddsNothing:
    def test_no_bus_subscribers_for_obs_events(self):
        simulator = _build(1)
        for event_type in (
            RequestArrived,
            RequestExecuting,
            RetryScheduled,
        ):
            assert simulator.bus.subscriber_count(event_type) == 0

    def test_no_profiler_installed(self):
        simulator = _build(1)
        assert simulator.kernel._profiler is None
        assert simulator.bus._profiler is None

    def test_no_telemetry_process(self):
        simulator = _build(1)
        assert not any(
            isinstance(process, TelemetryProcess) for process in simulator.kernel._processes
        )

    def test_per_request_events_not_even_published(self):
        """Without a collector the invoker skips the span publishes entirely."""
        hits = []
        simulator = _build(2)
        simulator.bus.subscribe(RequestArrived, hits.append)
        simulator.bus.subscribe(RequestExecuting, hits.append)
        result = simulator.run()
        assert sum(m.num_requests for m in result.metrics.values()) > 0
        assert hits == []

    def test_attached_observability_subscribes(self):
        simulator = _build(3, obs=Observability())
        assert simulator.bus.subscriber_count(RequestArrived) > 0
        assert simulator.bus.subscriber_count(RequestCompleted) > 0
        assert simulator.bus.subscriber_count(RequestFailed) > 0


class TestAttachedIsByteInvisible:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        feedback=st.sampled_from(["off", "on"]),
    )
    def test_plain_config_byte_identical(self, seed, feedback):
        plain = _fingerprint(_build(seed, feedback=feedback).run())
        observed = _fingerprint(
            _build(seed, feedback=feedback, obs=Observability()).run()
        )
        assert plain == observed

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_retry_config_byte_identical(self, seed):
        """The hardest case: retries re-inject events and bill by attempt."""
        retry = RetryPolicy(max_attempts=3)
        plain_result = _build(seed, retry=retry, feedback="on", queue_depth=2).run()
        observed_result = _build(
            seed, retry=retry, feedback="on", queue_depth=2, obs=Observability()
        ).run()
        assert _fingerprint(plain_result) == _fingerprint(observed_result)
        plain_invoice = sorted(plain_result.meter.cost_usd_by_attempt.items())
        observed_invoice = sorted(observed_result.meter.cost_usd_by_attempt.items())
        assert plain_invoice == observed_invoice

    def test_trace_collector_alone_is_byte_invisible(self):
        """Satellite contract: a bare TraceCollector keeps runs byte-identical."""
        seed = 20260
        plain = _fingerprint(_build(seed, feedback="on").run())
        obs = Observability(telemetry_interval_s=None, profile=False)
        observed = _fingerprint(_build(seed, feedback="on", obs=obs).run())
        assert plain == observed
        assert len(obs.trace.spans) > 0
