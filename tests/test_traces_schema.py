"""Unit tests for the trace schema (records, validation, derived quantities)."""

import math

import pytest

from repro.traces.schema import ColdStartRecord, FunctionProfile, RequestRecord, ResourceUsage, Trace


def _request(**overrides):
    defaults = dict(
        request_id="r1",
        function_id="f1",
        pod_id="p1",
        arrival_s=0.0,
        duration_s=0.1,
        usage=ResourceUsage(cpu_seconds=0.05, memory_gb=0.2),
        alloc_vcpus=1.0,
        alloc_memory_gb=0.5,
    )
    defaults.update(overrides)
    return RequestRecord(**defaults)


class TestResourceUsage:
    def test_valid(self):
        usage = ResourceUsage(cpu_seconds=0.1, memory_gb=0.5)
        assert usage.cpu_seconds == 0.1
        assert usage.memory_gb == 0.5

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(cpu_seconds=-0.1, memory_gb=0.5)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(cpu_seconds=0.1, memory_gb=-0.5)

    def test_zero_usage_allowed(self):
        usage = ResourceUsage(cpu_seconds=0.0, memory_gb=0.0)
        assert usage.cpu_seconds == 0.0


class TestRequestRecord:
    def test_turnaround_includes_init(self):
        record = _request(cold_start=True, init_duration_s=0.4)
        assert record.turnaround_s == pytest.approx(0.5)

    def test_warm_request_turnaround_equals_duration(self):
        record = _request()
        assert record.turnaround_s == pytest.approx(record.duration_s)

    def test_cpu_utilization(self):
        record = _request()
        assert record.cpu_utilization == pytest.approx(0.05 / (1.0 * 0.1))

    def test_cpu_utilization_capped_at_one(self):
        record = _request(usage=ResourceUsage(cpu_seconds=1.0, memory_gb=0.2))
        assert record.cpu_utilization == 1.0

    def test_memory_utilization(self):
        record = _request()
        assert record.memory_utilization == pytest.approx(0.2 / 0.5)

    def test_actual_gb_seconds(self):
        record = _request()
        assert record.actual_memory_gb_seconds == pytest.approx(0.2 * 0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            _request(duration_s=-1.0)

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            _request(alloc_vcpus=0.0)

    def test_warm_request_with_init_duration_rejected(self):
        with pytest.raises(ValueError):
            _request(cold_start=False, init_duration_s=0.5)

    def test_zero_duration_utilization_is_zero(self):
        record = _request(duration_s=0.0)
        assert record.cpu_utilization == 0.0


class TestColdStartRecord:
    def test_billable_init_resources(self):
        cold = ColdStartRecord(
            pod_id="p1", function_id="f1", init_duration_s=2.0, alloc_vcpus=0.5, alloc_memory_gb=1.0
        )
        assert cold.init_cpu_seconds == pytest.approx(1.0)
        assert cold.init_memory_gb_seconds == pytest.approx(2.0)

    def test_negative_init_rejected(self):
        with pytest.raises(ValueError):
            ColdStartRecord(
                pod_id="p1", function_id="f1", init_duration_s=-1.0, alloc_vcpus=0.5, alloc_memory_gb=1.0
            )

    def test_zero_allocation_rejected(self):
        with pytest.raises(ValueError):
            ColdStartRecord(
                pod_id="p1", function_id="f1", init_duration_s=1.0, alloc_vcpus=0.0, alloc_memory_gb=1.0
            )


class TestFunctionProfile:
    def test_valid_profile(self):
        profile = FunctionProfile("f1", 1.0, 2.0, 0.05, 0.4, 0.3)
        assert profile.function_id == "f1"

    def test_utilization_bounds_enforced(self):
        with pytest.raises(ValueError):
            FunctionProfile("f1", 1.0, 2.0, 0.05, 1.4, 0.3)

    def test_positive_duration_required(self):
        with pytest.raises(ValueError):
            FunctionProfile("f1", 1.0, 2.0, 0.0, 0.4, 0.3)


class TestTrace:
    def _trace(self):
        requests = [
            _request(request_id="r1", pod_id="p1", usage=ResourceUsage(0.05, 0.2)),
            _request(request_id="r2", pod_id="p1", function_id="f2", usage=ResourceUsage(0.0, 0.2)),
            _request(request_id="r3", pod_id="p2", usage=ResourceUsage(0.01, 0.1)),
        ]
        cold = [ColdStartRecord("p1", "f1", 1.0, 1.0, 0.5)]
        return Trace(requests, cold)

    def test_len_and_iter(self):
        trace = self._trace()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_lookup_by_id(self):
        trace = self._trace()
        assert trace.request("r2").function_id == "f2"
        with pytest.raises(KeyError):
            trace.request("missing")

    def test_requests_for_function_and_pod(self):
        trace = self._trace()
        assert len(trace.requests_for_function("f1")) == 2
        assert len(trace.requests_for_pod("p1")) == 2

    def test_exclude_zero_cpu(self):
        trace = self._trace().exclude_zero_cpu()
        assert len(trace) == 2
        assert all(r.usage.cpu_seconds > 0 for r in trace)

    def test_filter_keeps_matching_cold_starts(self):
        trace = self._trace().filter(lambda r: r.pod_id == "p1")
        assert len(trace) == 2
        assert len(trace.cold_starts) == 1

    def test_summary_counts(self):
        summary = self._trace().summary()
        assert summary["num_requests"] == 3
        assert summary["num_cold_starts"] == 1

    def test_empty_trace_summary(self):
        summary = Trace([]).summary()
        assert summary["num_requests"] == 0
        assert math.isnan(summary["mean_duration_s"])

    def test_to_dicts_flattens_usage(self):
        rows = self._trace().to_dicts()
        assert rows[0]["cpu_seconds"] == pytest.approx(0.05)
        assert "usage" not in rows[0]
