"""Unit tests for pricing (Figure 1) and the §1 serverless-vs-VM comparison."""

import pytest

from repro.billing.catalog import PlatformName
from repro.billing.pricing import (
    CPU_TO_MEMORY_VALUE_RATIO,
    NON_SERVERLESS_PRICES,
    PLATFORM_PRICES,
    aws_lambda_price_per_second,
    decompose_memory_embedded_price,
    figure1_series,
    price_comparison_vs_vm,
)


class TestPriceComparison:
    def test_ec2_fraction_matches_paper(self):
        """Paper §1: EC2 c6g.medium costs 41.1% of the equivalent Lambda price."""
        comparison = price_comparison_vs_vm()
        assert comparison["ec2_fraction_of_lambda"] == pytest.approx(0.411, abs=0.005)

    def test_fargate_fraction_matches_paper(self):
        """Paper §1: Fargate costs 47.8% of the equivalent Lambda price."""
        comparison = price_comparison_vs_vm()
        assert comparison["fargate_fraction_of_lambda"] == pytest.approx(0.478, abs=0.005)

    def test_lambda_arm_price(self):
        assert NON_SERVERLESS_PRICES["aws_lambda_arm"].price_per_second == pytest.approx(2.3034e-5)


class TestAwsLambdaPrice:
    def test_96ms_fee_equivalence_basis(self):
        """The 128 MB x86 price implies the 96 ms fee equivalence of §2.5."""
        per_second = aws_lambda_price_per_second(0.125)
        assert 2e-7 / per_second == pytest.approx(0.096, rel=0.01)

    def test_arm_discount(self):
        assert aws_lambda_price_per_second(1.0, arm=True) < aws_lambda_price_per_second(1.0)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            aws_lambda_price_per_second(0.0)


class TestDecomposition:
    def test_embedded_price_split_sums_back(self):
        split = decompose_memory_embedded_price(1.6667e-5)
        memory_gb_per_vcpu = 1769.0 / 1024.0
        bundle = split["implied_memory_per_gb_second"] + split["implied_cpu_per_vcpu_second"] / memory_gb_per_vcpu
        assert bundle == pytest.approx(1.6667e-5, rel=1e-6)

    def test_ratio_preserved(self):
        split = decompose_memory_embedded_price(1.6667e-5)
        assert split["implied_cpu_per_vcpu_second"] / split["implied_memory_per_gb_second"] == pytest.approx(
            CPU_TO_MEMORY_VALUE_RATIO
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            decompose_memory_embedded_price(0.0)
        with pytest.raises(ValueError):
            decompose_memory_embedded_price(1e-5, ratio=0.0)


class TestFigure1:
    def test_all_platforms_in_series(self):
        rows = figure1_series()
        assert len(rows) == len(PLATFORM_PRICES)

    def test_per_unit_prices_similar_across_platforms(self):
        """I1: per-unit prices are broadly similar (within ~4x across platforms)."""
        rows = [r for r in figure1_series() if r["cpu_per_vcpu_second"] > 0]
        prices = [r["cpu_per_vcpu_second"] for r in rows]
        assert max(prices) / min(prices) < 4.0

    def test_ibm_cpu_memory_ratio_in_consensus_band(self):
        """§2.2: the vCPU:GB value ratio lies between 9 and 9.64 on decoupled platforms."""
        ibm = PLATFORM_PRICES[PlatformName.IBM_CODE_ENGINE]
        assert 9.0 <= ibm.cpu_per_vcpu_second / ibm.memory_per_gb_second <= 9.7

    def test_effective_price_1vcpu(self):
        aws = PLATFORM_PRICES[PlatformName.AWS_LAMBDA]
        assert aws.effective_price_1vcpu_1769mb == pytest.approx(2.8792e-5, rel=0.02)
