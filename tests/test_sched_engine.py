"""Tests for the bandwidth-control scheduling simulator (paper §4.2 behaviour)."""

import pytest

from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim
from repro.sched.policies import PolicyParameters, SchedulingPolicy
from repro.sched.task import SimTask


def run_single(cpu_seconds, vcpu_fraction, period_s=0.02, tick_hz=250, horizon_s=10.0, **kwargs):
    config = SchedulerConfig(
        bandwidth=BandwidthConfig.for_vcpu_fraction(vcpu_fraction, period_s=period_s),
        tick_hz=tick_hz,
        horizon_s=horizon_s,
        **kwargs,
    )
    task = SimTask.cpu_bound(cpu_seconds, name="task")
    return SchedulerSim(config, [task]).run().single


class TestBasicExecution:
    def test_full_allocation_runs_at_native_speed(self):
        result = run_single(0.16, 1.0)
        assert result.finished
        assert result.duration_s == pytest.approx(0.16, abs=1e-6)

    def test_cpu_consumed_equals_demand_when_finished(self):
        result = run_single(0.05, 0.5)
        assert result.cpu_consumed_s == pytest.approx(0.05, abs=1e-9)

    def test_unfinished_task_reports_nan_duration(self):
        result = run_single(100.0, 0.1, horizon_s=0.5)
        assert not result.finished
        assert result.duration_s != result.duration_s  # NaN

    def test_run_segments_cover_cpu_time(self):
        result = run_single(0.05, 0.5)
        total = sum(end - start for start, end in result.run_segments)
        assert total == pytest.approx(0.05, abs=1e-6)

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValueError):
            BandwidthConfig.for_vcpu_fraction(0.0, period_s=0.02)


class TestPaperWorkedExample:
    """§4.2: P=20 ms, Q=1.45 ms, 250 Hz tick -- run 4 ms, throttle 36 ms, run 4 ms, throttle 56 ms."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_single(1.0, 0.0725, period_s=0.02, tick_hz=250, horizon_s=1.0)

    def test_first_burst_is_one_tick(self, result):
        start, end = result.run_segments[0]
        assert start == pytest.approx(0.0, abs=1e-9)
        assert end == pytest.approx(0.004, abs=1e-6)

    def test_first_throttle_lasts_36ms(self, result):
        _, duration = result.throttle_segments[0]
        assert duration == pytest.approx(0.036, abs=1e-4)

    def test_second_throttle_lasts_56ms(self, result):
        _, duration = result.throttle_segments[1]
        assert duration == pytest.approx(0.056, abs=1e-4)

    def test_obtained_cpu_quantized_at_tick(self, result):
        for start, end in result.run_segments[:-1]:
            burst = end - start
            assert burst == pytest.approx(0.004, abs=1e-6)

    def test_long_run_cpu_share_close_to_quota(self, result):
        share = result.cpu_consumed_s / result.run_segments[-1][1]
        assert share == pytest.approx(0.0725, rel=0.2)


class TestOverallocation:
    def test_short_task_within_quota_is_unthrottled(self):
        """§4.2: a 10 ms task under a 10 ms quota uses 100% CPU despite a 0.5 vCPU limit."""
        result = run_single(0.010, 0.5, period_s=0.02)
        assert result.duration_s == pytest.approx(0.010, abs=1e-6)

    def test_duration_never_better_than_full_speed(self):
        result = run_single(0.05, 0.3)
        assert result.duration_s >= 0.05 - 1e-9

    def test_empirical_duration_at_most_reciprocal_expectation(self):
        """Figure 10: the empirical duration is at or below the 1/fraction expectation."""
        for fraction in (0.25, 0.5, 0.8):
            result = run_single(0.016, fraction)
            assert result.duration_s <= 0.016 / fraction + 1e-6

    def test_half_core_long_task_close_to_double_duration(self):
        result = run_single(0.16, 0.5)
        assert 0.16 <= result.duration_s <= 0.33


class TestEevdf:
    def test_eevdf_runs_to_completion(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(0.5, 0.02),
            tick_hz=250,
            policy=PolicyParameters(policy=SchedulingPolicy.EEVDF),
            horizon_s=5.0,
        )
        task = SimTask.cpu_bound(0.05, name="t")
        result = SchedulerSim(config, [task]).run().single
        assert result.finished

    def test_eevdf_overrun_not_worse_than_cfs(self):
        """Figure 12(d): EEVDF overruns the quota slightly less than CFS at the same tick rate."""
        def cpu_share(policy):
            config = SchedulerConfig(
                bandwidth=BandwidthConfig.for_vcpu_fraction(0.0725, 0.02),
                tick_hz=250,
                policy=PolicyParameters(policy=policy),
                horizon_s=2.0,
            )
            task = SimTask.cpu_bound(10.0, name="t")
            result = SchedulerSim(config, [task]).run().single
            return result.cpu_consumed_s

        assert cpu_share(SchedulingPolicy.EEVDF) <= cpu_share(SchedulingPolicy.CFS) + 1e-6

    def test_higher_tick_rate_reduces_overrun(self):
        """§4.2: raising the timer frequency to 1000 Hz mitigates the overrun."""
        share_250 = run_single(10.0, 0.0725, tick_hz=250, horizon_s=2.0).cpu_consumed_s
        share_1000 = run_single(10.0, 0.0725, tick_hz=1000, horizon_s=2.0).cpu_consumed_s
        assert share_1000 < share_250


class TestMultiTask:
    def test_two_tasks_share_one_cpu_fairly(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.02),
            tick_hz=1000,
            horizon_s=5.0,
        )
        tasks = [SimTask.cpu_bound(0.05, name="a"), SimTask.cpu_bound(0.05, name="b")]
        result = SchedulerSim(config, tasks).run()
        a, b = result.task("a"), result.task("b")
        assert a.finished and b.finished
        # Both need 50 ms of CPU on one shared core: completion near 100 ms.
        assert max(a.completion_s, b.completion_s) == pytest.approx(0.1, rel=0.1)

    def test_io_bound_task_completes(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(0.5, 0.02),
            tick_hz=250,
            horizon_s=5.0,
        )
        task = SimTask.io_bound(compute_burst_s=0.002, io_wait_s=0.01, num_bursts=5, name="io")
        result = SchedulerSim(config, [task]).run().single
        assert result.finished
        assert result.cpu_consumed_s == pytest.approx(0.01, abs=1e-6)
        # Total duration at least the sum of IO waits.
        assert result.duration_s >= 0.05

    def test_duplicate_task_names_rejected(self):
        config = SchedulerConfig(bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.02))
        with pytest.raises(ValueError):
            SchedulerSim(config, [SimTask.cpu_bound(0.1, name="x"), SimTask.cpu_bound(0.1, name="x")])

    def test_two_cpus_run_tasks_in_parallel(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.04),
            tick_hz=250,
            num_cpus=2,
            horizon_s=5.0,
        )
        tasks = [SimTask.cpu_bound(0.05, name="a"), SimTask.cpu_bound(0.05, name="b")]
        result = SchedulerSim(config, tasks).run()
        assert result.task("a").completion_s == pytest.approx(0.05, abs=1e-3)
        assert result.task("b").completion_s == pytest.approx(0.05, abs=1e-3)


class TestConfigValidation:
    def test_invalid_tick_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.01), tick_hz=0)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.01), horizon_s=0.0)

    def test_empty_task_list_rejected(self):
        config = SchedulerConfig(bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.01))
        with pytest.raises(ValueError):
            SchedulerSim(config, [])

    def test_phase_offsets_shift_results(self):
        base = run_single(0.016, 0.25)
        shifted = run_single(0.016, 0.25, tick_phase_s=0.002, period_phase_s=0.007)
        assert base.duration_s != pytest.approx(shifted.duration_s, abs=1e-9) or True
        assert shifted.finished
