"""Golden-file regression pin for one retry-on backpressure scenario.

The retry loop touches every layer at once: serving (re-injected arrivals),
fleet (amplified cold starts through admission gating), feedback (queue-wait
deferred readiness), billing (per-attempt invoices) and the summary columns.
Property tests bound its behaviour; this test *freezes* it: one saturated,
queue-draining, retry-on co-simulation's full summary row and per-attempt
invoice breakdown are pinned into ``tests/golden/retry/`` and compared
**float-exact** (JSON stores the shortest round-tripping ``repr`` of each
double), so any change to retry arithmetic, event ordering or billing must
touch the golden deliberately.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_retry_golden.py
"""

import dataclasses
import json
import pathlib

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.platform.presets import get_platform_preset
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "retry"
GOLDEN_PATH = GOLDEN_DIR / "backpressure_retry.json"

#: Frozen scenario identity: changing any of these invalidates the golden.
SEED = 20260730
RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_backoff_s=0.25,
    backoff_multiplier=2.0,
    max_backoff_s=30.0,
    jitter=0.2,
)


def _scenario() -> ClusterSimulator:
    """A capacity-bound, queue-draining, closed-loop cluster with retries on.

    Single-concurrency platform (rejections deterministically fail requests),
    a one-host fleet that saturates immediately, a short keep-alive so
    evictions drain the admission queue mid-run, and an offered load well
    above capacity -- every retry mechanism (backoff, re-admission, queueing,
    give-up, per-attempt billing) fires within the run.
    """
    preset = get_platform_preset("aws_lambda_like")
    preset = dataclasses.replace(
        preset,
        keep_alive=dataclasses.replace(
            preset.keep_alive, min_keep_alive_s=1.0, max_keep_alive_s=1.0
        ),
    )
    deployments = []
    for index in range(3):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=5.0, duration_s=6.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=2.0, memory_gb=4.0),
            max_hosts=1,
            queue_depth=4,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=SEED,
        feedback="on",
        retry=RETRY_POLICY,
    )


def _snapshot() -> dict:
    simulator = _scenario()
    result = simulator.run()
    meter = result.meter
    return {
        "seed": SEED,
        "summary": result.summary(),
        # Each billed attempt invoiced separately: the user-side cost of
        # retry amplification, keyed by attempt number.
        "invoice_by_attempt": {
            str(attempt): cost
            for attempt, cost in sorted(meter.cost_usd_by_attempt.items())
        },
        "retries_scheduled": simulator.retry.retries_scheduled,
        "gave_up": simulator.retry.gave_up,
    }


def test_retry_backpressure_scenario_matches_golden_float_exact():
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        "'PYTHONPATH=src python tests/test_retry_golden.py'"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _snapshot()
    # Field-by-field == on floats: bit-exact, no tolerance.  A failure here
    # means retry timing, event ordering or billing arithmetic changed.
    assert current == golden


def test_golden_scenario_exercises_every_retry_mechanism():
    """The pin is only worth its bytes if the scenario is non-trivial."""
    snapshot = _snapshot()
    summary = snapshot["summary"]
    assert summary["retried_requests"] > 0
    assert summary["gave_up_requests"] > 0
    assert summary["retry_amplification"] > 1.0
    assert summary["admitted_from_queue"] > 0  # the queue genuinely drained
    assert len(snapshot["invoice_by_attempt"]) >= 2  # retried attempts billed


def regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_snapshot(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
