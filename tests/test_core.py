"""Tests for the core cost framework: cost model, decomposition, exploits, right-sizing, report."""

import pytest

from repro.billing.catalog import PlatformName
from repro.core.cost_model import CostModel
from repro.core.decomposition import decompose_invocation_cost
from repro.core.exploit import evaluate_intermittent_execution, evaluate_keepalive_background_task
from repro.core.report import format_value, render_table, to_markdown_table
from repro.core.rightsizing import RightsizingAdvisor
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import PYAES_FUNCTION, VIDEO_PROCESSING_FUNCTION, get_workload


class TestCostModel:
    def test_full_allocation_duration_is_cpu_time(self):
        model = CostModel(PlatformName.AWS_LAMBDA)
        assert model.execution_duration_s(PYAES_FUNCTION, 1.0) == pytest.approx(0.160)

    def test_fractional_allocation_without_scheduler_is_reciprocal(self):
        model = CostModel(PlatformName.AWS_LAMBDA)
        assert model.execution_duration_s(PYAES_FUNCTION, 0.5) == pytest.approx(0.320)

    def test_scheduling_provider_changes_duration(self):
        plain = CostModel(PlatformName.AWS_LAMBDA)
        scheduled = CostModel(PlatformName.AWS_LAMBDA, scheduling_provider="aws_lambda")
        assert scheduled.execution_duration_s(PYAES_FUNCTION, 0.3) != pytest.approx(
            plain.execution_duration_s(PYAES_FUNCTION, 0.3)
        )

    def test_serving_platform_adds_overhead(self):
        gcp = get_platform_preset("gcp_run_like")
        with_serving = CostModel(PlatformName.GCP_RUN_REQUEST, serving_platform=gcp)
        without = CostModel(PlatformName.GCP_RUN_REQUEST)
        assert with_serving.execution_duration_s(PYAES_FUNCTION, 1.0) > without.execution_duration_s(
            PYAES_FUNCTION, 1.0
        )

    def test_concurrency_slowdown_applied(self):
        gcp = get_platform_preset("gcp_run_like")
        model = CostModel(PlatformName.GCP_RUN_REQUEST, serving_platform=gcp)
        assert model.execution_duration_s(PYAES_FUNCTION, 1.0, concurrent_requests=4) > 3 * (
            model.execution_duration_s(PYAES_FUNCTION, 1.0)
        )

    def test_invocation_cost_report_fields(self):
        model = CostModel(PlatformName.AWS_LAMBDA)
        report = model.invocation_cost(PYAES_FUNCTION, 1.0, 1.769)
        assert report.cost_per_invocation > 0
        assert report.cost_per_million_invocations == pytest.approx(report.cost_per_invocation * 1e6)
        assert 0 < report.invocation_fee_share < 1
        assert report.monthly_cost(1e6) == pytest.approx(report.cost_per_million_invocations)

    def test_invalid_scheduling_provider(self):
        with pytest.raises(KeyError):
            CostModel(PlatformName.AWS_LAMBDA, scheduling_provider="unknown")

    def test_invalid_arguments(self):
        model = CostModel(PlatformName.AWS_LAMBDA)
        with pytest.raises(ValueError):
            model.execution_duration_s(PYAES_FUNCTION, 0.0)
        with pytest.raises(ValueError):
            model.execution_duration_s(PYAES_FUNCTION, 1.0, concurrent_requests=0)
        with pytest.raises(ValueError):
            model.invocation_cost(PYAES_FUNCTION, 1.0, 1.0).monthly_cost(-1)


class TestDecomposition:
    @pytest.fixture(scope="class")
    def decomposition(self):
        return decompose_invocation_cost(
            PYAES_FUNCTION,
            alloc_vcpus=0.5,
            alloc_memory_gb=1.0,
            billing_platform=PlatformName.GCP_RUN_REQUEST,
            serving_platform=get_platform_preset("gcp_run_like"),
            scheduling_provider="gcp_run_functions",
        )

    def test_total_matches_full_bill(self, decomposition):
        model = CostModel(
            PlatformName.GCP_RUN_REQUEST,
            serving_platform=get_platform_preset("gcp_run_like"),
            scheduling_provider="gcp_run_functions",
        )
        report = model.invocation_cost(PYAES_FUNCTION, 0.5, 1.0)
        assert decomposition.total == pytest.approx(report.cost_per_invocation, rel=1e-9)

    def test_shares_sum_to_one(self, decomposition):
        assert sum(decomposition.shares().values()) == pytest.approx(1.0)

    def test_usage_baseline_positive(self, decomposition):
        assert decomposition.usage_baseline > 0

    def test_allocation_inflation_positive_for_low_utilization(self, decomposition):
        assert decomposition.allocation_inflation > 0

    def test_invocation_fee_matches_catalog(self, decomposition):
        assert decomposition.invocation_fee == pytest.approx(4e-7)

    def test_ranked_drivers_excludes_baseline(self, decomposition):
        drivers = decomposition.ranked_drivers()
        assert "usage_baseline" not in drivers
        assert len(drivers) == 5


class TestExploits:
    def test_intermittent_execution_reduces_gb_seconds(self):
        """§4.3: the exploit cuts billable GB-seconds substantially (paper: ~66.7%)."""
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5)
        assert plan.billable_gb_seconds_reduction > 0.4

    def test_intermittent_execution_raises_actual_bill(self):
        """§4.3: invocation fees make the exploit more expensive overall (paper: +76.7%)."""
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5)
        assert plan.cost_change > 0

    def test_bursts_fit_within_quota(self):
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5)
        quota = 0.25 * 0.020
        assert plan.burst_cpu_s <= quota + 1e-9

    def test_full_core_no_duration_benefit(self):
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 1.0, 2.0)
        assert plan.monolithic_duration_s <= plan.intermittent_total_duration_s + 1e-6

    def test_explicit_burst_count(self):
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5, num_bursts=10)
        assert plan.num_bursts == 10

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.0, 0.5)
        with pytest.raises(ValueError):
            evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5, num_bursts=0)

    def test_summary_keys(self):
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, 0.25, 0.5)
        assert {"billable_gb_seconds_reduction", "cost_change", "num_bursts"} <= set(plan.summary())

    def test_keepalive_background_task_cheaper(self):
        """§3.3: pushing work into keep-alive on Azure bills only the brief trigger requests."""
        plan = evaluate_keepalive_background_task(get_workload("video_processing"))
        assert plan.cost_reduction > 0.5
        assert plan.billed_requests == 2


class TestRightsizing:
    def test_best_candidate_meets_latency(self):
        advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA, scheduling_provider="aws_lambda")
        recommendation = advisor.evaluate(PYAES_FUNCTION, [0.1, 0.25, 0.5, 1.0], latency_target_s=0.5)
        assert recommendation.feasible
        assert recommendation.best.execution_duration_s <= 0.5

    def test_infeasible_target(self):
        advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA)
        recommendation = advisor.evaluate(PYAES_FUNCTION, [0.1], latency_target_s=0.01)
        assert not recommendation.feasible

    def test_no_target_picks_cheapest(self):
        advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA, scheduling_provider="aws_lambda")
        recommendation = advisor.evaluate(PYAES_FUNCTION, [0.25, 0.5, 1.0])
        costs = [c.cost_per_invocation for c in recommendation.candidates]
        assert recommendation.best.cost_per_invocation == pytest.approx(min(costs))

    def test_jitter_risk_higher_near_jump(self):
        advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA, scheduling_provider="aws_lambda")
        workload = get_workload("pyaes_short")
        near_jump = advisor.jitter_risk(workload, 0.8)
        far_from_jump = advisor.jitter_risk(workload, 0.6)
        assert near_jump >= far_from_jump

    def test_invalid_inputs(self):
        advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA)
        with pytest.raises(ValueError):
            advisor.evaluate(PYAES_FUNCTION, [])
        with pytest.raises(ValueError):
            advisor.evaluate(PYAES_FUNCTION, [0.0])
        with pytest.raises(ValueError):
            advisor.jitter_risk(PYAES_FUNCTION, 0.0)


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "longer"}]
        text = render_table(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "longer" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table([])

    def test_markdown_table(self):
        markdown = to_markdown_table([{"a": 1.23456, "b": True}])
        assert markdown.startswith("| a | b |")
        assert "| 1.235 | yes |" in markdown

    def test_format_value_nan_and_small(self):
        assert format_value(float("nan")) == "nan"
        assert "e" in format_value(1.5e-7)
        assert format_value(0.0) == "0"

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
