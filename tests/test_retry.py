"""The client retry loop: unit, integration and hypothesis property tests.

Covers the policy arithmetic, the loop's bus mechanics, and the invariants
the rest of the repo relies on:

- attempt counts never exceed ``max_attempts``, and ``gave_up`` implies the
  attempts were exhausted or the function's retry budget was spent;
- a retry-on run replays byte-identically from its seed, and ``retry=None``
  (plus a retry loop with nothing to do) byte-reproduces the pre-retry
  summary -- the PR-4 behaviour;
- for requests completed in both runs, retry-on latency dominates retry-off
  latency pointwise (retry load can slow or starve organic traffic, never
  speed it up);
- retries re-enter the admission path: amplified load shows up in fleet
  cold-start/queue counters, the feedback channel's admission-queue depth,
  and the cost meter's per-attempt invoice.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.platform.concurrency import ConcurrencyModel
from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.presets import get_platform_preset
from repro.platform.serving import ServingOverheadModel
from repro.sim.events import EventBus, SandboxColdStart, SandboxRejected
from repro.sim.feedback import FeedbackChannel
from repro.sim.retry import RetryInjector, RetryLoop, RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION

RETRY_POLICY = RetryPolicy(max_attempts=3, base_backoff_s=0.3, jitter=0.1)


# ----------------------------------------------------------------------
# RetryPolicy unit behaviour
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=2.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-1)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_s=1.0, backoff_multiplier=2.0,
                             max_backoff_s=5.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_s(1, rng) == 1.0
        assert policy.backoff_s(2, rng) == 2.0
        assert policy.backoff_s(3, rng) == 4.0
        assert policy.backoff_s(4, rng) == 5.0  # capped
        with pytest.raises(ValueError):
            policy.backoff_s(0, rng)

    def test_zero_jitter_consumes_no_randomness(self):
        policy = RetryPolicy(jitter=0.0)
        rng = np.random.default_rng(42)
        before = rng.bit_generator.state
        policy.backoff_s(1, rng)
        assert rng.bit_generator.state == before

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.5)
        draws = [policy.backoff_s(1, np.random.default_rng(7)) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]  # same seed, same delay
        for _ in range(50):
            delay = policy.backoff_s(1, np.random.default_rng(np.random.randint(1 << 30)))
            assert 1.0 <= delay <= 1.5

    def test_from_params_defaults_and_overrides(self):
        assert RetryPolicy.from_params({}) == RetryPolicy()
        policy = RetryPolicy.from_params(
            {"retry_max_attempts": 5, "retry_base_backoff_s": 1.5,
             "retry_backoff_multiplier": 3.0, "retry_max_backoff_s": 60.0,
             "retry_jitter": 0.0, "retry_budget": 10}
        )
        assert policy == RetryPolicy(5, 1.5, 3.0, 60.0, 0.0, 10)


# ----------------------------------------------------------------------
# RetryLoop unit behaviour
# ----------------------------------------------------------------------


class _Recorder:
    """A stand-in injector that records what the loop re-injects."""

    def __init__(self):
        self.injected = []

    def inject_retry(self, delay_s, attempts, retry_wait_s, parent_id="", origin_s=0.0):
        self.injected.append((delay_s, attempts, retry_wait_s))


def _failed(request_id, attempts=1, retry_wait_s=0.0, gave_up=False, time_s=1.0):
    from repro.platform.metrics import FailedRequest
    from repro.sim.events import RequestFailed

    return RequestFailed(
        time_s,
        FailedRequest(
            request_id=request_id, arrival_s=0.0, failed_s=time_s,
            reason="admission_rejected", attempts=attempts,
            retry_wait_s=retry_wait_s, gave_up=gave_up,
        ),
    )


class TestRetryLoop:
    def test_recorder_satisfies_the_injector_protocol(self):
        assert isinstance(_Recorder(), RetryInjector)

    def test_reinjects_with_incremented_attempts_and_cumulative_wait(self):
        bus = EventBus()
        loop = RetryLoop(RetryPolicy(jitter=0.0, base_backoff_s=1.0), seed=0).attach(bus)
        recorder = _Recorder()
        loop.register("fn", recorder)
        bus.publish(_failed("fn/req-0000000", attempts=1))
        bus.publish(_failed("fn/req-0000001", attempts=2, retry_wait_s=1.0))
        assert recorder.injected == [(1.0, 2, 1.0), (2.0, 3, 3.0)]
        assert loop.retries_scheduled == 2

    def test_gave_up_failures_are_counted_not_reinjected(self):
        bus = EventBus()
        loop = RetryLoop(RETRY_POLICY, seed=0).attach(bus)
        recorder = _Recorder()
        loop.register("fn", recorder)
        bus.publish(_failed("fn/req-0000000", attempts=3, gave_up=True))
        assert recorder.injected == []
        assert loop.gave_up == 1

    def test_unregistered_simulators_are_ignored(self):
        bus = EventBus()
        loop = RetryLoop(RETRY_POLICY, seed=0).attach(bus)
        bus.publish(_failed("stranger/req-0000000"))
        assert loop.retries_scheduled == 0

    def test_will_retry_respects_attempts_and_budget(self):
        loop = RetryLoop(RetryPolicy(max_attempts=3, retry_budget=1, jitter=0.0), seed=0)
        recorder = _Recorder()
        loop.register("fn", recorder)
        assert loop.will_retry("fn", 1) and loop.will_retry("fn", 2)
        assert not loop.will_retry("fn", 3)
        bus = EventBus()
        loop.attach(bus)
        bus.publish(_failed("fn/req-0000000", attempts=1))
        assert loop.budget_remaining("fn") == 0 and loop.budget_spent("fn") == 1
        # budget spent: no further retries for fn, even below max_attempts
        assert not loop.will_retry("fn", 1)
        bus.publish(_failed("fn/req-0000001", attempts=1))
        assert len(recorder.injected) == 1
        # the budget is per function: another function still retries
        loop.register("other", recorder)
        assert loop.will_retry("other", 1)

    def test_bare_request_ids_map_to_the_unnamed_simulator(self):
        bus = EventBus()
        loop = RetryLoop(RetryPolicy(jitter=0.0), seed=0).attach(bus)
        recorder = _Recorder()
        loop.register("", recorder)
        bus.publish(_failed("req-0000000"))
        assert len(recorder.injected) == 1


# ----------------------------------------------------------------------
# Platform-level integration: the full fail -> backoff -> re-arrival cycle
# ----------------------------------------------------------------------


def _deterministic_platform():
    return PlatformConfig(
        name="deterministic",
        concurrency=ConcurrencyModel.single(),
        serving=ServingOverheadModel(
            architecture=ServingOverheadModel.api_polling().architecture,
            base_overhead_s=1e-3,
            jitter_fraction=0.0,
        ),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=1e6,
            max_keep_alive_s=1e6,
            resource_behavior=KeepAliveResourceBehavior.FULL_ALLOCATION,
        ),
    )


class TestPlatformRetryCycle:
    def _always_rejecting_simulator(self, policy):
        """A platform whose every cold start is synchronously rejected."""
        fleet_bus = EventBus()
        channel = FeedbackChannel().attach(fleet_bus)
        loop = RetryLoop(policy, seed=3)
        function = FunctionConfig(
            name="fn", alloc_vcpus=1.0, alloc_memory_gb=1.0,
            cpu_time_s=0.2, io_time_s=0.05, init_duration_s=0.5,
        )
        simulator = PlatformSimulator(
            _deterministic_platform(), function, seed=0, feedback=channel, retry=loop
        )
        loop.register("", simulator)
        loop.attach(simulator.bus)
        simulator.bus.subscribe(
            SandboxColdStart,
            lambda event: fleet_bus.publish(
                SandboxRejected(event.time_s, event.sandbox_name, reason="no_capacity")
            ),
        )
        return simulator, loop

    def test_request_retries_until_attempts_exhausted(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=1.0,
                             backoff_multiplier=2.0, jitter=0.0)
        simulator, loop = self._always_rejecting_simulator(policy)
        simulator.run([0.0], horizon_s=60.0)
        m = simulator.metrics
        # one organic arrival + two re-injections, every attempt failed
        assert m.arrivals == 3 and m.retry_arrivals == 2
        assert [f.attempts for f in m.failures] == [1, 2, 3]
        assert [f.gave_up for f in m.failures] == [False, False, True]
        assert m.gave_up_requests == 1
        assert loop.retries_scheduled == 2 and loop.gave_up == 1
        # deterministic backoff: attempts arrive at 0, 1, 3 and fail in place
        assert [f.failed_s for f in m.failures] == pytest.approx([0.0, 1.0, 3.0])
        assert [f.retry_wait_s for f in m.failures] == pytest.approx([0.0, 1.0, 3.0])
        # terminal attempts only: the logical request took 3 attempts
        assert m.attempt_counts() == [3]

    def test_budget_caps_total_retries(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_s=1.0, jitter=0.0,
                             retry_budget=1)
        simulator, loop = self._always_rejecting_simulator(policy)
        simulator.run([0.0, 0.1], horizon_s=60.0)
        m = simulator.metrics
        # two organic arrivals share one budget unit: exactly one retry fires
        assert m.retry_arrivals == 1 and loop.retries_scheduled == 1
        assert m.gave_up_requests == 2
        assert loop.budget_remaining("") == 0

    def test_late_backoff_is_censored_by_the_horizon(self):
        policy = RetryPolicy(max_attempts=2, base_backoff_s=50.0, max_backoff_s=50.0, jitter=0.0)
        simulator, loop = self._always_rejecting_simulator(policy)
        simulator.run([0.0], horizon_s=10.0)
        m = simulator.metrics
        assert loop.retries_scheduled == 1
        assert m.retry_arrivals == 0  # scheduled beyond the horizon: never fired
        assert m.arrivals == m.num_requests + m.failed_requests + simulator.pending_request_count


# ----------------------------------------------------------------------
# Cluster-level properties
# ----------------------------------------------------------------------


def _cluster(seed, retry, *, feedback="on", num_functions=2, max_hosts=1,
             host_vcpus=1.0, rps=6.0, keep_alive_s=None, queue_depth=0):
    preset = get_platform_preset("aws_lambda_like")
    if keep_alive_s is not None:
        preset = dataclasses.replace(
            preset,
            keep_alive=dataclasses.replace(
                preset.keep_alive,
                min_keep_alive_s=keep_alive_s, max_keep_alive_s=keep_alive_s,
            ),
        )
    deployments = []
    for index in range(num_functions):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=rps, duration_s=6.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=host_vcpus, memory_gb=host_vcpus * 2),
            max_hosts=max_hosts,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
        feedback=feedback,
        retry=retry,
    )


def _fingerprint(result):
    return json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "unplaceable": result.fleet.unplaceable,
            "invoice_by_attempt": (
                sorted(result.meter.cost_usd_by_attempt.items())
                if result.meter is not None
                else None
            ),
        },
        sort_keys=True,
    ).encode()


class TestClusterRetryProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        budget=st.sampled_from([None, 2]),
        queue_depth=st.sampled_from([0, 4]),
    )
    def test_attempts_bounded_and_gave_up_means_exhausted(self, seed, budget, queue_depth):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.3, jitter=0.1,
                             retry_budget=budget)
        simulator = _cluster(seed, policy, queue_depth=queue_depth)
        result = simulator.run()
        loop = simulator.retry
        for name, m in result.metrics.items():
            for record in list(m.requests) + list(m.failures):
                assert 1 <= record.attempts <= policy.max_attempts
            for failure in m.failures:
                if failure.gave_up:
                    assert (
                        failure.attempts == policy.max_attempts
                        or loop.budget_remaining(name) == 0
                    )
                else:
                    # a non-terminal failure had headroom when it was stamped
                    assert failure.attempts < policy.max_attempts

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_retry_on_run_replays_byte_identically_from_its_seed(self, seed):
        first = _fingerprint(_cluster(seed, RETRY_POLICY).run())
        second = _fingerprint(_cluster(seed, RETRY_POLICY).run())
        assert first == second

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_retry_off_byte_reproduces_the_pre_retry_run(self, seed):
        """retry=None is the PR-4 behaviour: same fingerprint, no retry columns.

        A retry loop with nothing to retry (an unconstrained fleet never
        fails a request) must also change nothing beyond its all-quiet
        summary columns.
        """
        baseline = _cluster(seed, None, max_hosts=100_000, host_vcpus=64.0).run()
        off_fp = _fingerprint(baseline)
        assert "retried_requests" not in baseline.summary()
        quiet = _cluster(seed, RETRY_POLICY, max_hosts=100_000, host_vcpus=64.0).run()
        summary = quiet.summary()
        assert summary.pop("retried_requests") == 0.0
        assert summary.pop("gave_up_requests") == 0.0
        assert summary.pop("mean_attempts") == 1.0
        assert summary.pop("retry_amplification") == 1.0
        stripped = dataclasses.replace(quiet, retry=None)
        assert _fingerprint(stripped) == off_fp

    def test_latency_pointwise_dominates_retry_off(self):
        """Retry load never makes an organic request faster.

        Requests are matched across runs by (function, arrival time) --
        request *ids* shift because re-injections consume the shared counter.
        In this saturated single-concurrency fleet the amplified load mostly
        *starves* organic traffic (requests that completed without retries
        fail once retries occupy the fleet) and latencies of survivors are
        dominated pointwise.
        """
        lost = 0
        matched = 0
        for seed in (1, 2, 3):
            off = _cluster(seed, None, num_functions=3, host_vcpus=2.0,
                           keep_alive_s=1.0).run()
            on = _cluster(seed, RETRY_POLICY, num_functions=3, host_vcpus=2.0,
                          keep_alive_s=1.0).run()
            assert on.summary()["retry_amplification"] > 1.0
            for name in off.metrics:
                off_by_arrival = {
                    round(r.arrival_s, 9): r for r in off.metrics[name].requests
                }
                on_by_arrival = {
                    round(r.arrival_s, 9): r
                    for r in on.metrics[name].requests
                    if r.attempts == 1
                }
                for arrival, off_outcome in off_by_arrival.items():
                    on_outcome = on_by_arrival.get(arrival)
                    if on_outcome is None:
                        lost += 1
                        continue
                    matched += 1
                    assert (
                        on_outcome.end_to_end_latency_s
                        >= off_outcome.end_to_end_latency_s - 1e-9
                    )
        assert matched > 0
        assert lost > 0  # amplified load genuinely starved organic traffic

    def test_retries_reload_the_fleet_and_admission_queue(self):
        """Re-injected cold starts hit the same fleet admission path."""
        off = _cluster(11, None, queue_depth=4, keep_alive_s=1.0).run()
        on = _cluster(11, RETRY_POLICY, queue_depth=4, keep_alive_s=1.0).run()
        off_cold_starts = off.fleet.admitted + off.fleet.queued_total + len(off.fleet.unplaceable)
        on_cold_starts = on.fleet.admitted + on.fleet.queued_total + len(on.fleet.unplaceable)
        assert on_cold_starts > off_cold_starts
        # the feedback channel observed retry-provoked admissions too: the
        # queue-aware autoscaler and COST_FIT read amplified depth, not zero
        assert on.summary()["queued"] >= off.summary()["queued"]
        assert on.summary()["retried_requests"] > 0

    def test_completed_retried_attempts_are_billed_separately(self):
        result = _cluster(11, RETRY_POLICY, queue_depth=4, keep_alive_s=1.0).run()
        meter = result.meter
        by_attempt = meter.cost_usd_by_attempt
        retried_completions = [
            r for m in result.metrics.values() for r in m.requests if r.attempts > 1
        ]
        assert retried_completions, "scenario must complete at least one retried request"
        assert any(attempt > 1 for attempt in by_attempt)
        assert sum(by_attempt.values()) == pytest.approx(meter.cost_usd)
        # completed retried attempts carry their cumulative client backoff
        assert all(r.retry_wait_s > 0 for r in retried_completions)

    def test_retry_without_feedback_is_inert(self):
        """Nothing fails with the loop open, so nothing retries."""
        result = _cluster(5, RETRY_POLICY, feedback="off").run()
        summary = result.summary()
        assert summary["failed_requests"] == 0.0
        assert summary["retried_requests"] == 0.0
        assert summary["retry_amplification"] == 1.0
