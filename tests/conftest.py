"""Shared pytest fixtures: small, deterministic substrates reused across test modules."""

from __future__ import annotations

import pytest

from repro.traces.generator import TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="session")
def small_trace():
    """A small synthetic trace (2,000 requests) shared by billing/analysis tests."""
    config = TraceGeneratorConfig(num_requests=2_000, num_functions=40, seed=7)
    return TraceGenerator(config).generate()


@pytest.fixture(scope="session")
def calibrated_trace():
    """A mid-sized trace used by calibration-sensitive tests (10,000 requests)."""
    config = TraceGeneratorConfig(num_requests=10_000, num_functions=100, seed=2026)
    return TraceGenerator(config).generate()
