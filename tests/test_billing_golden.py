"""Golden-file regression tests for the Table-1 request-billed invoice path.

The live :class:`~repro.billing.meter.CostMeter` and the batch
:class:`~repro.billing.calculator.BillingCalculator` are proven equivalent in
``test_billing_meter.py`` -- but both could still drift *together* under a
refactor.  These tests pin the absolute invoice of a frozen synthetic trace
for every request-billed Table-1 model into ``tests/golden/*.json`` and
assert **float-exact** equality (JSON stores the shortest round-tripping
``repr`` of each double, so ``==`` is bit-exact), the fault-density
discipline of regression suites: any billing change must touch the goldens
deliberately.

Regenerate after an *intentional* billing change with::

    PYTHONPATH=src python tests/test_billing_golden.py
"""

import json
import pathlib

import pytest

from repro.billing.calculator import BillingCalculator
from repro.billing.meter import CostMeter, replay_trace
from repro.sim.events import EventBus
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The five request-billed platform models of Table 1 (instance-billed models
#: are metered from sandbox lifespans and covered elsewhere).
REQUEST_BILLED_PLATFORMS = (
    "aws_lambda",
    "gcp_run_request",
    "azure_consumption",
    "huawei_functiongraph",
    "cloudflare_workers",
)

#: Frozen trace identity: changing any of these invalidates every golden file.
TRACE_CONFIG = TraceGeneratorConfig(num_requests=800, num_functions=25, seed=424242)


def _frozen_trace():
    return TraceGenerator(TRACE_CONFIG).generate()


def _invoice(platform: str) -> dict:
    """Meter the frozen trace live AND in batch; return the (identical) totals."""
    trace = _frozen_trace()
    bus = EventBus()
    meter = CostMeter(platform).attach(bus)
    ordered = replay_trace(trace, bus)

    calculator = BillingCalculator(platform)
    batch_cost = 0.0
    batch_cpu = 0.0
    batch_memory = 0.0
    batch_fees = 0.0
    for record in ordered:
        billed = calculator.bill_request(record)
        batch_cost += billed.invoice.total
        batch_cpu += billed.billable_cpu_seconds
        batch_memory += billed.billable_memory_gb_seconds
        batch_fees += billed.invoice.charge_for("invocation_fee")

    # live == batch, exactly, before anything is compared against the golden.
    assert meter.cost_usd == batch_cost
    assert meter.billable_cpu_seconds == batch_cpu
    assert meter.billable_memory_gb_seconds == batch_memory
    assert meter.invocation_fee_usd == batch_fees

    return {
        "platform": platform,
        "num_requests": meter.num_requests,
        "cost_usd": meter.cost_usd,
        "billable_cpu_seconds": meter.billable_cpu_seconds,
        "billable_memory_gb_seconds": meter.billable_memory_gb_seconds,
        "actual_cpu_seconds": meter.actual_cpu_seconds,
        "actual_memory_gb_seconds": meter.actual_memory_gb_seconds,
        "invocation_fee_usd": meter.invocation_fee_usd,
    }


@pytest.mark.parametrize("platform", REQUEST_BILLED_PLATFORMS)
def test_invoice_matches_golden_float_exact(platform):
    golden_path = GOLDEN_DIR / f"{platform}.json"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        "'PYTHONPATH=src python tests/test_billing_golden.py'"
    )
    golden = json.loads(golden_path.read_text())
    current = _invoice(platform)
    # Field-by-field == on floats: bit-exact, no tolerance.  A failure here
    # means the billing pipeline's arithmetic changed.
    assert current == golden


def test_golden_files_cover_every_request_billed_platform():
    present = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert present == set(REQUEST_BILLED_PLATFORMS)


def regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_DIR.mkdir(exist_ok=True)
    for platform in REQUEST_BILLED_PLATFORMS:
        path = GOLDEN_DIR / f"{platform}.json"
        path.write_text(json.dumps(_invoice(platform), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
