"""Tests for the provider-side placement / deployment-density substrate."""

import pytest

from repro.cluster.density import deployment_density_study, keepalive_density_impact
from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import (
    PlacementPolicy,
    SandboxRequirement,
    choose_host,
    place_sandboxes,
)
from repro.platform.presets import get_platform_preset


class TestHost:
    def test_capacity_accounting(self):
        host = Host(spec=HostSpec(vcpus=4, memory_gb=16))
        host.place("a", 1.0, 4.0)
        assert host.free_vcpus == pytest.approx(3.0)
        assert host.free_memory_gb == pytest.approx(12.0)
        assert host.cpu_utilization == pytest.approx(0.25)

    def test_fits_rejects_overflow(self):
        host = Host(spec=HostSpec(vcpus=2, memory_gb=4))
        assert host.fits(2.0, 4.0)
        host.place("a", 1.5, 3.0)
        assert not host.fits(1.0, 0.5)
        with pytest.raises(ValueError):
            host.place("b", 1.0, 0.5)

    def test_stranded_capacity_memory_exhausted(self):
        host = Host(spec=HostSpec(vcpus=8, memory_gb=8))
        host.place("a", 1.0, 8.0)  # memory full, CPU mostly free
        stranded = host.stranded_capacity()
        assert stranded["vcpus"] == pytest.approx(7.0)
        assert stranded["memory_gb"] == 0.0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            HostSpec(vcpus=0, memory_gb=1)


class TestPlacement:
    def _requirements(self, count, vcpus=1.0, memory=4.0):
        return [SandboxRequirement(f"s{i}", vcpus, memory) for i in range(count)]

    def test_opens_hosts_as_needed(self):
        result = place_sandboxes(self._requirements(100), host_spec=HostSpec(64, 256))
        # 100 sandboxes of 1 vCPU / 4 GB fit 64 per host -> 2 hosts.
        assert result.num_hosts == 2
        assert result.num_placed == 100
        assert not result.unplaced

    def test_oversized_sandbox_reported_unplaced(self):
        result = place_sandboxes([SandboxRequirement("big", 128.0, 16.0)], host_spec=HostSpec(64, 256))
        assert result.num_hosts == 0
        assert len(result.unplaced) == 1

    def test_best_fit_no_worse_than_worst_fit(self):
        import numpy as np

        rng = np.random.default_rng(0)
        requirements = [
            SandboxRequirement(f"s{i}", float(rng.choice([0.5, 1, 2, 4])), float(rng.choice([1, 4, 8, 32])))
            for i in range(300)
        ]
        best = place_sandboxes(requirements, policy=PlacementPolicy.BEST_FIT)
        worst = place_sandboxes(requirements, policy=PlacementPolicy.WORST_FIT)
        assert best.num_hosts <= worst.num_hosts

    def test_first_fit_places_everything(self):
        result = place_sandboxes(self._requirements(10), policy=PlacementPolicy.FIRST_FIT)
        assert result.num_placed == 10

    def test_density_metric(self):
        result = place_sandboxes(self._requirements(64), host_spec=HostSpec(64, 256))
        assert result.deployment_density == pytest.approx(64.0)

    def test_summary_keys(self):
        summary = place_sandboxes(self._requirements(3)).summary()
        assert {"num_hosts", "deployment_density", "stranded_vcpus"} <= set(summary)

    def test_invalid_requirement(self):
        with pytest.raises(ValueError):
            SandboxRequirement("bad", 0.0, 1.0)


class TestPlacementEdgeCases:
    def test_zero_capacity_host_spec_rejected(self):
        """Zero-capacity hosts cannot exist: the spec validates at construction."""
        with pytest.raises(ValueError):
            HostSpec(vcpus=0.0, memory_gb=16.0)
        with pytest.raises(ValueError):
            HostSpec(vcpus=4.0, memory_gb=0.0)

    def test_full_host_never_chosen(self):
        """A host with zero free capacity is skipped by every policy."""
        host = Host(spec=HostSpec(vcpus=2, memory_gb=4))
        host.place("filler", 2.0, 4.0)
        requirement = SandboxRequirement("s", 1.0, 1.0)
        for policy in PlacementPolicy:
            assert choose_host([host], requirement, policy) is None

    def test_max_hosts_zero_reports_everything_unplaced(self):
        requirements = [SandboxRequirement(f"s{i}", 1.0, 1.0) for i in range(3)]
        result = place_sandboxes(requirements, host_spec=HostSpec(4, 16), max_hosts=0)
        assert result.num_hosts == 0
        assert len(result.unplaced) == 3

    def test_oversized_on_either_axis_unplaced(self):
        spec = HostSpec(vcpus=4, memory_gb=16)
        too_much_cpu = place_sandboxes([SandboxRequirement("c", 8.0, 1.0)], host_spec=spec)
        too_much_memory = place_sandboxes([SandboxRequirement("m", 1.0, 32.0)], host_spec=spec)
        assert len(too_much_cpu.unplaced) == 1 and too_much_cpu.num_hosts == 0
        assert len(too_much_memory.unplaced) == 1 and too_much_memory.num_hosts == 0

    def test_tie_breaking_deterministic_across_policies(self):
        """Equal-score hosts: every policy picks the earliest-opened one."""
        requirement = SandboxRequirement("s", 1.0, 1.0)
        for policy in PlacementPolicy:
            hosts = [Host(spec=HostSpec(4, 16), name=f"h{i}") for i in range(3)]
            chosen = choose_host(hosts, requirement, policy)
            assert chosen is hosts[0], policy

    def test_placement_run_to_run_deterministic(self):
        requirements = [
            SandboxRequirement(f"s{i}", float(1 + i % 3), float(2 + i % 5)) for i in range(50)
        ]

        def snapshot():
            result = place_sandboxes(requirements, host_spec=HostSpec(8, 32))
            return [(h.name, tuple(h.sandboxes)) for h in result.hosts]

        assert snapshot() == snapshot()

    def test_host_names_follow_open_order(self):
        result = place_sandboxes(
            [SandboxRequirement(f"s{i}", 4.0, 4.0) for i in range(3)], host_spec=HostSpec(4, 16)
        )
        assert [h.name for h in result.hosts] == ["host-00000", "host-00001", "host-00002"]

    def test_host_remove_releases_capacity(self):
        host = Host(spec=HostSpec(vcpus=4, memory_gb=16))
        host.place("a", 2.0, 8.0)
        host.remove("a", 2.0, 8.0)
        assert host.free_vcpus == pytest.approx(4.0)
        assert host.free_memory_gb == pytest.approx(16.0)
        assert host.sandboxes == []

    def test_host_remove_unknown_sandbox_raises(self):
        host = Host(spec=HostSpec(vcpus=4, memory_gb=16))
        with pytest.raises(KeyError):
            host.remove("ghost", 1.0, 1.0)


class TestDensityStudies:
    def test_constrained_knobs_need_no_more_hosts(self):
        """§2.2: constraining CPU:memory combinations improves (or preserves) packing density."""
        reports = {r.regime: r for r in deployment_density_study(num_sandboxes=600, seed=1)}
        assert reports["ratio_1_to_4"].num_hosts <= reports["free_form"].num_hosts
        assert reports["free_form"].stranded_vcpus + reports["free_form"].stranded_memory_gb >= 0

    def test_density_report_rows(self):
        reports = deployment_density_study(num_sandboxes=200, seed=2)
        assert len(reports) == 3
        for report in reports:
            row = report.as_row()
            assert row["num_hosts"] >= 1
            assert 0 < row["mean_memory_utilization"] <= 1

    def test_keepalive_density_impact_ordering(self):
        """§3.3: full-allocation keep-alive pins the most capacity, freeze pins none."""
        policies = {
            "aws_freeze": get_platform_preset("aws_lambda_like").keep_alive,
            "gcp_scale_down": get_platform_preset("gcp_run_like").keep_alive,
            "azure_full": get_platform_preset("azure_consumption_like").keep_alive,
        }
        rows = {row["policy"]: row for row in keepalive_density_impact(policies, num_idle_sandboxes=500)}
        assert rows["aws_freeze"]["num_hosts_pinned"] == 0.0
        assert rows["azure_full"]["num_hosts_pinned"] >= rows["gcp_scale_down"]["num_hosts_pinned"] > 0
