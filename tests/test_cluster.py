"""Tests for the provider-side placement / deployment-density substrate."""

import pytest

from repro.cluster.density import deployment_density_study, keepalive_density_impact
from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import (
    PlacementPolicy,
    SandboxRequirement,
    place_sandboxes,
)
from repro.platform.presets import get_platform_preset


class TestHost:
    def test_capacity_accounting(self):
        host = Host(spec=HostSpec(vcpus=4, memory_gb=16))
        host.place("a", 1.0, 4.0)
        assert host.free_vcpus == pytest.approx(3.0)
        assert host.free_memory_gb == pytest.approx(12.0)
        assert host.cpu_utilization == pytest.approx(0.25)

    def test_fits_rejects_overflow(self):
        host = Host(spec=HostSpec(vcpus=2, memory_gb=4))
        assert host.fits(2.0, 4.0)
        host.place("a", 1.5, 3.0)
        assert not host.fits(1.0, 0.5)
        with pytest.raises(ValueError):
            host.place("b", 1.0, 0.5)

    def test_stranded_capacity_memory_exhausted(self):
        host = Host(spec=HostSpec(vcpus=8, memory_gb=8))
        host.place("a", 1.0, 8.0)  # memory full, CPU mostly free
        stranded = host.stranded_capacity()
        assert stranded["vcpus"] == pytest.approx(7.0)
        assert stranded["memory_gb"] == 0.0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            HostSpec(vcpus=0, memory_gb=1)


class TestPlacement:
    def _requirements(self, count, vcpus=1.0, memory=4.0):
        return [SandboxRequirement(f"s{i}", vcpus, memory) for i in range(count)]

    def test_opens_hosts_as_needed(self):
        result = place_sandboxes(self._requirements(100), host_spec=HostSpec(64, 256))
        # 100 sandboxes of 1 vCPU / 4 GB fit 64 per host -> 2 hosts.
        assert result.num_hosts == 2
        assert result.num_placed == 100
        assert not result.unplaced

    def test_oversized_sandbox_reported_unplaced(self):
        result = place_sandboxes([SandboxRequirement("big", 128.0, 16.0)], host_spec=HostSpec(64, 256))
        assert result.num_hosts == 0
        assert len(result.unplaced) == 1

    def test_best_fit_no_worse_than_worst_fit(self):
        import numpy as np

        rng = np.random.default_rng(0)
        requirements = [
            SandboxRequirement(f"s{i}", float(rng.choice([0.5, 1, 2, 4])), float(rng.choice([1, 4, 8, 32])))
            for i in range(300)
        ]
        best = place_sandboxes(requirements, policy=PlacementPolicy.BEST_FIT)
        worst = place_sandboxes(requirements, policy=PlacementPolicy.WORST_FIT)
        assert best.num_hosts <= worst.num_hosts

    def test_first_fit_places_everything(self):
        result = place_sandboxes(self._requirements(10), policy=PlacementPolicy.FIRST_FIT)
        assert result.num_placed == 10

    def test_density_metric(self):
        result = place_sandboxes(self._requirements(64), host_spec=HostSpec(64, 256))
        assert result.deployment_density == pytest.approx(64.0)

    def test_summary_keys(self):
        summary = place_sandboxes(self._requirements(3)).summary()
        assert {"num_hosts", "deployment_density", "stranded_vcpus"} <= set(summary)

    def test_invalid_requirement(self):
        with pytest.raises(ValueError):
            SandboxRequirement("bad", 0.0, 1.0)


class TestDensityStudies:
    def test_constrained_knobs_need_no_more_hosts(self):
        """§2.2: constraining CPU:memory combinations improves (or preserves) packing density."""
        reports = {r.regime: r for r in deployment_density_study(num_sandboxes=600, seed=1)}
        assert reports["ratio_1_to_4"].num_hosts <= reports["free_form"].num_hosts
        assert reports["free_form"].stranded_vcpus + reports["free_form"].stranded_memory_gb >= 0

    def test_density_report_rows(self):
        reports = deployment_density_study(num_sandboxes=200, seed=2)
        assert len(reports) == 3
        for report in reports:
            row = report.as_row()
            assert row["num_hosts"] >= 1
            assert 0 < row["mean_memory_utilization"] <= 1

    def test_keepalive_density_impact_ordering(self):
        """§3.3: full-allocation keep-alive pins the most capacity, freeze pins none."""
        policies = {
            "aws_freeze": get_platform_preset("aws_lambda_like").keep_alive,
            "gcp_scale_down": get_platform_preset("gcp_run_like").keep_alive,
            "azure_full": get_platform_preset("azure_consumption_like").keep_alive,
        }
        rows = {row["policy"]: row for row in keepalive_density_impact(policies, num_idle_sandboxes=500)}
        assert rows["aws_freeze"]["num_hosts_pinned"] == 0.0
        assert rows["azure_full"]["num_hosts_pinned"] >= rows["gcp_scale_down"]["num_hosts_pinned"] > 0
