"""Unit tests for platform components: serving, keep-alive, concurrency, autoscaler, sandbox."""

import numpy as np
import pytest

from repro.platform.autoscaler import Autoscaler, AutoscalerConfig
from repro.platform.concurrency import ConcurrencyModel, ContentionModel
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.sandbox import ActiveRequest, Sandbox, SandboxState
from repro.platform.serving import ServingArchitecture, ServingOverheadModel


class TestServingOverhead:
    def test_http_server_has_highest_base_overhead(self):
        """Figure 8 / I7: HTTP server > API polling > code execution."""
        http = ServingOverheadModel.http_server().base_overhead_s
        polling = ServingOverheadModel.api_polling().base_overhead_s
        code = ServingOverheadModel.code_execution().base_overhead_s
        assert http > polling > code

    def test_http_overhead_grows_at_small_allocations(self):
        model = ServingOverheadModel.http_server()
        assert model.mean_overhead_s(0.08) > model.mean_overhead_s(1.0)

    def test_api_polling_roughly_stable(self):
        model = ServingOverheadModel.api_polling()
        assert model.mean_overhead_s(0.072) < 2.5 * model.mean_overhead_s(1.0)

    def test_above_one_vcpu_no_scaling(self):
        model = ServingOverheadModel.http_server()
        assert model.mean_overhead_s(2.0) == pytest.approx(model.base_overhead_s)

    def test_sample_positive_and_near_mean(self):
        model = ServingOverheadModel.http_server()
        rng = np.random.default_rng(0)
        samples = [model.sample_overhead_s(1.0, rng) for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert np.mean(samples) == pytest.approx(model.mean_overhead_s(1.0), rel=0.15)

    def test_invalid_allocation_rejected(self):
        with pytest.raises(ValueError):
            ServingOverheadModel.api_polling().mean_overhead_s(0.0)

    def test_architecture_enum_values(self):
        assert ServingArchitecture.API_POLLING.value == "api_polling"
        assert ServingOverheadModel.code_execution().architecture is ServingArchitecture.CODE_EXECUTION


class TestKeepAlivePolicy:
    def _policy(self, **overrides):
        defaults = dict(
            min_keep_alive_s=300.0,
            max_keep_alive_s=360.0,
            resource_behavior=KeepAliveResourceBehavior.FREEZE_DEALLOCATE,
        )
        defaults.update(overrides)
        return KeepAlivePolicy(**defaults)

    def test_cold_probability_zero_below_min(self):
        assert self._policy().cold_start_probability(200.0) == 0.0

    def test_cold_probability_one_above_max(self):
        assert self._policy().cold_start_probability(400.0) == 1.0

    def test_cold_probability_ramps_in_window(self):
        probability = self._policy().cold_start_probability(330.0)
        assert 0.0 < probability < 1.0

    def test_scale_out_extends_keep_alive(self):
        """§3.3: Azure keeps scaled-out functions alive longer (~740 s at 3 instances)."""
        policy = self._policy(
            min_keep_alive_s=120.0, max_keep_alive_s=360.0, scale_out_extension_s=380.0
        )
        assert policy.cold_start_probability(500.0, scaled_out_instances=1) == 1.0
        assert policy.cold_start_probability(500.0, scaled_out_instances=3) < 1.0

    def test_sample_within_window(self):
        policy = self._policy()
        rng = np.random.default_rng(1)
        for _ in range(50):
            value = policy.sample_keep_alive_s(rng)
            assert 300.0 <= value <= 360.0

    def test_idle_resources_freeze_deallocates(self):
        assert self._policy().idle_resources(1.0, 2.0) == (0.0, 0.0)

    def test_idle_resources_gcp_scale_down(self):
        policy = self._policy(
            resource_behavior=KeepAliveResourceBehavior.SCALE_DOWN_CPU, keep_alive_cpu_vcpus=0.01
        )
        cpu, memory = policy.idle_resources(1.0, 2.0)
        assert cpu == pytest.approx(0.01)
        assert memory == pytest.approx(2.0)

    def test_idle_resources_azure_full_allocation(self):
        policy = self._policy(
            resource_behavior=KeepAliveResourceBehavior.FULL_ALLOCATION, keep_alive_memory_fraction=1.0
        )
        assert policy.idle_resources(1.0, 2.0) == (1.0, 2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            self._policy(min_keep_alive_s=400.0, max_keep_alive_s=300.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError):
            self._policy().cold_start_probability(-1.0)

    def test_describe_row(self):
        row = self._policy().describe()
        assert row["resource_behavior"] == "freeze_deallocate"
        assert row["min_keep_alive_s"] == 300.0


class TestConcurrencyAndContention:
    def test_single_model(self):
        model = ConcurrencyModel.single()
        assert model.is_single
        assert model.effective_workers == 1

    def test_multi_model_with_worker_pool(self):
        model = ConcurrencyModel.multi(80, runtime_workers=8)
        assert model.max_concurrency == 80
        assert model.effective_workers == 8

    def test_workers_capped_by_concurrency(self):
        model = ConcurrencyModel.multi(4, runtime_workers=16)
        assert model.effective_workers == 4

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ConcurrencyModel(max_concurrency=0)
        with pytest.raises(ValueError):
            ConcurrencyModel(max_concurrency=4, runtime_workers=0)

    def test_contention_single_request_full_speed(self):
        contention = ContentionModel()
        assert contention.per_request_rate(1, 1.0) == pytest.approx(1.0)
        assert contention.slowdown(1, 1.0) == pytest.approx(1.0)

    def test_two_cpu_bound_requests_double_duration(self):
        """§3.1: two 1-second requests on one vCPU take at least 2 s each."""
        contention = ContentionModel(overhead_per_peer=0.0)
        assert contention.slowdown(2, 1.0) == pytest.approx(2.0)

    def test_context_switch_overhead_makes_it_worse(self):
        """§3.1: real slowdowns are worse than the ideal share due to context switches."""
        assert ContentionModel(overhead_per_peer=0.05).slowdown(2, 1.0) > 2.0

    def test_rate_capped_at_one_core_per_request(self):
        contention = ContentionModel(overhead_per_peer=0.0)
        assert contention.per_request_rate(2, 4.0) == pytest.approx(1.0)

    def test_efficiency_floor(self):
        contention = ContentionModel(overhead_per_peer=1.0, min_efficiency=0.5)
        assert contention.efficiency(100) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ContentionModel().per_request_rate(0, 1.0)
        with pytest.raises(ValueError):
            ContentionModel().per_request_rate(1, 0.0)


class TestAutoscaler:
    def _autoscaler(self, **overrides):
        defaults = dict(metric_window_s=60.0, evaluation_interval_s=2.0)
        defaults.update(overrides)
        return Autoscaler(AutoscalerConfig(**defaults), max_concurrency=80, alloc_vcpus=1.0)

    def test_no_samples_keeps_current(self):
        scaler = self._autoscaler()
        assert scaler.desired_instances(0.0, 3) == 3

    def test_cpu_pressure_scales_up(self):
        scaler = self._autoscaler()
        for t in range(0, 30, 2):
            scaler.observe(float(t), active_requests=4, busy_vcpus=2.0, instances=1)
        assert scaler.desired_instances(30.0, 1) > 1

    def test_panic_mode_reacts_to_spikes(self):
        scaler = self._autoscaler()
        for t in range(0, 12, 2):
            scaler.observe(float(t), active_requests=300, busy_vcpus=1.0, instances=1)
        desired = scaler.desired_instances(12.0, 1)
        assert desired >= 5

    def test_scale_down_delayed(self):
        config = AutoscalerConfig(scale_down_delay_s=60.0)
        scaler = Autoscaler(config, max_concurrency=80, alloc_vcpus=1.0)
        for t in range(0, 20, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
        # The desire to shrink exists but is held back by the delay.
        assert scaler.desired_instances(20.0, 5) == 5

    def test_max_instances_cap(self):
        scaler = self._autoscaler(max_instances=3)
        for t in range(0, 12, 2):
            scaler.observe(float(t), active_requests=10_000, busy_vcpus=100.0, instances=1)
        assert scaler.desired_instances(12.0, 1) <= 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(target_cpu_utilization=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(metric_window_s=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_instances=5, max_instances=2)


class TestAutoscalerScaleDownHysteresis:
    """Scale-in is damped: it fires only after the delay persists, and demand resets it."""

    def _idle_scaler(self, delay_s=60.0):
        scaler = Autoscaler(
            AutoscalerConfig(scale_down_delay_s=delay_s, metric_window_s=60.0),
            max_concurrency=80,
            alloc_vcpus=1.0,
        )
        return scaler

    def test_scale_down_fires_after_delay(self):
        scaler = self._idle_scaler(delay_s=60.0)
        for t in range(0, 120, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
            desired = scaler.desired_instances(float(t), 5)
            if t < 60.0:
                assert desired == 5, f"scaled down too early at t={t}"
        # Past the delay the shrink goes through (to min_instances = 0).
        assert scaler.desired_instances(120.0, 5) < 5

    def test_demand_resets_the_scale_down_clock(self):
        scaler = Autoscaler(
            AutoscalerConfig(scale_down_delay_s=20.0, metric_window_s=10.0),
            max_concurrency=80,
            alloc_vcpus=1.0,
        )
        # Idle phase: the shrink candidate starts its clock (~t=2).
        for t in range(0, 10, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
            assert scaler.desired_instances(float(t), 5) == 5
        # A demand burst cancels the pending shrink.
        for t in range(10, 16, 2):
            scaler.observe(float(t), active_requests=2000, busy_vcpus=5.0, instances=5)
            assert scaler.desired_instances(float(t), 5) >= 5
        # Renewed idleness must wait the full delay again: at t=30 more than
        # delay_s has passed since the *first* candidate (t~2), so without the
        # reset the scaler would already have shrunk.
        for t in range(16, 32, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
            scaler.desired_instances(float(t), 5)
        scaler.observe(32.0, active_requests=0, busy_vcpus=0.0, instances=5)
        assert scaler.desired_instances(32.0, 5) == 5
        # Once the new clock runs out, the shrink finally goes through.
        for t in range(34, 50, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
            scaler.desired_instances(float(t), 5)
        assert scaler.desired_instances(50.0, 5) < 5

    def test_scale_down_bounded_by_min_instances(self):
        scaler = Autoscaler(
            AutoscalerConfig(scale_down_delay_s=10.0, min_instances=2),
            max_concurrency=80,
            alloc_vcpus=1.0,
        )
        for t in range(0, 40, 2):
            scaler.observe(float(t), active_requests=0, busy_vcpus=0.0, instances=5)
            scaler.desired_instances(float(t), 5)
        assert scaler.desired_instances(40.0, 5) == 2


class TestAutoscalerProcess:
    def test_polled_ticks_on_fixed_grid(self):
        from repro.platform.autoscaler import AutoscalerProcess
        from repro.sim.kernel import SimulationKernel

        ticks = []
        process = AutoscalerProcess(2.0, ticks.append)
        kernel = SimulationKernel()
        kernel.add_process(process)
        kernel.run(until=10.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_heap_events_win_exact_time_ties(self):
        """Arrivals scheduled at a tick time run before the autoscaler evaluates."""
        from repro.platform.autoscaler import AutoscalerProcess
        from repro.sim.kernel import SimulationKernel

        order = []
        kernel = SimulationKernel()
        kernel.on("arrival", lambda event: order.append("arrival"))
        kernel.add_process(AutoscalerProcess(2.0, lambda now: order.append("autoscale")))
        kernel.schedule(0.0, "arrival")
        kernel.schedule(2.0, "arrival")
        kernel.run(until=2.0)
        assert order == ["arrival", "autoscale", "arrival", "autoscale"]

    def test_invalid_interval_rejected(self):
        from repro.platform.autoscaler import AutoscalerProcess

        with pytest.raises(ValueError):
            AutoscalerProcess(0.0, lambda now: None)


class TestSandbox:
    def _sandbox(self, workers=2, vcpus=1.0):
        return Sandbox(
            function_name="f",
            alloc_vcpus=vcpus,
            alloc_memory_gb=1.0,
            contention=ContentionModel(overhead_per_peer=0.0),
            created_s=0.0,
            init_duration_s=1.0,
            runtime_workers=workers,
        )

    def _request(self, request_id, cpu=0.1, io=0.0):
        return ActiveRequest(
            request_id=request_id,
            arrival_s=0.0,
            admitted_s=0.0,
            remaining_cpu_s=cpu,
            io_remaining_s=io,
            overhead_s=0.0,
            cold_start=False,
        )

    def test_lifecycle_initializing_to_idle(self):
        sandbox = self._sandbox()
        assert sandbox.state is SandboxState.INITIALIZING
        sandbox.mark_ready(1.0)
        assert sandbox.state is SandboxState.IDLE

    def test_admit_starts_executing_up_to_workers(self):
        sandbox = self._sandbox(workers=1)
        sandbox.mark_ready(1.0)
        sandbox.admit(self._request("a"), 1.0)
        sandbox.admit(self._request("b"), 1.0)
        assert len(sandbox.executing) == 1
        assert len(sandbox.waiting) == 1
        assert sandbox.concurrency == 2

    def test_processor_sharing_halves_progress(self):
        sandbox = self._sandbox(workers=2, vcpus=1.0)
        sandbox.mark_ready(0.0)
        sandbox.admit(self._request("a", cpu=0.1), 0.0)
        sandbox.admit(self._request("b", cpu=0.1), 0.0)
        sandbox.advance(0.1)
        # Two requests share one vCPU: each got 0.05 s of CPU in 0.1 s.
        assert sandbox.executing["a"].remaining_cpu_s == pytest.approx(0.05)

    def test_completion_and_promotion(self):
        sandbox = self._sandbox(workers=1)
        sandbox.mark_ready(0.0)
        sandbox.admit(self._request("a", cpu=0.1), 0.0)
        sandbox.admit(self._request("b", cpu=0.1), 0.0)
        sandbox.advance(0.1)
        done = sandbox.completed_requests()
        assert set(done) == {"a"}
        sandbox.remove("a", 0.1)
        assert "b" in sandbox.executing
        assert sandbox.executing["b"].exec_start_s == pytest.approx(0.1)

    def test_idle_after_all_requests_leave(self):
        sandbox = self._sandbox()
        sandbox.mark_ready(0.0)
        sandbox.admit(self._request("a", cpu=0.05), 0.0)
        sandbox.advance(0.05)
        sandbox.remove("a", 0.05)
        assert sandbox.state is SandboxState.IDLE
        assert sandbox.idle_time(0.15) == pytest.approx(0.1)

    def test_next_completion_time(self):
        sandbox = self._sandbox()
        sandbox.mark_ready(0.0)
        sandbox.admit(self._request("a", cpu=0.1, io=0.05), 0.0)
        assert sandbox.next_completion_time(0.0) == pytest.approx(0.15)

    def test_terminate_with_active_requests_rejected(self):
        sandbox = self._sandbox()
        sandbox.mark_ready(0.0)
        sandbox.admit(self._request("a"), 0.0)
        with pytest.raises(RuntimeError):
            sandbox.terminate(1.0)

    def test_terminate_idle(self):
        sandbox = self._sandbox()
        sandbox.mark_ready(0.0)
        sandbox.terminate(1.0)
        assert sandbox.state is SandboxState.TERMINATED
