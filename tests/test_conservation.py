"""Cross-layer conservation laws: no request or cold start escapes accounting.

PRs 1-5 stacked four coupled layers (serving, fleet, scheduler, billing) plus
two feedback mechanisms (admission outcomes, client retries) onto one kernel.
Each layer counts its own events, which is exactly how accounting *drift*
creeps in: a path that drops a request (or double-counts a cold start) keeps
every individual test green while the cross-layer totals quietly stop adding
up.  This suite pins the conservation laws that must hold for **any**
``ClusterSimulator`` configuration -- feedback on or off, retries on or off,
backpressure queues of any depth, saturated or unconstrained fleets:

- **Arrival conservation** (per function and in aggregate): every arrival
  that fired is exactly one of completed, failed, pending (ingress-queued or
  parked behind an unresolved cold start), or still in flight inside a
  sandbox at the horizon.
- **Cold-start conservation** (fleet layer): every ``SandboxColdStart`` the
  fleet saw was directly admitted, entered the admission queue, or was
  rejected -- and every queue entry was eventually admitted, abandoned, or is
  still queued at the end.
- **Capacity conservation**: admissions equal releases plus live placements.
- **Retry conservation**: retry arrivals that fired never exceed the retries
  the loop scheduled (late backoffs are horizon-censored, not lost), and the
  loop's give-up count matches the metrics' terminal failures.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.platform.presets import get_platform_preset
from repro.sim.events import SandboxColdStart
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION

RETRY_POLICY = RetryPolicy(max_attempts=3, base_backoff_s=0.2, jitter=0.1)


def _build_cluster(seed, feedback, retry, *, queue_depth=0, max_hosts=1,
                   preset="aws_lambda_like", rps=5.0, num_functions=2,
                   host_vcpus=1.0, keep_alive_s=None):
    preset_config = get_platform_preset(preset)
    if keep_alive_s is not None:
        keep_alive = dataclasses.replace(
            preset_config.keep_alive,
            min_keep_alive_s=keep_alive_s,
            max_keep_alive_s=keep_alive_s,
        )
        preset_config = dataclasses.replace(preset_config, keep_alive=keep_alive)
    deployments = []
    for index in range(num_functions):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        deployments.append(
            FunctionDeployment(function=function, platform=preset_config, rps=rps, duration_s=5.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=host_vcpus, memory_gb=host_vcpus * 2),
            max_hosts=max_hosts,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
        feedback=feedback,
        retry=retry,
    )


def _assert_conservation(simulator, cold_starts_seen):
    """Every conservation law, checked on one finished co-simulation."""
    fleet = simulator.fleet
    # --- arrival conservation, per function and in aggregate --------------
    for name, sim in simulator.simulators.items():
        m = sim.metrics
        accounted = (
            m.num_requests
            + m.failed_requests
            + sim.pending_request_count
            + sim.in_flight_request_count
        )
        assert m.arrivals == accounted, (
            f"{name}: {m.arrivals} arrivals != {m.num_requests} completed + "
            f"{m.failed_requests} failed + {sim.pending_request_count} pending + "
            f"{sim.in_flight_request_count} in flight"
        )
        # the post-run snapshot agrees with the live counter
        assert m.pending_requests == sim.pending_request_count
    # --- cold-start conservation at the fleet boundary --------------------
    direct_admissions = fleet.admitted - fleet.admitted_from_queue
    assert cold_starts_seen == direct_admissions + fleet.queued_total + len(fleet.unplaceable)
    assert fleet.queued_total == (
        fleet.admitted_from_queue + fleet.queue_abandoned + len(fleet.queue)
    )
    assert len(fleet.unplaceable) == sum(fleet.reject_reasons.values())
    # --- capacity conservation --------------------------------------------
    assert fleet.admitted == fleet.released + fleet.num_placed
    # --- retry conservation -----------------------------------------------
    retry_arrivals = sum(m.retry_arrivals for m in
                         (sim.metrics for sim in simulator.simulators.values()))
    if simulator.retry is None:
        assert retry_arrivals == 0
        assert all(not f.gave_up for sim in simulator.simulators.values()
                   for f in sim.metrics.failures)
    else:
        # late backoffs are censored by the horizon, never invented
        assert retry_arrivals <= simulator.retry.retries_scheduled
        assert simulator.retry.gave_up == sum(
            sim.metrics.gave_up_requests for sim in simulator.simulators.values()
        )


class TestConservationLaws:
    @settings(max_examples=14, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        feedback=st.sampled_from(["off", "on"]),
        with_retry=st.booleans(),
        queue_depth=st.sampled_from([0, 4]),
        max_hosts=st.sampled_from([1, 100_000]),
        preset=st.sampled_from(["aws_lambda_like", "gcp_run_like"]),
    )
    def test_any_cluster_config_conserves_requests_and_cold_starts(
        self, seed, feedback, with_retry, queue_depth, max_hosts, preset
    ):
        simulator = _build_cluster(
            seed,
            feedback,
            RETRY_POLICY if with_retry else None,
            queue_depth=queue_depth,
            max_hosts=max_hosts,
            preset=preset,
        )
        cold_starts = []
        simulator.bus.subscribe(SandboxColdStart, cold_starts.append)
        simulator.run()
        _assert_conservation(simulator, len(cold_starts))

    def test_saturated_retrying_cluster_conserves_under_amplification(self):
        """The hardest case: rejections, give-ups and censored retries at once."""
        simulator = _build_cluster(
            1234, "on", RETRY_POLICY, queue_depth=0, max_hosts=1, rps=8.0
        )
        cold_starts = []
        simulator.bus.subscribe(SandboxColdStart, cold_starts.append)
        result = simulator.run()
        _assert_conservation(simulator, len(cold_starts))
        summary = result.summary()
        # the scenario genuinely amplifies: retries fired and some gave up
        assert summary["retried_requests"] > 0
        assert summary["gave_up_requests"] > 0
        assert summary["retry_amplification"] > 1.0

    def test_zero_capacity_fleet_keeps_everything_pending(self):
        """Horizon-censored backpressure: queued forever is still accounted."""
        simulator = _build_cluster(
            9, "on", RETRY_POLICY, queue_depth=64, max_hosts=0, rps=4.0
        )
        cold_starts = []
        simulator.bus.subscribe(SandboxColdStart, cold_starts.append)
        result = simulator.run()
        _assert_conservation(simulator, len(cold_starts))
        summary = result.summary()
        assert summary["num_requests"] == 0.0
        assert summary["pending_requests"] > 0

    def test_queue_drain_under_short_keepalive_conserves(self):
        """Capacity churns (expiries drain the admission queue) mid-run."""
        simulator = _build_cluster(
            77, "on", RETRY_POLICY, queue_depth=8, max_hosts=1, rps=6.0,
            keep_alive_s=1.0,
        )
        cold_starts = []
        simulator.bus.subscribe(SandboxColdStart, cold_starts.append)
        simulator.run()
        _assert_conservation(simulator, len(cold_starts))
        assert simulator.fleet.admitted_from_queue > 0
