"""Tests for the Figure 2 inflation analysis (billable vs actual resources)."""

import math

import pytest

from repro.billing.catalog import PlatformName
from repro.billing.inflation import FIGURE2_PLATFORMS, InflationAnalyzer, InflationResult


class TestInflationResult:
    def test_aggregate_ratio(self):
        result = InflationResult(
            platform="x",
            billable_cpu_seconds=[2.0, 2.0],
            billable_memory_gb_seconds=[4.0],
            actual_cpu_seconds=[1.0, 1.0],
            actual_memory_gb_seconds=[1.0],
        )
        assert result.aggregate_cpu_inflation == pytest.approx(2.0)
        assert result.aggregate_memory_inflation == pytest.approx(4.0)

    def test_mean_ratio_skips_zero_denominators(self):
        result = InflationResult(
            platform="x",
            billable_cpu_seconds=[2.0, 5.0],
            billable_memory_gb_seconds=[],
            actual_cpu_seconds=[1.0, 0.0],
            actual_memory_gb_seconds=[],
        )
        assert result.mean_cpu_inflation == pytest.approx(2.0)

    def test_empty_result_is_nan(self):
        result = InflationResult(platform="x")
        assert math.isnan(result.aggregate_cpu_inflation)
        assert math.isnan(result.mean_memory_inflation)


class TestInflationAnalyzer:
    @pytest.fixture(scope="class")
    def results(self, small_trace):
        return InflationAnalyzer().analyze(small_trace)

    def test_all_default_platforms_analyzed(self, results):
        assert set(results) == set(FIGURE2_PLATFORMS)

    def test_zero_cpu_requests_excluded(self, small_trace, results):
        expected = len(small_trace.exclude_zero_cpu().requests)
        first = next(iter(results.values()))
        assert len(first.billable_cpu_seconds) == expected

    def test_gcp_has_highest_cpu_inflation(self, results):
        """Figure 2: GCP's 100 ms rounding yields the highest CPU inflation."""
        gcp = results[PlatformName.GCP_RUN_REQUEST].aggregate_cpu_inflation
        for platform, result in results.items():
            if platform is PlatformName.GCP_RUN_REQUEST:
                continue
            if result.aggregate_cpu_inflation > 0:
                assert gcp >= result.aggregate_cpu_inflation

    def test_cloudflare_cpu_inflation_near_one(self, results):
        """Figure 2: usage-based billing shows the lowest inflation (~1.01x)."""
        cloudflare = results[PlatformName.CLOUDFLARE_WORKERS].aggregate_cpu_inflation
        assert 1.0 <= cloudflare <= 1.2

    def test_azure_memory_inflation_lowest_among_memory_billers(self, results):
        azure = results[PlatformName.AZURE_CONSUMPTION].aggregate_memory_inflation
        for platform in (PlatformName.AWS_LAMBDA, PlatformName.GCP_RUN_REQUEST, PlatformName.HUAWEI_FUNCTIONGRAPH):
            assert azure <= results[platform].aggregate_memory_inflation

    def test_all_inflations_at_least_one(self, results):
        """Billable resources never fall below actual usage under any studied model."""
        for result in results.values():
            if result.aggregate_cpu_inflation > 0:
                assert result.aggregate_cpu_inflation >= 0.99
            if result.aggregate_memory_inflation > 0:
                assert result.aggregate_memory_inflation >= 0.99

    def test_inflation_table_shape(self, small_trace):
        table = InflationAnalyzer([PlatformName.AWS_LAMBDA]).inflation_table(small_trace)
        assert len(table) == 1
        assert "aggregate_cpu_inflation" in table[0]

    def test_accepts_raw_request_list(self, small_trace):
        requests = small_trace.requests[:100]
        results = InflationAnalyzer([PlatformName.AWS_LAMBDA]).analyze(requests)
        assert len(results[PlatformName.AWS_LAMBDA].billable_cpu_seconds) <= 100
