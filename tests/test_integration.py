"""End-to-end integration tests spanning multiple substrates."""

import pytest

from repro.billing.catalog import PlatformName
from repro.billing.inflation import InflationAnalyzer
from repro.core.cost_model import CostModel
from repro.core.decomposition import decompose_invocation_cost
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.workloads.functions import PYAES_FUNCTION
from repro.workloads.traffic import poisson_arrivals


class TestTraceToBillPipeline:
    """Generate a trace, bill it under every Figure 2 model, and check consistency."""

    @pytest.fixture(scope="class")
    def trace(self):
        return TraceGenerator(TraceGeneratorConfig(num_requests=1_500, num_functions=30, seed=11)).generate()

    def test_total_billable_exceeds_total_actual(self, trace):
        results = InflationAnalyzer().analyze(trace)
        for platform, result in results.items():
            if sum(result.billable_cpu_seconds) > 0:
                assert sum(result.billable_cpu_seconds) >= sum(result.actual_cpu_seconds)

    def test_request_level_and_aggregate_views_consistent(self, trace):
        results = InflationAnalyzer([PlatformName.AWS_LAMBDA]).analyze(trace)
        result = results[PlatformName.AWS_LAMBDA]
        aggregate = sum(result.billable_memory_gb_seconds) / sum(result.actual_memory_gb_seconds)
        assert aggregate == pytest.approx(result.aggregate_memory_inflation)


class TestSimulationToBillPipeline:
    """Run the platform simulator and feed its per-request outcomes into the billing model."""

    def test_contention_increases_billed_cost_per_request(self):
        """I6: the dual penalty -- slower execution AND a larger bill per request."""
        preset = get_platform_preset("gcp_run_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        calculator_model = CostModel(PlatformName.GCP_RUN_REQUEST)

        def mean_cost(rps):
            metrics = PlatformSimulator(preset, function, seed=9).run(poisson_arrivals(rps, 60.0, seed=2))
            from repro.billing.calculator import BillingCalculator, InvocationBillingInput

            calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
            costs = []
            for outcome in metrics.requests:
                inputs = InvocationBillingInput(
                    execution_s=outcome.execution_duration_s,
                    init_s=outcome.init_duration_s,
                    alloc_vcpus=1.0,
                    alloc_memory_gb=2.0,
                    used_cpu_seconds=PYAES_FUNCTION.cpu_time_s,
                    used_memory_gb=PYAES_FUNCTION.used_memory_gb,
                )
                costs.append(calculator.bill(inputs).invoice.total)
            return sum(costs) / len(costs)

        assert mean_cost(20) > mean_cost(1)
        # Sanity: the analytic cost model agrees on the uncontended cost scale.
        baseline = calculator_model.invocation_cost(PYAES_FUNCTION, 1.0, 2.0).cost_per_invocation
        assert mean_cost(1) == pytest.approx(baseline, rel=0.5)


class TestCostModelCrossChecks:
    def test_decomposition_consistent_across_platforms(self):
        for platform in (PlatformName.AWS_LAMBDA, PlatformName.GCP_RUN_REQUEST, PlatformName.AZURE_CONSUMPTION):
            decomposition = decompose_invocation_cost(
                PYAES_FUNCTION, 0.5, 1.0, platform, scheduling_provider=None
            )
            model = CostModel(platform)
            report = model.invocation_cost(PYAES_FUNCTION, 0.5, 1.0)
            assert decomposition.total == pytest.approx(report.cost_per_invocation, rel=1e-9)

    def test_serverless_more_expensive_than_ideal_usage(self):
        """§1/§2: the full bill is a multiple of the perfect pay-per-use baseline."""
        decomposition = decompose_invocation_cost(
            PYAES_FUNCTION, 0.5, 1.0, PlatformName.GCP_RUN_REQUEST, scheduling_provider="gcp_run_functions"
        )
        assert decomposition.total > 1.3 * decomposition.usage_baseline

    def test_instance_billing_platform_cost_model(self):
        """Instance-billed platforms produce a bill without an invocation fee."""
        from repro.billing.calculator import BillingCalculator, InvocationBillingInput

        calculator = BillingCalculator(PlatformName.GCP_RUN_INSTANCE)
        billed = calculator.bill(
            InvocationBillingInput(
                execution_s=0.1,
                init_s=0.0,
                alloc_vcpus=1.0,
                alloc_memory_gb=2.0,
                used_cpu_seconds=0.05,
                used_memory_gb=0.5,
                instance_s=600.0,
            )
        )
        assert billed.invoice.charge_for("invocation_fee") == 0.0
        assert billed.billable_memory_gb_seconds == pytest.approx(2.0 * 600.0)
