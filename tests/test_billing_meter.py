"""Tests for the live cost meter and its equivalence with the batch calculator."""

import pytest

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.billing.meter import CostMeter, RequestResources, replay_trace
from repro.sim.events import (
    EventBus,
    RequestCompleted,
    SandboxBusy,
    SandboxColdStart,
    SandboxIdle,
    SandboxTerminated,
)

#: The five request-billed platform models the paper's §2.3 methodology maps
#: trace records onto (Table 1); instance-billed models are metered separately.
REQUEST_BILLED_PLATFORMS = (
    PlatformName.AWS_LAMBDA,
    PlatformName.GCP_RUN_REQUEST,
    PlatformName.AZURE_CONSUMPTION,
    PlatformName.HUAWEI_FUNCTIONGRAPH,
    PlatformName.CLOUDFLARE_WORKERS,
)


class TestLiveBatchEquivalence:
    """Acceptance criterion: live metering == batch calculation, exactly."""

    @pytest.mark.parametrize("platform", REQUEST_BILLED_PLATFORMS)
    def test_live_meter_matches_batch_calculator_exactly(self, small_trace, platform):
        bus = EventBus()
        meter = CostMeter(platform).attach(bus)
        ordered = replay_trace(small_trace, bus)
        assert len(ordered) == len(small_trace.requests)

        calculator = BillingCalculator(platform)
        batch_cost = 0.0
        batch_cpu = 0.0
        batch_memory = 0.0
        batch_fees = 0.0
        for record in ordered:
            billed = calculator.bill_request(record)
            batch_cost += billed.invoice.total
            batch_cpu += billed.billable_cpu_seconds
            batch_memory += billed.billable_memory_gb_seconds
            batch_fees += billed.invoice.charge_for("invocation_fee")

        # Exact equality, not approx: the meter routes every record through
        # the same BillingCalculator in the same order.
        assert meter.cost_usd == batch_cost
        assert meter.billable_cpu_seconds == batch_cpu
        assert meter.billable_memory_gb_seconds == batch_memory
        assert meter.invocation_fee_usd == batch_fees
        assert meter.num_requests == len(small_trace.requests)

    def test_fee_toggle_matches_batch(self, small_trace):
        bus = EventBus()
        meter = CostMeter(PlatformName.AWS_LAMBDA, include_invocation_fee=False).attach(bus)
        ordered = replay_trace(small_trace, bus)
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        batch = 0.0
        for record in ordered:
            batch += calculator.bill_request(record, include_invocation_fee=False).invoice.total
        assert meter.cost_usd == batch
        assert meter.invocation_fee_usd == 0.0

    def test_cold_starts_counted(self, small_trace):
        bus = EventBus()
        meter = CostMeter(PlatformName.AWS_LAMBDA).attach(bus)
        replay_trace(small_trace, bus)
        expected = sum(1 for r in small_trace.requests if r.cold_start)
        assert meter.num_cold_starts == expected


class TestInstanceMetering:
    def _lifecycle(self, bus):
        bus.publish(SandboxColdStart(0.0, "sb-0", "f", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        bus.publish(SandboxBusy(1.0, "sb-0", 1))
        bus.publish(SandboxIdle(5.0, "sb-0"))
        bus.publish(SandboxBusy(8.0, "sb-0", 1))
        bus.publish(SandboxIdle(9.0, "sb-0"))
        bus.publish(SandboxTerminated(20.0, "sb-0"))

    def test_lifespans_and_idle_time(self):
        bus = EventBus()
        meter = CostMeter(PlatformName.AWS_LAMBDA).attach(bus)
        self._lifecycle(bus)
        assert meter.instances_started == 1
        assert meter.instances_closed == 1
        assert meter.instance_seconds == pytest.approx(20.0)
        # Idle 5->8 plus 9->20 (terminated while idle).
        assert meter.idle_instance_seconds == pytest.approx(3.0 + 11.0)
        assert meter.allocated_vcpu_seconds == pytest.approx(20.0)
        assert meter.allocated_memory_gb_seconds == pytest.approx(40.0)

    def test_instance_billed_model_invoices_lifespans(self):
        bus = EventBus()
        meter = CostMeter(PlatformName.GCP_RUN_INSTANCE).attach(bus)
        self._lifecycle(bus)
        from repro.billing.catalog import get_billing_model
        from repro.billing.units import ResourceKind

        model = get_billing_model(PlatformName.GCP_RUN_INSTANCE)
        expected = model.invoice(
            execution_s=0.0,
            allocations={ResourceKind.CPU: 1.0, ResourceKind.MEMORY: 2.0},
            usages={},
            instance_s=20.0,
            include_invocation_fee=False,
        ).total
        assert meter.cost_usd == pytest.approx(expected)
        assert meter.billable_cpu_seconds == pytest.approx(20.0)

    def test_instance_billed_model_ignores_request_invoicing(self, small_trace):
        bus = EventBus()
        meter = CostMeter(PlatformName.GCP_RUN_INSTANCE).attach(bus)
        replay_trace(small_trace, bus)
        # Requests are counted for rate statistics but not billed.
        assert meter.num_requests == len(small_trace.requests)
        assert meter.cost_usd == 0.0

    def test_finalize_closes_open_instances(self):
        bus = EventBus()
        meter = CostMeter(PlatformName.AZURE_PREMIUM).attach(bus)
        bus.publish(SandboxColdStart(0.0, "sb-0", "f", alloc_vcpus=1.0, alloc_memory_gb=3.5))
        bus.publish(SandboxColdStart(2.0, "sb-1", "f", alloc_vcpus=1.0, alloc_memory_gb=3.5))
        meter.finalize(10.0)
        assert meter.instances_closed == 2
        assert meter.instance_seconds == pytest.approx(10.0 + 8.0)
        assert meter.cost_usd > 0.0


class TestMeterErrors:
    def test_simulator_outcome_without_resources_rejected(self):
        meter = CostMeter(PlatformName.AWS_LAMBDA)

        class Outcome:
            execution_duration_s = 0.1
            init_duration_s = 0.0
            cold_start = False

        with pytest.raises(ValueError):
            meter.meter_outcome(Outcome(), resources=None)

    def test_unmeterable_outcome_rejected(self):
        meter = CostMeter(PlatformName.AWS_LAMBDA)
        with pytest.raises(TypeError):
            meter.meter_outcome(object())

    def test_instance_billed_meter_also_rejects_unmeterable_outcome(self):
        meter = CostMeter(PlatformName.GCP_RUN_INSTANCE)
        with pytest.raises(TypeError):
            meter.meter_outcome(object())

    def test_invalid_resources_rejected(self):
        with pytest.raises(ValueError):
            RequestResources(alloc_vcpus=0.0, alloc_memory_gb=1.0, used_cpu_seconds=0.0, used_memory_gb=0.0)

    def test_simulator_outcome_with_resources(self):
        meter = CostMeter(PlatformName.GCP_RUN_REQUEST)
        bus = EventBus()
        resources = RequestResources(
            alloc_vcpus=1.0, alloc_memory_gb=2.0, used_cpu_seconds=0.1, used_memory_gb=0.09
        )
        meter.attach(bus, resources)

        class Outcome:
            execution_duration_s = 0.2
            init_duration_s = 1.0
            cold_start = True

        bus.publish(RequestCompleted(1.2, Outcome()))
        expected = BillingCalculator(PlatformName.GCP_RUN_REQUEST).bill(
            InvocationBillingInput(
                execution_s=0.2,
                init_s=1.0,
                alloc_vcpus=1.0,
                alloc_memory_gb=2.0,
                used_cpu_seconds=0.1,
                used_memory_gb=0.09,
            )
        )
        assert meter.cost_usd == expected.invoice.total
        assert meter.num_cold_starts == 1
