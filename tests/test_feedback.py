"""The execution-feedback layer: unit, integration and hypothesis property tests.

Covers the three coupling mechanisms of the closed state loop plus the
invariants the rest of the repo relies on:

- with ``feedback="off"`` (every entry point's default) and with
  ``feedback="on"`` on an *unconstrained* cluster, runs are byte-identical --
  the loop is invisible when there is nothing to feed back;
- a throttled scheduler strictly inflates request latency at equal seeds;
- admission rejection produces typed ``FailedRequest`` outcomes bounded by
  the fleet's rejection count, and admission queueing defers sandbox
  readiness by the measured queue wait;
- a static slowdown stretches every request's latency pointwise (hypothesis
  property over traffic shapes, slowdown factors and seeds).
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy
from repro.platform.autoscaler import AutoscalerConfig
from repro.platform.concurrency import ConcurrencyModel
from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.presets import get_platform_preset
from repro.platform.serving import ServingOverheadModel
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim
from repro.sched.task import SimTask, TaskPhase
from repro.sim.events import (
    EventBus,
    SandboxAdmitted,
    SandboxColdStart,
    SandboxQueued,
    SandboxRejected,
)
from repro.sim.feedback import (
    AdmissionState,
    FeedbackChannel,
    PublishedRate,
    ServiceTimeModifier,
    StaticSlowdown,
)
from repro.workloads.functions import PYAES_FUNCTION


# ----------------------------------------------------------------------
# Deterministic platform builders (no sampling variance anywhere, so the
# only difference between a raw and a stretched run is the feedback itself)
# ----------------------------------------------------------------------


def _deterministic_platform(keep_alive_s=1e6, autoscaler=None, max_concurrency=1):
    """A platform whose overhead and keep-alive draws are sampling-free.

    ``jitter_fraction=0`` makes the lognormal overhead collapse to its mean
    and ``min == max`` keep-alive returns the bound without drawing, so two
    runs differing only in feedback consume identical randomness *values*
    regardless of how many draws each makes.
    """
    concurrency = (
        ConcurrencyModel.single() if max_concurrency == 1 else ConcurrencyModel.multi(max_concurrency)
    )
    return PlatformConfig(
        name="deterministic",
        concurrency=concurrency,
        serving=ServingOverheadModel(
            architecture=ServingOverheadModel.api_polling().architecture,
            base_overhead_s=1e-3,
            jitter_fraction=0.0,
        ),
        keep_alive=KeepAlivePolicy(
            min_keep_alive_s=keep_alive_s,
            max_keep_alive_s=keep_alive_s,
            resource_behavior=KeepAliveResourceBehavior.FULL_ALLOCATION,
        ),
        autoscaler=autoscaler,
    )


def _function(cpu_time_s=0.2, io_time_s=0.05, init_duration_s=0.5):
    return FunctionConfig(
        name="fn",
        alloc_vcpus=1.0,
        alloc_memory_gb=1.0,
        cpu_time_s=cpu_time_s,
        io_time_s=io_time_s,
        init_duration_s=init_duration_s,
    )


# ----------------------------------------------------------------------
# FeedbackChannel unit behaviour
# ----------------------------------------------------------------------


class TestFeedbackChannel:
    def test_no_modifiers_is_exactly_full_speed(self):
        assert FeedbackChannel().service_rate(0.0) == 1.0

    def test_modifiers_compose_multiplicatively_and_clamp(self):
        channel = FeedbackChannel(min_service_rate=0.1)
        channel.set_modifier("a", StaticSlowdown(0.5))
        assert channel.service_rate(0.0) == 0.5
        channel.set_modifier("b", StaticSlowdown(0.5))
        assert channel.service_rate(0.0) == 0.25
        channel.set_modifier("c", StaticSlowdown(0.01))
        assert channel.service_rate(0.0) == 0.1  # floored at min_service_rate
        channel.remove_modifier("b")
        channel.remove_modifier("c")
        assert channel.service_rate(0.0) == 0.5

    def test_static_slowdown_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            StaticSlowdown(0.0)
        with pytest.raises(ValueError):
            StaticSlowdown(1.5)

    def test_published_rate_is_piecewise_and_floored(self):
        rate = PublishedRate()
        assert rate.service_rate(0.0) == 1.0
        rate.publish(1.0, 0.25)
        assert rate.service_rate(5.0) == 0.25
        rate.publish(2.0, 0.0)  # a zero-delivery window must not stall consumers
        assert rate.service_rate(3.0) == pytest.approx(1e-3)
        assert [t for t, _ in rate.history] == [1.0, 2.0]
        assert isinstance(rate, ServiceTimeModifier)

    def test_admission_tracking_and_prefix_depth(self):
        bus = EventBus()
        channel = FeedbackChannel().attach(bus)
        assert channel.admission_state("fn-a/sandbox-0") is None
        bus.publish(SandboxQueued(1.0, "fn-a/sandbox-0", queue_depth=1))
        bus.publish(SandboxQueued(1.5, "fn-b/sandbox-0", queue_depth=2))
        assert channel.admission_state("fn-a/sandbox-0") is AdmissionState.QUEUED
        assert channel.admission_queue_depth() == 2
        assert channel.admission_queue_depth("fn-a/") == 1
        bus.publish(SandboxAdmitted(4.0, "fn-a/sandbox-0", host_name="h", queue_wait_s=3.0))
        assert channel.admission_state("fn-a/sandbox-0") is AdmissionState.ADMITTED
        assert channel.queue_wait_s("fn-a/sandbox-0") == 3.0
        assert channel.admission_queue_depth() == 1
        bus.publish(SandboxRejected(5.0, "fn-b/sandbox-0", reason="queue_full"))
        assert channel.admission_state("fn-b/sandbox-0") is AdmissionState.REJECTED
        assert channel.admission_queue_depth() == 0

    def test_gate_fires_once_on_resolution(self):
        bus = EventBus()
        channel = FeedbackChannel().attach(bus)
        bus.publish(SandboxQueued(0.0, "s0", queue_depth=1))
        seen = []
        channel.gate_readiness("s0", seen.append)
        bus.publish(SandboxAdmitted(2.0, "s0", host_name="h", queue_wait_s=2.0))
        assert len(seen) == 1 and isinstance(seen[0], SandboxAdmitted)
        # a second resolution event does not re-fire the (consumed) gate
        bus.publish(SandboxAdmitted(3.0, "s0", host_name="h"))
        assert len(seen) == 1

    def test_gate_on_already_resolved_admission_is_an_error(self):
        bus = EventBus()
        channel = FeedbackChannel().attach(bus)
        bus.publish(SandboxRejected(0.0, "s0", reason="no_capacity"))
        with pytest.raises(ValueError):
            channel.gate_readiness("s0", lambda event: None)


# ----------------------------------------------------------------------
# Service-time stretching at the platform layer
# ----------------------------------------------------------------------


class TestServiceTimeStretching:
    def test_static_slowdown_stretches_cpu_but_not_io(self):
        function = _function(cpu_time_s=0.4, io_time_s=0.1)
        arrivals = [0.0, 10.0, 20.0]

        def run(channel):
            simulator = PlatformSimulator(
                _deterministic_platform(), function, seed=1, feedback=channel
            )
            return simulator.run(arrivals, horizon_s=100.0)

        raw = run(None)
        channel = FeedbackChannel()
        channel.set_modifier("static", StaticSlowdown(0.5))
        slow = run(channel)
        assert raw.num_requests == slow.num_requests == 3
        overhead = 1e-3  # jitter-free serving overhead at 1 vCPU
        for fast, stretched in zip(raw.requests, slow.requests):
            # CPU work runs at half speed; IO and overhead stay wall-clock.
            assert fast.execution_duration_s == pytest.approx(0.4 + 0.1 + overhead)
            assert stretched.execution_duration_s == pytest.approx(0.8 + 0.1 + overhead)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.sampled_from([0.25, 0.5, 0.8]),
        rps=st.sampled_from([1.0, 4.0, 10.0]),
        cpu_time_s=st.sampled_from([0.05, 0.3]),
    )
    def test_stretched_latency_dominates_raw_latency_pointwise(
        self, seed, rate, rps, cpu_time_s
    ):
        """Hypothesis property: slowdown never makes any request faster.

        Keep-alive is effectively infinite here: with expiry in play a
        stretched run can legitimately beat a raw run pointwise (the raw
        sandbox idles earlier, expires earlier, and a late request that hits
        it cold pays a full cold start the stretched run's still-warm sandbox
        avoids).  Without expiry, warm capacity in the stretched run is never
        better than in the raw run, so latency dominates pointwise.
        """
        from repro.workloads.traffic import constant_rate_arrivals

        function = _function(cpu_time_s=cpu_time_s, io_time_s=0.02)
        arrivals = constant_rate_arrivals(rps, 6.0)

        def run(channel):
            simulator = PlatformSimulator(
                _deterministic_platform(), function, seed=seed, feedback=channel
            )
            metrics = simulator.run(arrivals, horizon_s=500.0)
            return {r.request_id: r.end_to_end_latency_s for r in metrics.requests}

        raw = run(None)
        channel = FeedbackChannel()
        channel.set_modifier("static", StaticSlowdown(rate))
        stretched = run(channel)
        assert set(raw) == set(stretched)
        for request_id, raw_latency in raw.items():
            assert stretched[request_id] >= raw_latency - 1e-9


# ----------------------------------------------------------------------
# Cluster-level properties: off == default, on == off when unconstrained
# ----------------------------------------------------------------------


def _cluster(seed, feedback, *, policy=PlacementPolicy.BEST_FIT, max_hosts=100_000,
             queue_depth=0, host_vcpus=64.0, preset="gcp_run_like", rps=3.0,
             with_scheduler=False, quota_s=None):
    preset_config = get_platform_preset(preset)
    deployments = []
    for index in range(2):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        deployments.append(
            FunctionDeployment(
                function=function, platform=preset_config, rps=rps, duration_s=6.0
            )
        )
    scheduler = None
    if with_scheduler:
        config = SchedulerConfig(
            bandwidth=BandwidthConfig(period_s=0.1, quota_s=quota_s),
            horizon_s=8.0,
        )
        scheduler = SchedulerSim(
            config, [SimTask(phases=[TaskPhase.compute(20.0)], arrival_s=0.0, name="hog")]
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=host_vcpus, memory_gb=host_vcpus * 2),
            policy=policy,
            max_hosts=max_hosts,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="gcp_run_request",
        scheduler=scheduler,
        seed=seed,
        feedback=feedback,
    )


def _fingerprint(result):
    return json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "unplaceable": result.fleet.unplaceable,
        },
        sort_keys=True,
    ).encode()


class TestClusterFeedbackProperties:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        policy=st.sampled_from([PlacementPolicy.BEST_FIT, PlacementPolicy.COST_FIT]),
    )
    def test_feedback_on_is_byte_identical_when_nothing_feeds_back(self, seed, policy):
        """An unconstrained fleet + unthrottled scheduler publish no feedback,
        so the closed loop byte-reproduces the open-loop (PR-3) run."""
        off = _fingerprint(
            _cluster(seed, "off", policy=policy, with_scheduler=True, quota_s=None).run()
        )
        on = _fingerprint(
            _cluster(seed, "on", policy=policy, with_scheduler=True, quota_s=None).run()
        )
        assert off == on

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_failed_requests_bounded_by_rejected_cold_starts(self, seed):
        """Every FailedRequest traces back to one rejected sandbox admission."""
        result = _cluster(
            seed, "on", max_hosts=1, queue_depth=0, host_vcpus=1.0, preset="aws_lambda_like", rps=6.0
        ).run()
        summary = result.summary()
        rejected = (
            summary["rejected_no_capacity"]
            + summary["rejected_queue_full"]
            + summary["rejected_oversized"]
        )
        assert summary["failed_requests"] <= rejected
        failures = [f for m in result.metrics.values() for f in m.failures]
        assert len(failures) == summary["failed_requests"]
        assert all(f.reason == "admission_rejected" for f in failures)

    def test_saturated_cluster_surfaces_failures_and_inflation(self):
        """Acceptance criterion: a capacity-bound closed-loop run reports both
        nonzero failed requests and nonzero latency inflation."""
        result = _cluster(
            7, "on", max_hosts=1, queue_depth=0, host_vcpus=1.0, preset="aws_lambda_like", rps=6.0
        ).run()
        summary = result.summary()
        assert summary["failed_requests"] > 0
        assert summary["latency_inflation"] > 0

    def test_feedback_off_reports_no_failures_on_the_same_saturated_cluster(self):
        result = _cluster(
            7, "off", max_hosts=1, queue_depth=0, host_vcpus=1.0, preset="aws_lambda_like", rps=6.0
        ).run()
        summary = result.summary()
        assert summary["failed_requests"] == 0.0
        assert summary["rejected_no_capacity"] > 0  # backpressure existed, it was just invisible


class TestSchedulerThrottleCoupling:
    def test_throttled_cosim_inflates_latency_at_equal_seeds(self):
        """Acceptance criterion: throttling strictly raises mean request latency."""
        unthrottled = _cluster(3, "on", with_scheduler=True, quota_s=None).run().summary()
        throttled = _cluster(3, "on", with_scheduler=True, quota_s=0.03).run().summary()
        assert throttled["num_requests"] == unthrottled["num_requests"]
        assert throttled["mean_latency_ms"] > unthrottled["mean_latency_ms"]
        assert throttled["latency_inflation"] > unthrottled["latency_inflation"]
        # the stretched durations are what the live meter bills
        assert throttled["cost_usd"] > unthrottled["cost_usd"]

    def test_feedback_off_throttling_stays_invisible(self):
        off_unthrottled = _cluster(3, "off", with_scheduler=True, quota_s=None).run().summary()
        off_throttled = _cluster(3, "off", with_scheduler=True, quota_s=0.03).run().summary()
        assert off_throttled["mean_latency_ms"] == pytest.approx(
            off_unthrottled["mean_latency_ms"]
        )

    def test_attached_scheduler_results_unchanged_by_feedback(self):
        """Publishing feedback must not perturb the engine's own outcome."""
        with_fb = _cluster(5, "on", with_scheduler=True, quota_s=0.03).run()
        without_fb = _cluster(5, "off", with_scheduler=True, quota_s=0.03).run()
        assert with_fb.scheduler is not None and without_fb.scheduler is not None
        for name, task in with_fb.scheduler.tasks.items():
            other = without_fb.scheduler.tasks[name]
            assert task.cpu_consumed_s == other.cpu_consumed_s
            assert task.run_segments == other.run_segments
            assert task.throttle_segments == other.throttle_segments


class TestQueuedReadinessDeferral:
    def test_queue_wait_shifts_sandbox_readiness_one_for_one(self):
        """A queued cold start's requests wait queue time + init, not just init."""
        preset = get_platform_preset("aws_lambda_like")
        # Shrink keep-alive so capacity releases mid-run and the queue drains.
        keep_alive = dataclasses.replace(
            preset.keep_alive, min_keep_alive_s=1.0, max_keep_alive_s=1.0
        )
        platform = dataclasses.replace(preset, keep_alive=keep_alive)
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5), name="fn-00"
        )
        simulator = ClusterSimulator(
            [FunctionDeployment(function=function, platform=platform, rps=6.0, duration_s=4.0)],
            fleet_config=FleetConfig(
                host_spec=HostSpec(vcpus=1.0, memory_gb=2.0),
                max_hosts=1,
                queue_depth=8,
                sample_interval_s=2.0,
            ),
            seed=11,
            feedback="on",
        )
        result = simulator.run(horizon_s=60.0)
        fleet = result.fleet
        assert fleet.admitted_from_queue > 0
        channel = simulator.feedback
        init_s = platform.placement_delay_s + function.init_duration_s
        outcomes = {r.sandbox_name: r for m in result.metrics.values() for r in m.requests}
        deferred = 0
        for name, outcome in outcomes.items():
            wait = channel.queue_wait_s(name)
            if wait <= 0 or not outcome.cold_start:
                continue
            deferred += 1
            # init wait as seen by the request = queue wait + initialisation
            assert outcome.init_duration_s == pytest.approx(wait + init_s, abs=1e-6)
        assert deferred > 0


class TestHorizonCensoredBackpressure:
    def test_requests_still_queued_at_the_horizon_are_reported_pending(self):
        """Backpressure that outlives the run must not vanish from accounting.

        A fleet with queueing enabled but zero capacity release keeps every
        cold start queued forever: nothing completes, nothing is rejected.
        The summary reports those requests as pending rather than showing a
        silent zero across the board.
        """
        result = _cluster(
            9, "on", max_hosts=0, queue_depth=64, host_vcpus=1.0,
            preset="aws_lambda_like", rps=4.0,
        ).run()
        summary = result.summary()
        assert summary["num_requests"] == 0.0
        assert summary["failed_requests"] == 0.0
        assert summary["pending_requests"] > 0
        assert summary["pending_requests"] == summary["queued"] - summary["admitted_from_queue"]


class TestInstanceBillingExcludesQueueWait:
    def test_admission_rebases_the_instance_start(self):
        from repro.billing.meter import CostMeter

        bus = EventBus()
        meter = CostMeter("gcp_run_instance").attach(bus).attach_admissions(bus)
        bus.publish(SandboxColdStart(0.0, "s0", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        # Queued for 5 s, then admitted: the billed lifespan starts at 5.0.
        bus.publish(SandboxAdmitted(5.0, "s0", host_name="h", queue_wait_s=5.0))
        meter.finalize(8.0)
        assert meter.instance_seconds == pytest.approx(3.0)

    def test_direct_placement_lifespan_is_unchanged(self):
        from repro.billing.meter import CostMeter

        bus = EventBus()
        meter = CostMeter("gcp_run_instance").attach(bus).attach_admissions(bus)
        bus.publish(SandboxColdStart(1.0, "s0", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        bus.publish(SandboxAdmitted(1.0, "s0", host_name="h"))  # same-instant admission
        meter.finalize(8.0)
        assert meter.instance_seconds == 7.0

    def test_never_admitted_sandbox_bills_nothing(self):
        """A sandbox queued until the horizon spent its whole life off-host.

        Its entire "lifespan" is admission-queue wait -- exactly what the
        gate excludes from invoices -- so closing it must bill zero, not the
        cold-start-to-horizon span.
        """
        from repro.billing.meter import CostMeter

        bus = EventBus()
        meter = CostMeter("gcp_run_instance").attach(bus).attach_admissions(bus)
        bus.publish(SandboxColdStart(0.0, "s0", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        meter.finalize(8.0)  # still queued: never admitted
        assert meter.instance_seconds == 0.0
        assert meter.cost_usd == 0.0
        assert meter.instances_started == meter.instances_closed == 1

    def test_zero_capacity_closed_loop_cluster_bills_no_instance_time(self):
        """End to end: a queue that never drains produces a zero invoice.

        With instance billing and feedback on, every cold start queues
        forever (zero-capacity fleet), so no sandbox ever lands on a host --
        the run must invoice nothing rather than billing each sandbox's
        cold-start-to-horizon queue wait.
        """
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5), name="fn-00"
        )
        simulator = ClusterSimulator(
            [
                FunctionDeployment(
                    function=function,
                    platform=get_platform_preset("aws_lambda_like"),
                    rps=4.0,
                    duration_s=6.0,
                )
            ],
            fleet_config=FleetConfig(
                host_spec=HostSpec(vcpus=1.0, memory_gb=2.0),
                max_hosts=0,
                queue_depth=64,
                sample_interval_s=2.0,
            ),
            billing_platform="gcp_run_instance",
            seed=9,
            feedback="on",
        )
        result = simulator.run()
        assert result.summary()["pending_requests"] > 0  # queued forever
        assert result.meter.instance_seconds == 0.0
        assert result.meter.cost_usd == 0.0


class TestRejectionAfterQueueing:
    def test_rejected_while_queued_fails_the_pending_request(self):
        """The gate's rejection branch: queue first, reject later.

        The stock fleet never rejects an already-queued sandbox, but the
        channel contract allows it (a future fleet could time queue entries
        out), so the platform must handle a late rejection: tear the sandbox
        down and fail the requests that were waiting on it.
        """
        fleet_bus = EventBus()
        channel = FeedbackChannel().attach(fleet_bus)
        simulator = PlatformSimulator(
            _deterministic_platform(), _function(), seed=0, feedback=channel
        )
        # A stand-in fleet: every cold start is queued immediately.
        simulator.bus.subscribe(
            SandboxColdStart,
            lambda event: fleet_bus.publish(
                SandboxQueued(event.time_s, event.sandbox_name, queue_depth=1)
            ),
        )
        simulator.run([0.0], horizon_s=5.0)
        assert simulator.metrics.num_requests == 0  # still parked behind the gate
        name = next(iter(simulator._sandboxes))
        fleet_bus.publish(SandboxRejected(5.0, name, reason="queue_timeout"))
        assert simulator.metrics.failed_requests == 1
        failure = simulator.metrics.failures[0]
        assert failure.reason == "admission_rejected"
        assert failure.sandbox_name == name
        # Failure is stamped with the kernel clock (in a co-simulation the
        # gate fires inside a kernel event; here the clock never advanced).
        assert failure.failed_s == simulator.kernel.now
        # The aborted sandbox is gone from the pool and cannot serve.
        assert simulator._instance_count() == 0


class TestConfigValidationAndMetricsEdges:
    def test_cluster_simulator_rejects_unknown_feedback_mode(self):
        preset = get_platform_preset("gcp_run_like")
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0), name="fn-00"
        )
        deployment = FunctionDeployment(function=function, platform=preset)
        with pytest.raises(ValueError):
            ClusterSimulator([deployment], feedback="bogus")

    def test_autoscaler_config_rejects_negative_queue_weight(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(admission_queue_weight=-1.0)

    def test_latency_inflation_edge_cases(self):
        from repro.platform.metrics import RequestOutcome, SimulationMetrics

        empty = SimulationMetrics()
        assert empty.latency_inflation() != empty.latency_inflation()  # NaN
        no_floor = SimulationMetrics()
        no_floor.record(
            RequestOutcome(
                request_id="r0", arrival_s=0.0, start_s=0.0, completion_s=1.0,
                execution_duration_s=1.0, cold_start=False, init_duration_s=0.0,
                queue_delay_s=0.0, sandbox_name="s",
            )
        )
        # pre-feedback records carry no floor: inflation degrades to 0, not inf
        assert no_floor.latency_inflation() == 0.0
        assert no_floor.summary()["latency_inflation"] == 0.0


# ----------------------------------------------------------------------
# Queue-aware autoscaling (AutoscalerConfig.admission_queue_weight)
# ----------------------------------------------------------------------


class TestQueueAwareAutoscaling:
    def _simulator(self, weight):
        autoscaler = AutoscalerConfig(
            metric_window_s=4.0,
            evaluation_interval_s=1.0,
            min_instances=0,
            max_instances=50,
            scale_down_delay_s=30.0,
            panic_threshold=0.0,
            admission_queue_weight=weight,
        )
        platform = _deterministic_platform(autoscaler=autoscaler, max_concurrency=10)
        bus = EventBus()
        channel = FeedbackChannel().attach(bus)
        simulator = PlatformSimulator(platform, _function(), seed=0, feedback=channel)
        return simulator, bus

    def test_scales_up_on_admission_queue_depth_with_hysteresis(self):
        simulator, bus = self._simulator(weight=10.0)
        # Three sandboxes stuck in the fleet admission queue, no traffic at all.
        for index in range(3):
            bus.publish(SandboxQueued(0.0, f"sandbox-q{index}", queue_depth=index + 1))
        simulator.schedule_arrivals([], horizon_s=0.0)
        simulator.kernel.run(until=6.0)
        scaled_to = simulator._instance_count()
        # signal = weight * depth = 30 -> ceil(30 / (0.7 * 10)) = 5 instances
        assert scaled_to == 5
        # Queue drains: hysteresis holds the pool for scale_down_delay_s...
        for index in range(3):
            bus.publish(SandboxAdmitted(6.0, f"sandbox-q{index}", host_name="h", queue_wait_s=6.0))
        simulator.kernel.run(until=20.0)
        assert simulator._instance_count() == scaled_to
        # ...and only then releases it.
        simulator.kernel.run(until=60.0)
        assert simulator._instance_count() == 0

    def test_zero_weight_ignores_the_admission_queue(self):
        simulator, bus = self._simulator(weight=0.0)
        for index in range(3):
            bus.publish(SandboxQueued(0.0, f"sandbox-q{index}", queue_depth=index + 1))
        simulator.schedule_arrivals([], horizon_s=0.0)
        simulator.kernel.run(until=6.0)
        assert simulator._instance_count() == 0
