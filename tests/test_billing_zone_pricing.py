"""Zone-aware pricing: per-price_class multipliers through catalog, meter, fleet.

Heterogeneous multi-zone fleets (PR 3) gave hosts a ``price_class``; this
suite covers the billing side: scaling a catalog model's unit prices by a
price-class multiplier (:meth:`BillingModel.with_price_multiplier` /
:func:`get_billing_model`), and the :class:`CostMeter` invoicing each request
at the price class of the host its sandbox landed on.

The multi-zone cluster scenario is pinned as a golden file
(``tests/golden/zones/multi_zone_invoice.json``, float-exact like the Table-1
goldens).  Regenerate after an *intentional* billing change with::

    PYTHONPATH=src python tests/test_billing_zone_pricing.py
"""

import dataclasses
import json
import pathlib

import pytest

from repro.billing.catalog import get_billing_model
from repro.billing.meter import CostMeter
from repro.billing.units import ResourceKind
from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig, ZoneConfig
from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import PYAES_FUNCTION

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "zones" / "multi_zone_invoice.json"

MULTIPLIERS = {"economy": 0.8, "premium": 1.5}


# ----------------------------------------------------------------------
# Model / catalog units
# ----------------------------------------------------------------------


class TestPriceMultiplier:
    def test_scales_resource_prices_but_not_the_invocation_fee(self):
        base = get_billing_model("gcp_run_request")
        scaled = base.with_price_multiplier(1.5)
        for before, after in zip(base.allocation_resources, scaled.allocation_resources):
            assert after.unit_price == before.unit_price * 1.5
        assert scaled.invocation_fee == base.invocation_fee

    def test_identity_multiplier_returns_the_same_object(self):
        base = get_billing_model("aws_lambda")
        assert base.with_price_multiplier(1.0) is base

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            get_billing_model("aws_lambda").with_price_multiplier(-0.1)

    def test_invoice_scales_linearly_in_the_multiplier(self):
        base = get_billing_model("gcp_run_request")
        scaled = base.with_price_multiplier(2.0)
        kwargs = dict(
            execution_s=1.0,
            allocations={ResourceKind.CPU: 1.0, ResourceKind.MEMORY: 2.0},
            include_invocation_fee=False,
        )
        assert scaled.invoice(**kwargs).total == pytest.approx(2.0 * base.invoice(**kwargs).total)

    def test_catalog_lookup_applies_the_class_multiplier(self):
        base = get_billing_model("gcp_run_request")
        premium = get_billing_model(
            "gcp_run_request", price_class="premium", price_class_multipliers=MULTIPLIERS
        )
        unknown = get_billing_model(
            "gcp_run_request", price_class="mystery", price_class_multipliers=MULTIPLIERS
        )
        assert premium.allocation_resources[0].unit_price == (
            base.allocation_resources[0].unit_price * 1.5
        )
        assert unknown is base  # unmapped classes bill at list prices


# ----------------------------------------------------------------------
# Multi-zone cluster scenario (golden)
# ----------------------------------------------------------------------


def _multi_zone_invoice() -> dict:
    """One frozen two-zone COST_FIT co-simulation, invoiced by zone."""
    preset = get_platform_preset("gcp_run_like")
    deployments = []
    # Mixed demand: small functions the cheap zone absorbs, big ones only the
    # premium zone's larger hosts can hold.
    for index, vcpus in enumerate((1.0, 1.0, 4.0, 4.0)):
        function = PYAES_FUNCTION.to_function_config(vcpus, vcpus * 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=2.0, duration_s=10.0)
        )
    economy = HostSpec(vcpus=2.0, memory_gb=4.0, price_class="economy")
    premium = HostSpec(
        vcpus=8.0,
        memory_gb=16.0,
        hourly_cost_usd=economy.hourly_cost_usd * 5.0,
        price_class="premium",
    )
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            policy=PlacementPolicy.COST_FIT,
            zones=(
                ZoneConfig(name="economy", host_spec=economy, max_hosts=4),
                ZoneConfig(name="premium", host_spec=premium, max_hosts=4),
            ),
            sample_interval_s=5.0,
        ),
        billing_platform="gcp_run_request",
        seed=20260730,
        price_class_multipliers=MULTIPLIERS,
    )
    result = simulator.run()
    meter = result.meter
    return {
        "num_requests": meter.num_requests,
        "cost_usd": meter.cost_usd,
        "cost_usd_by_class": dict(sorted(meter.cost_usd_by_class.items())),
        "billable_cpu_seconds": meter.billable_cpu_seconds,
        "billable_memory_gb_seconds": meter.billable_memory_gb_seconds,
        "invocation_fee_usd": meter.invocation_fee_usd,
    }


class TestMultiZoneInvoice:
    def test_both_zones_appear_on_the_invoice(self):
        invoice = _multi_zone_invoice()
        assert invoice["cost_usd_by_class"].get("economy", 0.0) > 0
        assert invoice["cost_usd_by_class"].get("premium", 0.0) > 0
        assert sum(invoice["cost_usd_by_class"].values()) == pytest.approx(invoice["cost_usd"])

    def test_matches_golden_float_exact(self):
        assert GOLDEN_PATH.exists(), (
            f"missing golden file {GOLDEN_PATH}; regenerate with "
            "'PYTHONPATH=src python tests/test_billing_zone_pricing.py'"
        )
        assert _multi_zone_invoice() == json.loads(GOLDEN_PATH.read_text())

    def test_identity_multipliers_bill_exactly_like_no_multipliers(self):
        """Float-exact guard: flat multipliers must not perturb invoices."""
        preset = get_platform_preset("gcp_run_like")
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5), name="fn-00"
        )
        deployments = [
            FunctionDeployment(function=function, platform=preset, rps=3.0, duration_s=8.0)
        ]

        def run(multipliers):
            simulator = ClusterSimulator(
                deployments,
                billing_platform="gcp_run_request",
                seed=5,
                price_class_multipliers=multipliers,
            )
            return simulator.run().meter.cost_usd

        assert run({"standard": 1.0}) == run(None)


def regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_multi_zone_invoice(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()


# Keep CostMeter importable-name coverage honest: the attach_fleet duck-type
# contract is exercised above via ClusterSimulator; this guards the direct API.
def test_attach_fleet_resolves_price_class_via_duck_typing():
    class FakeFleet:
        def price_class_of(self, sandbox_name):
            return "premium" if sandbox_name.startswith("big/") else "economy"

    meter = CostMeter("gcp_run_request", price_class_multipliers=MULTIPLIERS)
    meter.attach_fleet(FakeFleet())
    assert meter._resolve_price_class("big/sandbox-0") == "premium"
    assert meter._resolve_price_class("small/sandbox-0") == "economy"
    premium = meter._calculator_for("premium").model
    assert premium.allocation_resources[0].unit_price == (
        meter.model.allocation_resources[0].unit_price * 1.5
    )
    assert meter._calculator_for("unknown") is meter.calculator
