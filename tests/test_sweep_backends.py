"""Tests for pluggable sweep backends, checkpoint/resume, and the sweep-layer bugfixes.

The tentpole invariant: every backend (serial, multiprocessing pool, futures
executor, multi-node socket queue) produces *byte-identical* sweep CSVs, in
ordered and work-stealing mode, across kill/resume boundaries, because each
scenario is self-contained (runner path + params + derived seed) and the
sweep layer reassembles rows by grid index.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.sim.backends import (
    BACKEND_NAMES,
    FuturesBackend,
    MultiprocessingBackend,
    PointOutcome,
    SerialBackend,
    SocketQueueBackend,
    SweepPointError,
    execute_point,
    resolve_backend,
    run_sweep_worker,
)
from repro.sim.checkpoint import SweepJournal
from repro.sim.rng import derive_seed
from repro.sim.sweep import build_grid, run_sweep


def _grid(rates=(1.0, 2.0), base_seed=7):
    """A small, cheap grid: the minimal echo workload in virtual time."""
    return build_grid(
        runner="repro.sim.sweep:platform_point",
        axes={"platform": ["aws_lambda_like"], "workload": ["minimal"], "rps": list(rates)},
        common={"duration_s": 5.0, "arrival_process": "constant"},
        base_seed=base_seed,
    )


def _csv_bytes(store, path) -> bytes:
    store.to_csv(str(path))
    return path.read_bytes()


def _broken(scenario):
    """The same grid point, pointed at a platform preset that does not exist."""
    return dataclasses.replace(scenario, params={**scenario.params, "platform": "no_such"})


class _RecordingSerial(SerialBackend):
    """Serial backend that records which grid indexes it actually executed."""

    def __init__(self):
        self.ran = []

    def run(self, items, ordered=True):
        for item in items:
            self.ran.append(item[0])
            yield execute_point(item, keep_cause=True)


# ----------------------------------------------------------------------
# Satellite bugfix: seed/scenario-id aliasing in build_grid
# ----------------------------------------------------------------------


class TestSeedAliasingFix:
    def test_separator_values_no_longer_collide(self):
        # Before escaping, (a="x", b="y/b=y") and (a="x/b=y", b="y") both
        # rendered as "a=x/b=y/b=y" -- aliased ids, aliased seed streams.
        scenarios = build_grid(
            runner="r", axes={"a": ["x", "x/b=y"], "b": ["y", "y/b=y"]}, base_seed=1
        )
        ids = [s.scenario_id for s in scenarios]
        assert len(set(ids)) == len(ids) == 4
        assert len({s.seed for s in scenarios}) == 4

    def test_structural_characters_are_percent_encoded(self):
        (s,) = build_grid(runner="r", axes={"platform": ["aws/lambda"]}, base_seed=0)
        assert s.scenario_id == "platform=aws%2Flambda"
        (s,) = build_grid(runner="r", axes={"p": ["a=b"]}, base_seed=0)
        assert s.scenario_id == "p=a%3Db"
        (s,) = build_grid(runner="r", axes={"p": ["50%"]}, base_seed=0)
        assert s.scenario_id == "p=50%25"

    def test_axis_names_are_escaped_too(self):
        (s,) = build_grid(runner="r", axes={"a=b": ["x"]}, base_seed=0)
        assert s.scenario_id == "a%3Db=x"

    def test_escaping_is_injective_for_preescaped_text(self):
        # A value that *looks* escaped must not collide with the value whose
        # escape it resembles: "%" itself is encoded first.
        a = build_grid(runner="r", axes={"v": ["a%2Fb"]}, base_seed=0)[0]
        b = build_grid(runner="r", axes={"v": ["a/b"]}, base_seed=0)[0]
        assert a.scenario_id != b.scenario_id
        assert a.seed != b.seed

    def test_legacy_ids_and_seeds_are_byte_identical(self):
        # Separator-free values -- every value the stock CLIs produce --
        # render exactly as before, so existing CSVs and goldens reproduce.
        (s,) = build_grid(
            runner="r", axes={"platform": ["aws_lambda_like"], "rps": [1.5]}, base_seed=2026
        )
        assert s.scenario_id == "platform=aws_lambda_like/rps=1.5"
        assert s.seed == derive_seed(2026, "platform=aws_lambda_like/rps=1.5")

    @given(
        a=st.lists(st.text(alphabet="ab/=%", max_size=5), min_size=1, max_size=4, unique=True),
        b=st.lists(st.text(alphabet="ab/=%", max_size=5), min_size=1, max_size=4, unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_distinct_points_always_get_distinct_ids(self, a, b):
        scenarios = build_grid(runner="r", axes={"a": a, "b": b}, base_seed=3)
        ids = [s.scenario_id for s in scenarios]
        assert len(set(ids)) == len(ids) == len(a) * len(b)


# ----------------------------------------------------------------------
# Tentpole: backend equivalence
# ----------------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference_bytes(self, tmp_path_factory):
        store = run_sweep(_grid(), backend="serial")
        return _csv_bytes(store, tmp_path_factory.mktemp("ref") / "ref.csv")

    @pytest.mark.parametrize("backend", ["serial", "multiprocessing", "futures"])
    @pytest.mark.parametrize("ordered", [True, False])
    def test_in_process_backends_byte_identical(self, backend, ordered, reference_bytes, tmp_path):
        store = run_sweep(_grid(), backend=backend, processes=2, ordered=ordered)
        assert _csv_bytes(store, tmp_path / "out.csv") == reference_bytes

    def test_socket_queue_backend_byte_identical(self, reference_bytes, tmp_path):
        backend = SocketQueueBackend(port=0, timeout_s=60.0)
        host, port = backend.address
        workers = [
            threading.Thread(target=run_sweep_worker, args=(host, port), daemon=True)
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        store = run_sweep(_grid(), backend=backend, ordered=False)
        for worker in workers:
            worker.join(timeout=10.0)
        assert _csv_bytes(store, tmp_path / "sq.csv") == reference_bytes

    def test_explicit_backend_instances_byte_identical(self, reference_bytes, tmp_path):
        for backend in (SerialBackend(), MultiprocessingBackend(2), FuturesBackend(2)):
            store = run_sweep(_grid(), backend=backend)
            assert _csv_bytes(store, tmp_path / f"{backend.name}.csv") == reference_bytes

    @given(rates=st.lists(st.integers(1, 4).map(float), min_size=1, max_size=3, unique=True))
    @settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_property_serial_equals_workstealing_futures(self, rates, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("prop")
        serial = run_sweep(_grid(rates), backend="serial")
        stolen = run_sweep(_grid(rates), backend="futures", processes=2, ordered=False)
        assert _csv_bytes(serial, tmp / "a.csv") == _csv_bytes(stolen, tmp / "b.csv")


# ----------------------------------------------------------------------
# Tentpole: checkpoint/resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_completed_points_skip_on_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = run_sweep(_grid(), checkpoint=str(journal))
        recorder = _RecordingSerial()
        second = run_sweep(_grid(), backend=recorder, checkpoint=str(journal))
        assert recorder.ran == []  # nothing re-executed
        assert second.rows == first.rows

    def test_kill_resume_csv_byte_identical(self, tmp_path):
        grid = _grid(rates=(1.0, 2.0, 3.0, 4.0))
        reference = _csv_bytes(run_sweep(grid), tmp_path / "ref.csv")

        journal = tmp_path / "sweep.jsonl"
        run_sweep(grid, checkpoint=str(journal))
        # Simulate a kill after point 1: two intact lines plus a torn third.
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:2]) + lines[2][: len(lines[2]) // 2])

        recorder = _RecordingSerial()
        resumed = run_sweep(grid, backend=recorder, checkpoint=str(journal))
        assert sorted(recorder.ran) == [2, 3]  # the torn and missing points only
        assert _csv_bytes(resumed, tmp_path / "resumed.csv") == reference

    def test_stale_seed_entries_rerun(self, tmp_path):
        grid = _grid(rates=(1.0,))
        journal = tmp_path / "sweep.jsonl"
        with SweepJournal(journal) as stale:
            stale.record(grid[0].scenario_id, grid[0].seed + 1, [{"rps": 999.0}])
        recorder = _RecordingSerial()
        store = run_sweep(grid, backend=recorder, checkpoint=str(journal))
        assert recorder.ran == [0]  # seed mismatch -> not resumed from the journal
        assert store.rows[0]["rps"] == 1.0


# ----------------------------------------------------------------------
# Satellite bugfix: failures name the point and never discard finished work
# ----------------------------------------------------------------------


class TestSweepPointError:
    def test_serial_failure_names_point_and_chains_cause(self):
        grid = [_broken(s) for s in _grid(rates=(1.0,))]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(grid)
        error = excinfo.value
        assert error.scenario_id == grid[0].scenario_id
        assert error.seed == grid[0].seed
        assert error.error_type == "KeyError"
        assert "no_such" in str(error)
        assert isinstance(error.__cause__, KeyError)  # serial keeps the live chain

    def test_pool_failure_carries_worker_traceback(self):
        grid = [_broken(s) for s in _grid(rates=(1.0, 2.0))]
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(grid, backend="multiprocessing", processes=2)
        assert "KeyError" in (excinfo.value.traceback_text or "")

    def test_completed_rows_are_journaled_before_the_raise(self, tmp_path):
        grid = _grid(rates=(1.0, 2.0))
        broken = [grid[0], _broken(grid[1])]
        journal = tmp_path / "sweep.jsonl"
        with pytest.raises(SweepPointError):
            run_sweep(broken, checkpoint=str(journal))
        entries = SweepJournal(journal).load()
        assert (grid[0].scenario_id, grid[0].seed) in entries  # finished work survived

        # Fixing the bad point and re-running resumes: only it re-executes.
        recorder = _RecordingSerial()
        store = run_sweep(grid, backend=recorder, checkpoint=str(journal))
        assert recorder.ran == [1]
        assert len(store) == 2


# ----------------------------------------------------------------------
# Backend resolution (incl. the legacy processes= mapping)
# ----------------------------------------------------------------------


class TestBackendResolution:
    def test_legacy_default_mapping(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(None, processes=1, grid_size=8), SerialBackend)
        assert isinstance(resolve_backend(None, processes=4, grid_size=1), SerialBackend)
        pool = resolve_backend(None, processes=4, grid_size=8)
        assert isinstance(pool, MultiprocessingBackend)
        assert pool.processes == 4
        import multiprocessing

        every_core = resolve_backend(None, processes=-1, grid_size=8)
        if multiprocessing.cpu_count() > 1:
            assert isinstance(every_core, MultiprocessingBackend)
            assert every_core.processes == multiprocessing.cpu_count()
        else:
            assert isinstance(every_core, SerialBackend)  # one core -> no pool

    def test_backend_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocessing", processes=3), MultiprocessingBackend)
        futures = resolve_backend("futures", processes=3)
        assert isinstance(futures, FuturesBackend)
        assert futures.processes == 3

    def test_socket_queue_specs(self):
        default = resolve_backend("socket-queue")
        try:
            assert isinstance(default, SocketQueueBackend)
            assert default.address[0] == "127.0.0.1"
            assert default.address[1] > 0  # ephemeral port was bound
        finally:
            default.close()
        bound = resolve_backend("socket-queue:127.0.0.1:0")
        try:
            assert bound.address[0] == "127.0.0.1"
        finally:
            bound.close()

    def test_backend_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_and_malformed_specs_raise(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("nope")
        with pytest.raises(ValueError, match="socket-queue port"):
            resolve_backend("socket-queue:not-a-port")
        for name in BACKEND_NAMES:
            if name != "socket-queue":
                assert resolve_backend(name).name == name


# ----------------------------------------------------------------------
# The checkpoint journal itself
# ----------------------------------------------------------------------


class TestSweepJournal:
    def test_rows_round_trip_exactly(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        rows = [{"x": 1, "y": 0.1, "s": "text", "b": True, "none": None, "nan": float("nan")}]
        journal.record("id", 7, rows)
        journal.close()
        loaded = journal.load()[("id", 7)]
        assert loaded[0]["x"] == 1 and isinstance(loaded[0]["x"], int)
        assert loaded[0]["y"] == 0.1
        assert loaded[0]["s"] == "text" and loaded[0]["b"] is True
        assert loaded[0]["none"] is None
        assert math.isnan(loaded[0]["nan"])

    def test_numpy_scalars_become_python_scalars(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("id", 1, [{"n": np.int64(3), "f": np.float64(0.25)}])
        journal.close()
        row = journal.load()[("id", 1)][0]
        assert row["n"] == 3 and isinstance(row["n"], int)
        assert row["f"] == 0.25 and isinstance(row["f"], float)

    def test_unserializable_rows_fail_loudly(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        with pytest.raises(TypeError, match="scalars"):
            journal.record("id", 1, [{"bad": object()}])
        journal.close()

    def test_load_skips_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("a", 1, [{"x": 1}])
        journal.record("b", 2, [{"x": 2}])
        journal.close()
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('["wrong", "shape"]\n')
            handle.write('{"scenario_id": "c", "seed": "not-int", "rows": []}\n')
            handle.write('{"scenario_id": "d", "seed": 4, "rows"')  # torn by a kill
        assert set(journal.load()) == {("a", 1), ("b", 2)}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").load() == {}

    def test_compact_collapses_duplicates_last_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("a", 1, [{"x": 1}])
        journal.record("b", 2, [{"x": 2}])
        journal.record("a", 1, [{"x": 10}])  # a resumed sweep re-recorded the point
        journal.record("a", 1, [{"x": 100}])
        journal.close()
        stats = journal.compact()
        assert stats == {"kept": 2, "dropped_duplicates": 2, "dropped_garbage": 0}
        # Last record wins -- exactly what load() already returned pre-compaction.
        loaded = journal.load()
        assert loaded[("a", 1)] == [{"x": 100}]
        assert loaded[("b", 2)] == [{"x": 2}]
        # One line per key, first-occurrence key order preserved.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["scenario_id"] == "a"
        assert json.loads(lines[1])["scenario_id"] == "b"

    def test_compact_drops_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("a", 1, [{"x": 1}])
        journal.close()
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('["wrong", "shape"]\n')
            handle.write('{"scenario_id": "c", "seed": "not-int", "rows": []}\n')
            handle.write('{"scenario_id": "d", "seed": 4, "rows"')  # torn by a kill
        before = journal.load()
        stats = journal.compact()
        assert stats == {"kept": 1, "dropped_duplicates": 0, "dropped_garbage": 4}
        # Compaction is a pure cleanup: load() sees exactly what it saw before.
        assert journal.load() == before
        # ...and the rewritten file is pristine JSONL (every line parses).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_compact_round_trips_rows_byte_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("p", 3, [{"y": 0.1, "nan": float("nan"), "none": None, "b": True}])
        journal.close()
        original_line = path.read_text()
        journal.compact()
        # Kept lines are rewritten verbatim: float formatting cannot drift.
        assert path.read_text() == original_line

    def test_compact_missing_file_is_a_noop(self, tmp_path):
        stats = SweepJournal(tmp_path / "absent.jsonl").compact()
        assert stats == {"kept": 0, "dropped_duplicates": 0, "dropped_garbage": 0}
        assert not (tmp_path / "absent.jsonl").exists()

    def test_compact_refuses_while_open_for_append(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("a", 1, [{"x": 1}])
        with pytest.raises(RuntimeError, match="close"):
            journal.compact()
        journal.close()


# ----------------------------------------------------------------------
# Socket-queue fault tolerance
# ----------------------------------------------------------------------


class TestSocketQueueFaultTolerance:
    def test_dead_worker_item_is_requeued(self, tmp_path):
        import socket as socket_module

        from repro.sim.backends import _recv, _send

        backend = SocketQueueBackend(port=0, timeout_s=60.0)
        host, port = backend.address

        def flaky_then_healthy():
            # A worker that takes one item and dies mid-point...
            connection = socket_module.create_connection((host, port))
            _send(connection, ("hello", "flaky", 0))
            assert _recv(connection)[0] == "item"
            connection.close()  # hang up without replying
            # ...then a healthy worker that drains the (re-queued) work.
            run_sweep_worker(host, port)

        worker = threading.Thread(target=flaky_then_healthy, daemon=True)
        worker.start()
        store = run_sweep(_grid(), backend=backend, ordered=False)
        worker.join(timeout=10.0)
        reference = run_sweep(_grid())
        assert store.rows == reference.rows  # the sweep outlived the dead worker

    def test_announce_reports_the_listening_address(self):
        messages = []
        backend = resolve_backend("socket-queue:127.0.0.1:0", announce=messages.append)
        host, port = backend.address
        worker = threading.Thread(target=run_sweep_worker, args=(host, port), daemon=True)
        worker.start()  # connects (with retries) once the server starts serving
        store = run_sweep(_grid(rates=(1.0,)), backend=backend)
        worker.join(timeout=10.0)
        assert messages and f"--connect <host>:{port}" in messages[0]
        assert len(store) == 1

    def test_duplicate_outcomes_are_deduplicated(self):
        class Duplicating(SerialBackend):
            def run(self, items, ordered=True):
                for item in items:
                    outcome = execute_point(item)
                    yield outcome
                    yield outcome  # a re-queued item whose first result also landed

        store = run_sweep(_grid(rates=(1.0,)), backend=Duplicating())
        assert len(store) == 1

    def test_idle_timeout_without_workers(self):
        backend = SocketQueueBackend(port=0, timeout_s=0.3)
        with pytest.raises(RuntimeError, match="sweep workers connected"):
            run_sweep(_grid(rates=(1.0,)), backend=backend)

    def test_backend_is_single_use(self):
        backend = SocketQueueBackend(port=0, timeout_s=0.3)
        with pytest.raises(RuntimeError):
            run_sweep(_grid(rates=(1.0,)), backend=backend)
        with pytest.raises(RuntimeError, match="single-use"):
            list(backend.run([(0, _grid(rates=(1.0,))[0])]))


# ----------------------------------------------------------------------
# Satellite: CLI parity (--unordered/--backend/--checkpoint everywhere)
# ----------------------------------------------------------------------

_CLI_SWEEP = [
    "sweep",
    "--platforms",
    "aws_lambda_like",
    "--workloads",
    "minimal",
    "--rps",
    "1,2",
    "--duration-s",
    "5",
]


class TestCliParity:
    @pytest.mark.parametrize("command", ["sweep", "cluster", "backpressure"])
    def test_every_sweeping_subcommand_has_the_execution_flags(self, command):
        args = build_parser().parse_args(
            [command, "--processes", "2", "--unordered", "--backend", "serial", "--checkpoint", "x"]
        )
        assert args.processes == 2
        assert args.unordered is True
        assert args.backend == "serial"
        assert args.checkpoint == "x"

    def test_cli_backends_write_byte_identical_csvs(self, tmp_path):
        serial = tmp_path / "serial.csv"
        futures = tmp_path / "futures.csv"
        assert main(_CLI_SWEEP + ["--output", str(serial)]) == 0
        assert (
            main(
                _CLI_SWEEP
                + ["--backend", "futures", "--processes", "2", "--unordered", "--output", str(futures)]
            )
            == 0
        )
        assert serial.read_bytes() == futures.read_bytes()

    def test_cli_checkpoint_resume(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        assert main(_CLI_SWEEP + ["--checkpoint", str(journal), "--output", str(first)]) == 0
        assert main(_CLI_SWEEP + ["--checkpoint", str(journal), "--output", str(second)]) == 0
        assert "skipping 2 already-journaled points, running 0" in capsys.readouterr().err
        assert first.read_bytes() == second.read_bytes()

    def test_cli_failure_names_the_point(self, capsys):
        assert main(["sweep", "--platforms", "no_such", "--workloads", "minimal", "--rps", "1"]) == 2
        stderr = capsys.readouterr().err
        assert "platform=no_such" in stderr  # the failing point, not a bare traceback

    def test_sweep_worker_rejects_bad_addresses(self, capsys):
        assert main(["sweep-worker", "--connect", "nope"]) == 2
        assert "invalid --connect" in capsys.readouterr().err
        assert main(["sweep-worker", "--connect", "127.0.0.1:1", "--retry-window-s", "0"]) == 2
        assert "could not reach" in capsys.readouterr().err

    def test_sweep_worker_serves_a_socket_queue_sweep(self, tmp_path, capsys):
        backend = SocketQueueBackend(port=0, timeout_s=60.0)
        host, port = backend.address
        outcome = {}

        def server():
            outcome["store"] = run_sweep(_grid(), backend=backend, ordered=False)

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        assert main(["sweep-worker", "--connect", f"{host}:{port}", "--quiet"]) == 0
        thread.join(timeout=30.0)
        assert "sweep worker done: completed 2 points" in capsys.readouterr().out
        assert outcome["store"].rows == run_sweep(_grid()).rows

    def test_backpressure_cli_accepts_backend_and_checkpoint(self, tmp_path, capsys):
        journal = tmp_path / "bp.jsonl"
        args = [
            "backpressure",
            "--queue-depths",
            "0",
            "--policies",
            "best_fit",
            "--heterogeneity",
            "homogeneous",
            "--duration-s",
            "5",
            "--num-functions",
            "2",
            "--backend",
            "serial",
            "--checkpoint",
            str(journal),
        ]
        assert main(args) == 0
        assert main(args) == 0
        assert "skipping 1 already-journaled points, running 0" in capsys.readouterr().err

    def test_cli_compact_checkpoint(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        # A completed run journals 2 points; append a duplicate and a torn
        # line by hand so compaction has something to drop, then resume with
        # --compact-checkpoint: it compacts first, and the (now clean)
        # journal still skips every point.
        assert main(_CLI_SWEEP + ["--checkpoint", str(journal)]) == 0
        first_line = journal.read_text().splitlines()[0]
        with open(journal, "a") as handle:
            handle.write(first_line + "\n")
            handle.write('{"scenario_id": "torn", "seed": 9, "rows"')
        capsys.readouterr()
        assert main(_CLI_SWEEP + ["--checkpoint", str(journal), "--compact-checkpoint"]) == 0
        captured = capsys.readouterr()
        assert "kept 2 entries, dropped 1 duplicates and 1 garbage lines" in captured.out
        assert "skipping 2 already-journaled points, running 0" in captured.err
        assert len(journal.read_text().splitlines()) == 2

    def test_cli_compact_checkpoint_requires_checkpoint(self, capsys):
        assert main(["sweep", "--compact-checkpoint"]) == 2
        assert "--compact-checkpoint requires --checkpoint" in capsys.readouterr().err
