"""Tests for the typed event bus and the named RNG streams."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.events import (
    EventBus,
    InstanceCountChanged,
    RequestCompleted,
    SandboxProvisioned,
    SimEvent,
)
from repro.sim.rng import RngStreams, derive_seed, named_generator


@dataclass(frozen=True)
class _CustomEvent(RequestCompleted):
    pass


class TestEventBus:
    def test_exact_type_dispatch(self):
        bus = EventBus()
        seen = []
        bus.subscribe(RequestCompleted, lambda e: seen.append(e))
        bus.publish(RequestCompleted(1.0, outcome="ok"))
        bus.publish(SandboxProvisioned(2.0, sandbox_name="sb-1"))
        assert len(seen) == 1
        assert seen[0].outcome == "ok"

    def test_subscribers_run_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(SimEvent, lambda e: order.append("first"))
        bus.subscribe(SimEvent, lambda e: order.append("second"))
        bus.subscribe(SimEvent, lambda e: order.append("third"))
        bus.publish(SimEvent(0.0))
        assert order == ["first", "second", "third"]

    def test_base_class_subscription_sees_subclasses(self):
        bus = EventBus()
        all_events = []
        bus.subscribe(SimEvent, lambda e: all_events.append(type(e).__name__))
        bus.publish(RequestCompleted(1.0, outcome=None))
        bus.publish(InstanceCountChanged(2.0, count=3))
        assert all_events == ["RequestCompleted", "InstanceCountChanged"]

    def test_exact_subscribers_run_before_base_subscribers(self):
        bus = EventBus()
        order = []
        bus.subscribe(SimEvent, lambda e: order.append("base"))
        bus.subscribe(RequestCompleted, lambda e: order.append("exact"))
        bus.subscribe(_CustomEvent, lambda e: order.append("leaf"))
        bus.publish(_CustomEvent(1.0, outcome=None))
        assert order == ["leaf", "exact", "base"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        callback = bus.subscribe(SimEvent, lambda e: seen.append(e))
        bus.publish(SimEvent(0.0))
        bus.unsubscribe(SimEvent, callback)
        bus.publish(SimEvent(1.0))
        assert len(seen) == 1
        bus.unsubscribe(SimEvent, callback)  # second removal is a no-op

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count(SimEvent) == 0
        bus.subscribe(SimEvent, lambda e: None)
        assert bus.subscriber_count(SimEvent) == 1


class TestNamedRng:
    def test_same_name_same_stream(self):
        a = named_generator(42, "arrivals").random(8)
        b = named_generator(42, "arrivals").random(8)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = named_generator(42, "arrivals").random(8)
        b = named_generator(42, "overhead").random(8)
        assert not np.array_equal(a, b)

    def test_different_root_seeds_differ(self):
        a = named_generator(1, "arrivals").random(8)
        b = named_generator(2, "arrivals").random(8)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_sibling_consumption(self):
        streams = RngStreams(7)
        baseline = named_generator(7, "metrics").random(4)
        streams.stream("noise").random(1000)  # heavy sibling consumption
        assert np.array_equal(streams.stream("metrics").random(4), baseline)

    def test_streams_are_cached(self):
        streams = RngStreams(7)
        gen = streams.stream("a")
        first = gen.random(3)
        again = streams.stream("a").random(3)
        assert not np.array_equal(first, again)  # same generator advanced, not restarted

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(2026, "p=aws/rps=1") == derive_seed(2026, "p=aws/rps=1")
        seeds = {derive_seed(2026, f"scenario-{i}") for i in range(100)}
        assert len(seeds) == 100
        assert all(0 <= seed < 2**63 for seed in seeds)

    def test_int_names_supported(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)
