"""Kernel profiling: opt-in hooks count exactly what the kernel dispatched."""

import dataclasses

from repro.obs.profile import KernelProfiler
from repro.sim.events import EventBus, SimEvent
from repro.sim.kernel import PeriodicProcess, SimulationKernel


@dataclasses.dataclass(frozen=True)
class _Ping(SimEvent):
    value: int = 0


class TestKernelProfiler:
    def test_dormant_by_default(self):
        kernel = SimulationKernel()
        bus = EventBus()
        assert kernel._profiler is None
        assert bus._profiler is None

    def test_counts_heap_events_by_kind(self):
        kernel = SimulationKernel()
        profiler = KernelProfiler().install(kernel)
        kernel.on("a", lambda event: None)
        kernel.on("b", lambda event: None)
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, "a")
        kernel.schedule(4.0, "b")
        kernel.run()
        profile = profiler.snapshot()
        assert profile.count_of("a") == 3
        assert profile.count_of("b") == 1
        assert profile.events_total == 4
        assert profile.by_kind["a"]["wall_s"] >= 0.0

    def test_counts_cancels_and_prunes(self):
        kernel = SimulationKernel()
        profiler = KernelProfiler().install(kernel)
        kernel.on("a", lambda event: None)
        keep = kernel.schedule(1.0, "a")
        doomed = [kernel.schedule(2.0 + i, "a") for i in range(5)]
        for event in doomed:
            kernel.cancel(event)
        kernel.run()
        profile = profiler.snapshot()
        assert profile.cancels == 5
        assert profile.prunes == 5
        assert profile.count_of("a") == 1
        del keep

    def test_max_heap_depth(self):
        kernel = SimulationKernel()
        profiler = KernelProfiler().install(kernel)
        kernel.on("a", lambda event: None)
        for t in range(10):
            kernel.schedule(float(t), "a")
        kernel.run()
        # Depth is observed after the pop: 10 scheduled -> 9 behind the first.
        assert profiler.snapshot().max_heap_depth == 9

    def test_counts_polled_processes(self):
        kernel = SimulationKernel()
        profiler = KernelProfiler().install(kernel)
        ticks = []
        process = PeriodicProcess(1.0, ticks.append)
        kernel.add_process(process)
        kernel.schedule(5.0, "noop")
        kernel.on("noop", lambda event: None)
        kernel.run(until=5.0)
        profile = profiler.snapshot()
        assert profile.process_events == len(ticks) == 6  # t = 0..5
        assert profile.count_of("process:PeriodicProcess") == 6

    def test_counts_bus_publishes_and_fanout(self):
        bus = EventBus()
        profiler = KernelProfiler().install(SimulationKernel(), bus)
        bus.subscribe(_Ping, lambda event: None)
        bus.subscribe(_Ping, lambda event: None)
        bus.subscribe(SimEvent, lambda event: None)
        for index in range(4):
            bus.publish(_Ping(time_s=float(index), value=index))
        profile = profiler.snapshot()
        stats = profile.publishes["_Ping"]
        assert stats["count"] == 4
        assert stats["fanout"] == 12  # 3 subscribers x 4 publishes
        assert profile.publish_total == 4

    def test_table_renders(self):
        kernel = SimulationKernel()
        profiler = KernelProfiler().install(kernel)
        kernel.on("a", lambda event: None)
        kernel.schedule(1.0, "a")
        kernel.run()
        lines = profiler.snapshot().table()
        assert any("a" in line for line in lines[1:])
        assert lines[0].startswith("events=1")


class TestProfiledRunsMatchUnprofiled:
    def test_same_event_sequence_with_and_without_profiler(self):
        """The dual code paths dispatch identically; the profiler only counts."""

        def run(profiled):
            kernel = SimulationKernel()
            if profiled:
                KernelProfiler().install(kernel)
            fired = []
            kernel.on("a", lambda event: fired.append((kernel.now, event.kind)))
            kernel.on("b", lambda event: fired.append((kernel.now, event.kind)))
            kernel.schedule(2.0, "b")
            kernel.schedule(1.0, "a")
            kernel.schedule(2.0, "a")
            kernel.run()
            return fired

        assert run(profiled=False) == run(profiled=True)
