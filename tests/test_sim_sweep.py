"""Tests for the scenario-sweep orchestrator, result store, and run determinism."""

from __future__ import annotations

import pytest

from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.sim.events import EventBus, SimEvent
from repro.sim.results import ResultStore
from repro.sim.sweep import Scenario, build_grid, resolve_runner, run_scenario, run_sweep
from repro.workloads.functions import PYAES_FUNCTION
from repro.workloads.traffic import constant_rate_arrivals


def _trace_run(seed: int, platform: str = "gcp_run_like"):
    """One platform-simulator run; returns (event trace, metrics summary).

    Sandbox names are per-simulator (not process-global), so two runs with the
    same seed must produce byte-identical traces even mid-process.
    """
    bus = EventBus()
    trace = []
    bus.subscribe(SimEvent, lambda e: trace.append(repr(e)))
    preset = get_platform_preset(platform)
    function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
    simulator = PlatformSimulator(preset, function, seed=seed, bus=bus)
    metrics = simulator.run(constant_rate_arrivals(10, 30.0))
    return trace, metrics.summary()


class TestDeterminism:
    def test_same_seed_identical_event_trace_and_metrics(self):
        trace_a, summary_a = _trace_run(seed=123)
        trace_b, summary_b = _trace_run(seed=123)
        assert trace_a == trace_b  # byte-identical event order and payloads
        assert summary_a == summary_b

    def test_different_seeds_different_traces(self):
        trace_a, _ = _trace_run(seed=1)
        trace_b, _ = _trace_run(seed=2)
        assert trace_a != trace_b

    def test_shared_bus_does_not_cross_contaminate_metrics(self):
        bus = EventBus()
        observed = []
        bus.subscribe(SimEvent, lambda e: observed.append(e))
        preset = get_platform_preset("aws_lambda_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
        first = PlatformSimulator(preset, function, seed=1, bus=bus)
        second = PlatformSimulator(preset, function, seed=2, bus=bus)
        first.run([0.0, 1.0])
        second.run([0.0, 1.0])
        # Each simulator's metrics only count its own two requests; the shared
        # bus observes all events from both.
        assert first.metrics.num_requests == 2
        assert second.metrics.num_requests == 2
        assert len(observed) > 0

    def test_extra_subscriber_does_not_perturb_results(self):
        _, baseline = _trace_run(seed=9)
        bus = EventBus()
        bus.subscribe(SimEvent, lambda e: None)  # a passive observer
        preset = get_platform_preset("gcp_run_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
        simulator = PlatformSimulator(preset, function, seed=9, bus=bus)
        metrics = simulator.run(constant_rate_arrivals(10, 30.0))
        assert metrics.summary() == baseline


class TestGridAndScenarios:
    def test_build_grid_cartesian_product(self):
        scenarios = build_grid(
            runner="repro.sim.sweep:platform_point",
            axes={"platform": ["a", "b"], "rps": [1, 2, 3]},
            base_seed=7,
        )
        assert len(scenarios) == 6
        assert sorted({s.params["platform"] for s in scenarios}) == ["a", "b"]

    def test_grid_seeds_stable_and_distinct(self):
        axes = {"platform": ["a", "b"], "rps": [1, 2]}
        first = build_grid("m:f", axes, base_seed=7)
        second = build_grid("m:f", axes, base_seed=7)
        assert [s.seed for s in first] == [s.seed for s in second]
        assert len({s.seed for s in first}) == len(first)
        other = build_grid("m:f", axes, base_seed=8)
        assert [s.seed for s in first] != [s.seed for s in other]

    def test_grid_fixed_seed(self):
        scenarios = build_grid("m:f", {"rps": [1, 2]}, base_seed=7, fixed_seed=42)
        assert [s.seed for s in scenarios] == [42, 42]

    def test_resolve_runner_validates(self):
        with pytest.raises(ValueError):
            resolve_runner("not.a.path")
        with pytest.raises(ValueError):
            resolve_runner("repro.sim.sweep:missing_function")
        assert callable(resolve_runner("repro.sim.sweep:platform_point"))

    def test_run_scenario_normalises_rows(self):
        scenario = Scenario(
            scenario_id="one",
            runner="repro.sim.sweep:platform_point",
            params={"platform": "aws_lambda_like", "workload": "minimal", "rps": 2.0, "duration_s": 5.0},
            seed=3,
        )
        rows = run_scenario(scenario)
        assert len(rows) == 1
        assert rows[0]["platform"] == "aws_lambda_like"
        assert rows[0]["num_requests"] == 10.0


class TestParallelSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return build_grid(
            runner="repro.sim.sweep:platform_point",
            axes={
                "platform": ["aws_lambda_like", "gcp_run_like"],
                "workload": ["minimal", "pyaes"],
                "rps": [1.0, 4.0],
            },
            common={"duration_s": 10.0},
            base_seed=2026,
        )

    def test_parallel_equals_sequential(self, grid):
        sequential = run_sweep(grid, processes=None)
        parallel = run_sweep(grid, processes=2)
        assert sequential.rows == parallel.rows

    def test_sequential_rerun_is_reproducible(self, grid):
        assert run_sweep(grid).rows == run_sweep(grid).rows

    def test_figure6_routes_through_sweep_identically(self):
        from repro.analysis.concurrency import figure6_burst_sweep

        sequential = figure6_burst_sweep(rps_sweep=(1, 10), burst_duration_s=20.0)
        parallel = figure6_burst_sweep(rps_sweep=(1, 10), burst_duration_s=20.0, processes=2)
        assert sequential == parallel
        assert [row["platform"] for row in sequential] == ["aws", "aws", "gcp", "gcp"]

    def test_figure10_routes_through_sweep_identically(self):
        from repro.analysis.overallocation import figure10_allocation_sweep

        kwargs = dict(vcpu_fractions=(0.25, 0.5), samples_per_point=3)
        assert figure10_allocation_sweep(**kwargs) == figure10_allocation_sweep(processes=2, **kwargs)


class TestWorkStealingSweep:
    """run_sweep(ordered=False): imap_unordered with order-stable collection."""

    @pytest.fixture(scope="class")
    def heterogeneous_grid(self):
        # Deliberately uneven point costs (rps and duration vary 10x) so the
        # unordered pool genuinely completes scenarios out of order.
        grid = []
        for duration in (2.0, 20.0):
            grid.extend(
                build_grid(
                    runner="repro.sim.sweep:platform_point",
                    axes={
                        "platform": ["aws_lambda_like", "gcp_run_like"],
                        "rps": [1.0, 10.0],
                    },
                    common={"workload": "minimal", "duration_s": duration},
                    base_seed=int(duration),
                )
            )
        return grid

    def test_unordered_csv_is_byte_identical_to_ordered(self, heterogeneous_grid, tmp_path):
        ordered = run_sweep(heterogeneous_grid, processes=2, ordered=True)
        unordered = run_sweep(heterogeneous_grid, processes=2, ordered=False)
        assert ordered == unordered
        ordered_path, unordered_path = tmp_path / "ordered.csv", tmp_path / "unordered.csv"
        ordered.to_csv(str(ordered_path))
        unordered.to_csv(str(unordered_path))
        assert ordered_path.read_bytes() == unordered_path.read_bytes()

    def test_unordered_sequential_fallback_matches(self, heterogeneous_grid):
        # Without a pool, ordered is the only execution shape; the flag must
        # not change results there either.
        assert run_sweep(heterogeneous_grid, ordered=False) == run_sweep(heterogeneous_grid)

    def test_worker_shim_tags_results_with_the_grid_index(self, heterogeneous_grid):
        from repro.sim.sweep import _run_indexed_scenario, run_scenario

        index, rows = _run_indexed_scenario((3, heterogeneous_grid[3]))
        assert index == 3
        assert rows == run_scenario(heterogeneous_grid[3])


class TestResultStore:
    @pytest.fixture()
    def store(self):
        return ResultStore(
            [
                {"platform": "aws", "rps": 1.0, "mean_ms": 10.0},
                {"platform": "aws", "rps": 2.0, "mean_ms": 12.0},
                {"platform": "gcp", "rps": 1.0, "mean_ms": 20.0},
            ]
        )

    def test_len_iter_columns(self, store):
        assert len(store) == 3
        assert store.columns() == ["platform", "rps", "mean_ms"]
        assert [row["platform"] for row in store] == ["aws", "aws", "gcp"]

    def test_filter_and_unique(self, store):
        aws = store.filter(platform="aws")
        assert len(aws) == 2
        assert store.filter(platform="aws", rps=2.0).rows[0]["mean_ms"] == 12.0
        assert store.unique("platform") == ["aws", "gcp"]

    def test_group_by_and_summarize(self, store):
        groups = store.group_by("platform")
        assert set(groups) == {"aws", "gcp"}
        summary = {row["platform"]: row for row in store.summarize("platform", "mean_ms")}
        assert summary["aws"]["mean_mean_ms"] == pytest.approx(11.0)
        assert summary["aws"]["count"] == 2

    def test_to_csv_roundtrip(self, store, tmp_path):
        path = tmp_path / "rows.csv"
        assert store.to_csv(str(path)) == 3
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "platform,rps,mean_ms"
        assert len(lines) == 4

    def test_store_appends_copies(self):
        row = {"a": 1}
        store = ResultStore()
        store.append(row)
        row["a"] = 2
        assert store.rows[0]["a"] == 1


class TestSweepCli:
    def test_cli_sweep_runs_grid(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--platforms",
                "aws_lambda_like",
                "--workloads",
                "minimal",
                "--rps",
                "1,2",
                "--duration-s",
                "5",
                "--processes",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 scenarios" in out
        assert "aws_lambda_like" in out

    def test_cli_sweep_writes_csv(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "--platforms",
                "aws_lambda_like",
                "--workloads",
                "minimal",
                "--rps",
                "1",
                "--duration-s",
                "5",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert output.read_text().startswith("platform,")

    def test_cli_sweep_rejects_bad_input(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--rps", "not-a-number"]) == 2
        assert main(["sweep", "--platforms", ""]) == 2
        assert main(["sweep", "--platforms", "no_such_platform"]) == 2


class TestTraceReplayRunner:
    """The trace-driven sweep adapter: scenarios driven by generated traces."""

    PARAMS = {
        "platform": "aws_lambda_like",
        "num_requests": 400,
        "num_functions": 10,
        "top_functions": 2,
    }

    def test_replays_busiest_functions(self):
        from repro.sim.sweep import trace_replay_point

        rows = trace_replay_point(self.PARAMS, seed=7)
        # The generator's popularity distribution is heavy-tailed, so a small
        # shard may concentrate traffic on fewer than top_functions functions.
        assert 1 <= len(rows) <= 2
        for row in rows:
            assert row["num_requests"] > 0
            assert row["trace_mean_duration_ms"] > 0
            assert 0.0 <= row["cold_start_rate"] <= 1.0

    def test_deterministic_and_seed_sensitive(self):
        from repro.sim.sweep import trace_replay_point

        assert trace_replay_point(self.PARAMS, seed=7) == trace_replay_point(self.PARAMS, seed=7)
        different = trace_replay_point(self.PARAMS, seed=8)
        assert trace_replay_point(self.PARAMS, seed=7) != different

    def test_billing_adds_live_metered_cost(self):
        from repro.sim.sweep import trace_replay_point

        params = dict(self.PARAMS, billing="aws_lambda")
        rows = trace_replay_point(params, seed=7)
        assert all(row["cost_usd"] > 0 for row in rows)
        assert all(row["billing_platform"] == "aws_lambda" for row in rows)

    def test_instance_billed_model_accounts_open_lifespans(self):
        """finalize() closes keep-alive sandboxes, so instance billing is non-zero."""
        from repro.sim.sweep import trace_replay_point

        params = dict(self.PARAMS, billing="gcp_run_instance")
        rows = trace_replay_point(params, seed=7)
        assert all(row["cost_usd"] > 0 for row in rows)

    def test_routes_through_grid_and_parallel_sweep(self):
        from repro.sim.sweep import build_grid, run_sweep

        grid = build_grid(
            runner="repro.sim.sweep:trace_replay_point",
            axes={"platform": ["aws_lambda_like", "gcp_run_like"]},
            common={"num_requests": 400, "num_functions": 10, "top_functions": 2},
            base_seed=3,
        )
        sequential = run_sweep(grid)
        parallel = run_sweep(grid, processes=2)
        assert sequential == parallel
        assert len(sequential) >= 2  # at least one replayed function per platform
        assert set(row["platform"] for row in sequential) == {"aws_lambda_like", "gcp_run_like"}

    def test_invalid_time_scale(self):
        from repro.sim.sweep import trace_replay_point

        with pytest.raises(ValueError):
            trace_replay_point(dict(self.PARAMS, time_scale=0.0), seed=7)


class TestResultStoreCsvRoundTrip:
    def test_from_csv_round_trips_rows(self, tmp_path):
        store = ResultStore(
            [
                {"platform": "aws", "rps": 1.0, "count": 3, "label": "x"},
                {"platform": "gcp", "rps": 2.5, "count": 4, "label": "y"},
            ]
        )
        path = tmp_path / "rows.csv"
        store.to_csv(str(path))
        loaded = ResultStore.from_csv(str(path))
        assert loaded.rows == store.rows
        assert loaded.columns() == store.columns()

    def test_from_csv_preserves_numeric_types(self, tmp_path):
        path = tmp_path / "rows.csv"
        ResultStore([{"a": 1, "b": 1.5, "c": "text"}]).to_csv(str(path))
        row = ResultStore.from_csv(str(path)).rows[0]
        assert row["a"] == 1 and isinstance(row["a"], int)
        assert row["b"] == 1.5 and isinstance(row["b"], float)
        assert row["c"] == "text"


class TestClusterCli:
    def test_cli_cluster_writes_csv(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "cluster.csv"
        code = main(
            [
                "cluster",
                "--fleet-sizes",
                "3",
                "--policies",
                "best_fit",
                "--keep-alive-s",
                "60",
                "--duration-s",
                "10",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        header = output.read_text().splitlines()[0]
        assert "placement_policy" in header and "cost_usd" in header

    def test_cli_cluster_rejects_bad_input(self, capsys):
        from repro.cli import main

        assert main(["cluster", "--fleet-sizes", "not-a-number"]) == 2
        assert main(["cluster", "--policies", ""]) == 2
        assert main(["cluster", "--platform", "no_such_platform"]) == 2
