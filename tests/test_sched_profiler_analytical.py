"""Tests for the Algorithm-1 profiler, Equation (2), and scheduling presets."""

import math

import pytest

from repro.sched.analytical import (
    expected_duration_reciprocal,
    quantization_jump_allocations,
    theoretical_duration,
    theoretical_duration_series,
)
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim, TaskResult
from repro.sched.presets import PROVIDER_SCHED_PRESETS, scheduler_config_for
from repro.sched.profiler import ThrottleProfile, ThrottleProfileSet, profile_live, profile_task_result
from repro.sched.task import SimTask


class TestEquationTwo:
    def test_paper_example_value(self):
        """T=51.8 ms, P=20 ms, Q=10 ms: floor(5.18) periods plus the 1.8 ms remainder."""
        assert theoretical_duration(0.0518, 0.020, 0.010) == pytest.approx(0.1018)

    def test_exact_multiple_branch(self):
        # T = 3Q exactly: (3-1) periods plus one full quota.
        assert theoretical_duration(0.030, 0.020, 0.010) == pytest.approx(0.05)

    def test_quota_at_or_above_period_means_no_limit(self):
        assert theoretical_duration(0.1, 0.02, 0.02) == pytest.approx(0.1)
        assert theoretical_duration(0.1, 0.02, 0.05) == pytest.approx(0.1)

    def test_zero_cpu_time(self):
        assert theoretical_duration(0.0, 0.02, 0.01) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theoretical_duration(-1.0, 0.02, 0.01)
        with pytest.raises(ValueError):
            theoretical_duration(0.1, 0.0, 0.01)

    def test_duration_at_least_ideal(self):
        """Equation (2) never predicts a duration below the reciprocal expectation's CPU time."""
        for fraction in (0.1, 0.3, 0.7):
            duration = theoretical_duration(0.0518, 0.02, fraction * 0.02)
            assert duration >= 0.0518

    def test_shorter_periods_converge_to_ideal(self):
        """Figure 11: shorter periods track the ideal reciprocal curve more closely.

        The deviation can be negative (the last-period remainder runs at full
        speed -- overallocation), so convergence is about absolute deviation.
        """
        ideal = expected_duration_reciprocal(0.0518, 0.3)
        excess_5ms = abs(theoretical_duration(0.0518, 0.005, 0.3 * 0.005) - ideal)
        excess_100ms = abs(theoretical_duration(0.0518, 0.1, 0.3 * 0.1) - ideal)
        assert excess_5ms < excess_100ms

    def test_series_rows(self):
        rows = theoretical_duration_series(0.0518, 0.02, [0.25, 0.5, 1.0])
        assert len(rows) == 3
        assert rows[-1]["duration_ms"] == pytest.approx(51.8)

    def test_series_rejects_invalid_fraction(self):
        with pytest.raises(ValueError):
            theoretical_duration_series(0.05, 0.02, [0.0])

    def test_jump_allocations_harmonic(self):
        """§4.1: jumps at T/(nP) -- the scaled harmonic sequence."""
        jumps = quantization_jump_allocations(0.016, 0.020, max_jumps=4)
        assert jumps[0] == pytest.approx(0.8)
        assert jumps[1] == pytest.approx(0.4)
        assert jumps[2] == pytest.approx(0.8 / 3)
        # In AWS memory terms the first jump is ~1,415 MB (paper: "slightly above 1400 MB").
        assert jumps[0] * 1769 == pytest.approx(1415, rel=0.01)

    def test_expected_reciprocal_caps_at_one_core(self):
        assert expected_duration_reciprocal(0.1, 2.0) == pytest.approx(0.1)


class TestProfiler:
    def _result_with_gaps(self):
        return TaskResult(
            name="t",
            arrival_s=0.0,
            completion_s=None,
            cpu_consumed_s=0.012,
            run_segments=[(0.0, 0.004), (0.040, 0.044), (0.1, 0.104)],
            throttle_segments=[],
        )

    def test_detects_gaps_above_threshold(self):
        profile = profile_task_result(self._result_with_gaps())
        assert profile.num_throttles == 2
        assert profile.throttle_durations_s()[0] == pytest.approx(0.036)

    def test_ignores_gaps_below_threshold(self):
        result = TaskResult("t", 0.0, None, 0.01, [(0.0, 0.004), (0.0042, 0.008)], [])
        profile = profile_task_result(result)
        assert profile.num_throttles == 0

    def test_intervals_between_detections(self):
        profile = profile_task_result(self._result_with_gaps())
        assert profile.throttle_intervals_s() == [pytest.approx(0.06)]

    def test_obtained_cpu_between_throttles(self):
        profile = profile_task_result(self._result_with_gaps())
        assert profile.obtained_cpu_times_s()[0] == pytest.approx(0.004)

    def test_empty_result(self):
        profile = profile_task_result(TaskResult("t", 0.0, None, 0.0, [], []))
        assert profile.num_throttles == 0
        assert profile.span_s == 0.0

    def test_summary_keys(self):
        summary = profile_task_result(self._result_with_gaps()).summary()
        assert "cpu_share" in summary and "mean_throttle_interval_s" in summary

    def test_profile_from_simulation(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(0.25, 0.02), tick_hz=250, horizon_s=1.0
        )
        result = SchedulerSim(config, [SimTask.cpu_bound(10.0, name="spin")]).run().single
        profile = profile_task_result(result)
        assert profile.num_throttles > 5
        intervals_ms = [v * 1e3 for v in profile.throttle_intervals_s()]
        # AWS-like settings: throttle intervals are multiples of the 20 ms period.
        for interval in intervals_ms:
            assert interval % 20 == pytest.approx(0.0, abs=0.5) or (20 - interval % 20) < 0.5

    def test_profile_live_smoke(self):
        profile = profile_live(0.02)
        assert profile.span_s >= 0.02
        assert profile.cpu_obtained_s > 0

    def test_profile_live_invalid_duration(self):
        with pytest.raises(ValueError):
            profile_live(0.0)


class TestThrottleProfileSet:
    def test_aggregation(self):
        a = ThrottleProfile(span_s=1.0, cpu_obtained_s=0.5)
        b = ThrottleProfile(span_s=2.0, cpu_obtained_s=0.7)
        profile_set = ThrottleProfileSet(profiles=[a, b])
        assert profile_set.span_s == pytest.approx(3.0)
        assert profile_set.cpu_obtained_s == pytest.approx(1.2)
        assert profile_set.num_throttles == 0

    def test_diffs_within_invocation_only(self):
        from repro.sched.profiler import ThrottleEvent

        a = ThrottleProfile(
            events=[
                ThrottleEvent(0.01, 0.005),
                ThrottleEvent(0.02, 0.006),
                ThrottleEvent(0.04, 0.012),
            ],
            span_s=0.05,
            cpu_obtained_s=0.02,
        )
        profile_set = ThrottleProfileSet(profiles=[a, ThrottleProfile()])
        diffs = profile_set.obtained_cpu_diffs_s()
        assert len(diffs) == 1  # two obtained values -> one diff; empty profile adds none

    def test_summary_counts_invocations(self):
        profile_set = ThrottleProfileSet(profiles=[ThrottleProfile(), ThrottleProfile()])
        assert profile_set.summary()["num_invocations"] == 2


class TestPresets:
    def test_table3_values_encoded(self):
        assert PROVIDER_SCHED_PRESETS["aws_lambda"].period_s == pytest.approx(0.020)
        assert PROVIDER_SCHED_PRESETS["aws_lambda"].tick_hz == 250
        assert PROVIDER_SCHED_PRESETS["gcp_run_functions"].period_s == pytest.approx(0.1)
        assert PROVIDER_SCHED_PRESETS["gcp_run_functions"].tick_hz == 1000
        assert PROVIDER_SCHED_PRESETS["ibm_code_engine"].period_s == pytest.approx(0.01)

    def test_scheduler_config_for_provider(self):
        config = scheduler_config_for("aws_lambda", vcpu_fraction=0.25)
        assert config.bandwidth.quota_s == pytest.approx(0.005)
        assert config.tick_hz == 250

    def test_unknown_provider_raises(self):
        with pytest.raises(KeyError):
            scheduler_config_for("unknown_cloud", vcpu_fraction=0.5)
