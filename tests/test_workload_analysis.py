"""Tests for per-function workload characterisation."""

import math

import pytest

from repro.traces.schema import RequestRecord, ResourceUsage, Trace
from repro.traces.workload_analysis import (
    characterize_functions,
    classify_traffic,
    idle_gap_distribution,
)


def _request(request_id, function_id, arrival, duration=0.1):
    return RequestRecord(
        request_id=request_id,
        function_id=function_id,
        pod_id=f"pod-{function_id}",
        arrival_s=arrival,
        duration_s=duration,
        usage=ResourceUsage(cpu_seconds=duration * 0.3, memory_gb=0.2),
        alloc_vcpus=1.0,
        alloc_memory_gb=0.5,
    )


class TestClassifyTraffic:
    def test_steady(self):
        assert classify_traffic(mean_interarrival_s=1.0, interarrival_cv=0.2) == "steady"

    def test_bursty(self):
        assert classify_traffic(mean_interarrival_s=5.0, interarrival_cv=3.0) == "bursty"

    def test_sporadic_long_gaps(self):
        assert classify_traffic(mean_interarrival_s=900.0, interarrival_cv=0.1) == "sporadic"

    def test_sporadic_single_request(self):
        assert classify_traffic(mean_interarrival_s=float("inf"), interarrival_cv=0.0) == "sporadic"


class TestIdleGaps:
    def test_gap_computation(self):
        trace = Trace([_request("a", "f1", 0.0, 0.1), _request("b", "f1", 10.0, 0.1)])
        gaps = idle_gap_distribution(trace, "f1")
        assert gaps == [pytest.approx(9.9)]

    def test_per_function_isolation(self):
        trace = Trace(
            [
                _request("a", "f1", 0.0),
                _request("b", "f2", 1.0),
                _request("c", "f1", 5.0),
            ]
        )
        assert len(idle_gap_distribution(trace, "f1")) == 1
        assert len(idle_gap_distribution(trace)) == 1  # f2 has a single request, no gap

    def test_overlapping_requests_yield_no_negative_gaps(self):
        trace = Trace([_request("a", "f1", 0.0, 5.0), _request("b", "f1", 1.0, 0.1)])
        assert all(g >= 0 for g in idle_gap_distribution(trace, "f1"))


class TestCharacterizeFunctions:
    def test_basic_statistics(self):
        trace = Trace([_request(f"r{i}", "f1", float(i)) for i in range(10)])
        stats = characterize_functions(trace)
        assert len(stats) == 1
        entry = stats[0]
        assert entry.num_requests == 10
        assert entry.mean_duration_s == pytest.approx(0.1)
        assert entry.mean_interarrival_s == pytest.approx(1.0)
        assert entry.traffic_class == "steady"

    def test_min_requests_filter(self):
        trace = Trace([_request("a", "f1", 0.0), _request("b", "f2", 0.0), _request("c", "f2", 1.0)])
        stats = characterize_functions(trace, min_requests=2)
        assert [s.function_id for s in stats] == ["f2"]

    def test_invalid_min_requests(self):
        with pytest.raises(ValueError):
            characterize_functions(Trace([]), min_requests=0)

    def test_as_row(self):
        trace = Trace([_request("a", "f1", 0.0), _request("b", "f1", 2.0)])
        row = characterize_functions(trace)[0].as_row()
        assert row["function_id"] == "f1"
        assert row["mean_duration_ms"] == pytest.approx(100.0)

    def test_on_synthetic_trace(self, small_trace):
        stats = characterize_functions(small_trace, min_requests=5)
        assert stats, "expected several functions with >= 5 requests"
        classes = {s.traffic_class for s in stats}
        assert classes <= {"steady", "bursty", "sporadic"}
        for entry in stats:
            assert 0 <= entry.mean_cpu_utilization <= 1
            assert entry.p95_duration_s >= entry.mean_duration_s * 0.5
