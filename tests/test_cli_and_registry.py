"""Tests for the CLI and the experiment registry."""

import pytest

from repro.analysis.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.cli import build_parser, main


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "exploit",
            "cluster_costs",
            "backpressure",
        }
        assert set(EXPERIMENTS) == expected

    def test_list_order_stable(self):
        assert list_experiments()[0] == "table1"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_metadata_fields(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.title
            assert experiment.modules.startswith("repro.")

    @pytest.mark.parametrize("experiment_id", ["table1", "figure1", "figure11", "table2", "exploit"])
    def test_cheap_experiments_run(self, experiment_id):
        rows = run_experiment(experiment_id)
        assert rows
        assert isinstance(rows[0], dict)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table1", "--format", "markdown"])
        assert args.experiment == "table1"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure10" in output

    def test_run_table1_text(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "aws_lambda" in output

    def test_run_figure1_markdown(self, capsys):
        assert main(["run", "figure1", "--format", "markdown"]) == 0
        assert "| platform |" in capsys.readouterr().out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_trace_command_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        assert main(["trace", "--requests", "200", "--functions", "10", "--output", str(output)]) == 0
        assert output.exists()
        assert "wrote 200 requests" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_trace_generation_without_output_fails(self, capsys):
        assert main(["trace"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_trace_simulate_without_artifact_flags_fails(self, capsys):
        assert main(["trace", "--simulate", "backpressure"]) == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_trace_simulate_backpressure_writes_artifacts(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        telemetry_out = tmp_path / "telemetry.csv"
        profile_out = tmp_path / "profile.json"
        assert (
            main(
                [
                    "trace", "--simulate", "backpressure", "--duration-s", "10",
                    "--retry", "on",
                    "--trace-out", str(trace_out),
                    "--telemetry-out", str(telemetry_out),
                    "--profile-out", str(profile_out),
                ]
            )
            == 0
        )
        import json

        from repro.obs import validate_chrome_trace

        document = json.loads(trace_out.read_text())
        assert validate_chrome_trace(document["traceEvents"]) > 0
        assert telemetry_out.read_text().startswith("time_s")
        assert json.loads(profile_out.read_text())["events_total"] > 0
        assert "wrote trace artifact" in capsys.readouterr().out

    def test_trace_simulate_cluster_jsonl(self, tmp_path, capsys):
        trace_out = tmp_path / "spans.jsonl"
        assert (
            main(
                [
                    "trace", "--simulate", "cluster", "--duration-s", "10",
                    "--trace-out", str(trace_out),
                ]
            )
            == 0
        )
        import json

        lines = [json.loads(line) for line in trace_out.read_text().splitlines()]
        assert lines and all("kind" in line for line in lines)

    def test_cluster_trace_out_records_first_point_only(self, tmp_path, capsys):
        trace_out = tmp_path / "cluster_trace.json"
        rows_out = tmp_path / "rows.csv"
        plain_rows = tmp_path / "plain.csv"
        args = [
            "cluster", "--fleet-sizes", "4", "--policies", "first_fit,best_fit",
            "--keep-alive-s", "60", "--duration-s", "10",
        ]
        assert main(args + ["--output", str(plain_rows)]) == 0
        assert (
            main(args + ["--output", str(rows_out), "--trace-out", str(trace_out)]) == 0
        )
        assert trace_out.exists()
        # The recording rides along without changing a byte of the rows.
        assert rows_out.read_bytes() == plain_rows.read_bytes()
        assert "first grid point" in capsys.readouterr().err
