"""Tests for the CLI and the experiment registry."""

import pytest

from repro.analysis.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.cli import build_parser, main


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "exploit",
            "cluster_costs",
            "backpressure",
        }
        assert set(EXPERIMENTS) == expected

    def test_list_order_stable(self):
        assert list_experiments()[0] == "table1"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_metadata_fields(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.title
            assert experiment.modules.startswith("repro.")

    @pytest.mark.parametrize("experiment_id", ["table1", "figure1", "figure11", "table2", "exploit"])
    def test_cheap_experiments_run(self, experiment_id):
        rows = run_experiment(experiment_id)
        assert rows
        assert isinstance(rows[0], dict)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "table1", "--format", "markdown"])
        assert args.experiment == "table1"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure10" in output

    def test_run_table1_text(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "aws_lambda" in output

    def test_run_figure1_markdown(self, capsys):
        assert main(["run", "figure1", "--format", "markdown"]) == 0
        assert "| platform |" in capsys.readouterr().out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_trace_command_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        assert main(["trace", "--requests", "200", "--functions", "10", "--output", str(output)]) == 0
        assert output.exists()
        assert "wrote 200 requests" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
