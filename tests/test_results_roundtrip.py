"""Round-trip safety of ResultStore CSV persistence for fleet/platform identifiers."""

from repro.sim.results import ResultStore


class TestIdentifierRoundTrip:
    def test_fleet_host_names_survive(self, tmp_path):
        """Fleet host names ('host-00000', 'zone/host-00001') stay strings."""
        store = ResultStore(
            [
                {"host": "host-00000", "zone_host": "economy/host-00001", "count": 3},
                {"host": "host-00012", "zone_host": "premium/host-00000", "count": 4},
            ]
        )
        path = tmp_path / "hosts.csv"
        store.to_csv(str(path))
        assert ResultStore.from_csv(str(path)) == store

    def test_request_and_sandbox_id_namespacing_survives(self, tmp_path):
        """PlatformSimulator's namespaced ids round-trip without mangling."""
        store = ResultStore(
            [
                {
                    "request_id": "fn-000/req-0000001",
                    "sandbox": "fn-000/sandbox-000002",
                    "bare_request": "req-0000042",
                }
            ]
        )
        path = tmp_path / "ids.csv"
        store.to_csv(str(path))
        assert ResultStore.from_csv(str(path)) == store

    def test_zero_padded_counter_fragments_stay_strings(self, tmp_path):
        """The zero-padded counter tail of a split id must not collapse to int.

        This was the field-loss bug: ``int("00042") == 42`` parses, so a
        column holding the counter part of a host/request name silently lost
        its padding (and its string type) on ``from_csv``.
        """
        store = ResultStore([{"counter": "00042", "grouped": "1_000", "plus": "+5"}])
        path = tmp_path / "counters.csv"
        store.to_csv(str(path))
        loaded = ResultStore.from_csv(str(path))
        assert loaded == store
        row = loaded.rows[0]
        assert row["counter"] == "00042" and isinstance(row["counter"], str)
        assert row["grouped"] == "1_000" and isinstance(row["grouped"], str)
        assert row["plus"] == "+5" and isinstance(row["plus"], str)

    def test_canonical_numbers_still_parse(self, tmp_path):
        store = ResultStore([{"i": 42, "neg": -7, "f": 60.0, "exp": 1.5e-05, "zero": 0}])
        path = tmp_path / "numbers.csv"
        store.to_csv(str(path))
        row = ResultStore.from_csv(str(path)).rows[0]
        assert row["i"] == 42 and isinstance(row["i"], int)
        assert row["neg"] == -7 and isinstance(row["neg"], int)
        assert row["f"] == 60.0 and isinstance(row["f"], float)
        assert row["exp"] == 1.5e-05 and isinstance(row["exp"], float)
        assert row["zero"] == 0 and isinstance(row["zero"], int)

    def test_heterogeneous_rows_round_trip(self, tmp_path):
        """Keys missing from a row stay missing after a round trip.

        ``to_csv`` writes ``""`` for absent keys under the union header;
        ``from_csv`` drops those cells again instead of resurrecting them as
        empty-string fields, so store equality holds.
        """
        store = ResultStore(
            [
                {"a": 1, "b": "x"},
                {"a": 2, "c": 3.5},
            ]
        )
        path = tmp_path / "hetero.csv"
        store.to_csv(str(path))
        loaded = ResultStore.from_csv(str(path))
        assert loaded == store
        assert "c" not in loaded.rows[0] and "b" not in loaded.rows[1]

    def test_columns_added_by_later_prs_stay_missing_on_old_csvs(self, tmp_path):
        """Re-reading a pre-PR-4 CSV must not invent the newer summary columns.

        A CSV written before ``failed_requests``/``retry_amplification``
        existed has rows *shorter* than a newer union header (hand-merged
        files, or appended rows under a widened header).  ``csv.DictReader``
        reports those cells as ``None``; they must come back as missing keys
        -- not ``NaN``, not empty strings, not a crash -- so
        ``row.get("failed_requests")`` distinguishes "not recorded" from 0.
        """
        path = tmp_path / "merged.csv"
        path.write_text(
            "seed,num_requests,failed_requests,retry_amplification\n"
            "11,120\n"  # pre-PR-4 row: no failed_requests, no retry column
            "12,80,3,1.5\n"
        )
        rows = ResultStore.from_csv(str(path)).rows
        assert rows[0] == {"seed": 11, "num_requests": 120}
        assert "failed_requests" not in rows[0] and "retry_amplification" not in rows[0]
        assert rows[1]["failed_requests"] == 3 and rows[1]["retry_amplification"] == 1.5

    def test_summarize_skips_rows_missing_the_column(self, tmp_path):
        """Aggregations over a widened store ignore rows that predate a column."""
        path = tmp_path / "merged.csv"
        path.write_text("group,failed_requests\na\na,4\na,2\n")
        store = ResultStore.from_csv(str(path))
        summary = store.summarize("group", "failed_requests")
        assert summary[0]["count"] == 2
        assert summary[0]["mean_failed_requests"] == 3.0

    def test_cells_beyond_the_header_are_ignored(self, tmp_path):
        """A ragged row longer than the header must not crash the parse."""
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2,3,4\n")
        rows = ResultStore.from_csv(str(path)).rows
        assert rows == [{"a": 1, "b": 2}]

    def test_cluster_fleet_summary_row_round_trips(self, tmp_path):
        """An actual co-simulation summary row survives CSV persistence."""
        import dataclasses

        from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
        from repro.cluster.fleet import FleetConfig
        from repro.cluster.host import HostSpec
        from repro.platform.presets import get_platform_preset
        from repro.workloads.functions import PYAES_FUNCTION

        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name="fn-00")
        simulator = ClusterSimulator(
            [
                FunctionDeployment(
                    function=function,
                    platform=get_platform_preset("gcp_run_like"),
                    rps=2.0,
                    duration_s=5.0,
                )
            ],
            fleet_config=FleetConfig(
                host_spec=HostSpec(vcpus=2, memory_gb=4), max_hosts=1, queue_depth=4
            ),
            billing_platform="gcp_run_request",
            seed=13,
        )
        result = simulator.run()
        row = dict(result.summary())
        row["first_host"] = result.fleet.hosts[0].name  # "host-00000"
        store = ResultStore([row])
        path = tmp_path / "summary.csv"
        store.to_csv(str(path))
        loaded = ResultStore.from_csv(str(path))
        assert loaded.rows[0]["first_host"] == "host-00000"
        assert loaded == store
