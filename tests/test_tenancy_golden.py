"""Golden-file regression pin for one saturated two-tenant scenario.

The tenancy layer touches every layer at once: traffic (tenant-tagged
arrivals), admission (credit metering before routing, denials and credit
queueing), serving (released requests re-entering with their original arrival
stamps), billing (per-tenant invoice buckets) and the summary columns (SLO
attainment, goodput, Jain's fairness index).  Property tests bound its
behaviour; this test *freezes* it: one saturated co-simulation with a
deny-policy tenant and a queue-policy tenant -- credit denials, credit-queue
waits, per-tenant invoices and the fairness index all active -- is pinned
into ``tests/golden/tenancy/`` and compared **float-exact** (JSON stores the
shortest round-tripping ``repr`` of each double), so any change to credit
arithmetic, release ordering or per-tenant accounting must touch the golden
deliberately.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_tenancy_golden.py
"""

import dataclasses
import json
import math
import pathlib

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.platform.presets import get_platform_preset
from repro.tenancy import TenantConfig
from repro.workloads.functions import PYAES_FUNCTION

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "tenancy"
GOLDEN_PATH = GOLDEN_DIR / "two_tenant_saturated.json"

#: Frozen scenario identity: changing any of these invalidates the golden.
SEED = 20260808
TENANTS = (
    # Gold pays for little and gets throttled hard: a small bucket with a
    # deny policy produces credit denials under saturation.
    TenantConfig(
        "gold",
        credit_capacity=12.0,
        credit_refill_per_s=1.0,
        on_exhausted="deny",
        slo_latency_s=0.6,
    ),
    # Silver parks instead: its credit-queue waits show up as latency and
    # missed SLOs rather than denials.
    TenantConfig(
        "silver",
        credit_capacity=12.0,
        credit_refill_per_s=1.0,
        on_exhausted="queue",
        slo_latency_s=0.6,
        weight=2.0,
    ),
)


def _scenario() -> ClusterSimulator:
    """An offered load well above both tenants' credit entitlements.

    Two functions per tenant (round-robin assignment over four deployments),
    8 rps each against 1-credit-per-second refills: both buckets drain within
    two simulated seconds, after which gold denies and silver queues -- every
    tenancy mechanism (spend, refill, denial, credit-release, SLO judgement,
    per-tenant billing, weighted fairness) fires within the run.
    """
    preset = get_platform_preset("aws_lambda_like")
    deployments = []
    for index in range(4):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=8.0, duration_s=6.0)
        )
    return ClusterSimulator(
        deployments,
        billing_platform="aws_lambda",
        seed=SEED,
        tenants=list(TENANTS),
    )


def _snapshot() -> dict:
    simulator = _scenario()
    result = simulator.run()
    report = result.tenancy
    admission = simulator.admission
    summary = result.summary()
    # NaN is a valid column value (SLO attainment with zero completions) but
    # not valid strict JSON; this scenario must not produce any.
    assert not any(
        isinstance(v, float) and math.isnan(v) for v in summary.values()
    ), "golden scenario produced NaN columns; pick a scenario where every tenant completes"
    return {
        "seed": SEED,
        "summary": summary,
        "fairness": report.fairness(),
        "invoice_by_tenant": {
            t.name: {
                "billed_usd": t.billed_usd,
                "credits_spent": t.credits_spent,
                "billed_per_goodput_usd": t.billed_per_goodput_usd,
            }
            for t in report.tenants
        },
        "admission_counters": {
            name: {
                "admitted": admission.admitted[name],
                "denied": admission.denied[name],
                "queued_total": admission.queued_total[name],
                "resumed": admission.resumed[name],
            }
            for name in admission.tenant_names
        },
    }


def test_two_tenant_scenario_matches_golden_float_exact():
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; regenerate with "
        "'PYTHONPATH=src python tests/test_tenancy_golden.py'"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _snapshot()
    # Field-by-field == on floats: bit-exact, no tolerance.  A failure here
    # means credit arithmetic, release ordering or per-tenant accounting
    # changed.
    assert current == golden


def test_golden_scenario_exercises_every_tenancy_mechanism():
    """The pin is only worth its bytes if the scenario is non-trivial."""
    snapshot = _snapshot()
    summary = snapshot["summary"]
    counters = snapshot["admission_counters"]
    assert counters["gold"]["denied"] > 0            # deny policy fired
    assert counters["silver"]["denied"] == 0         # queue policy never denies
    assert counters["silver"]["resumed"] > 0         # credit releases fired
    assert summary["credit_denied_requests"] == counters["gold"]["denied"]
    assert 0.0 < summary["slo_attainment"] < 1.0     # SLO judgement is live
    assert 0.0 < summary["jain_fairness"] < 1.0      # weighted goodput differs
    invoices = snapshot["invoice_by_tenant"]
    assert all(entry["billed_usd"] > 0 for entry in invoices.values())
    # The per-tenant buckets partition the global invoice exactly (same
    # float accumulation order: completion order within one running sum).
    assert sum(e["billed_usd"] for e in invoices.values()) <= summary["cost_usd"] + 1e-12


def regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_snapshot(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
