"""Integration-level tests of the platform simulator (presets + invoker)."""

import pytest

from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import PLATFORM_PRESETS, get_platform_preset
from repro.platform.serving import ServingArchitecture
from repro.workloads.functions import MINIMAL_FUNCTION, PYAES_FUNCTION
from repro.workloads.traffic import constant_rate_arrivals, idle_gap_probe_arrivals


class TestPresets:
    def test_all_expected_presets_exist(self):
        assert set(PLATFORM_PRESETS) == {
            "aws_lambda_like",
            "gcp_run_like",
            "azure_consumption_like",
            "ibm_code_engine_like",
            "cloudflare_workers_like",
        }

    def test_unknown_preset_raises_helpful_error(self):
        with pytest.raises(KeyError):
            get_platform_preset("openwhisk_like")

    def test_aws_single_concurrency_api_polling(self):
        preset = get_platform_preset("aws_lambda_like")
        assert preset.concurrency.is_single
        assert preset.architecture is ServingArchitecture.API_POLLING

    def test_gcp_multi_concurrency_default_80(self):
        preset = get_platform_preset("gcp_run_like")
        assert preset.concurrency.max_concurrency == 80
        assert preset.architecture is ServingArchitecture.HTTP_SERVER
        assert preset.autoscaler is not None
        assert preset.autoscaler.target_cpu_utilization == pytest.approx(0.6)

    def test_ibm_knative_default_concurrency_100(self):
        assert get_platform_preset("ibm_code_engine_like").concurrency.max_concurrency == 100

    def test_cloudflare_code_execution(self):
        assert get_platform_preset("cloudflare_workers_like").architecture is ServingArchitecture.CODE_EXECUTION

    def test_function_config_validation(self):
        with pytest.raises(ValueError):
            FunctionConfig(name="f", alloc_vcpus=0.0, alloc_memory_gb=1.0, cpu_time_s=0.1)
        with pytest.raises(ValueError):
            FunctionConfig(name="f", alloc_vcpus=1.0, alloc_memory_gb=1.0, cpu_time_s=-0.1)

    def test_platform_config_validation(self):
        preset = get_platform_preset("aws_lambda_like")
        with pytest.raises(ValueError):
            PlatformConfig(
                name="bad",
                concurrency=preset.concurrency,
                serving=preset.serving,
                keep_alive=preset.keep_alive,
                placement_delay_s=-1.0,
            )


class TestSingleConcurrencySimulation:
    @pytest.fixture(scope="class")
    def metrics(self):
        preset = get_platform_preset("aws_lambda_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
        simulator = PlatformSimulator(preset, function, seed=3)
        return simulator.run(constant_rate_arrivals(10, 30.0))

    def test_all_requests_served(self, metrics):
        assert metrics.num_requests == 300

    def test_durations_stable_under_load(self, metrics):
        """Figure 6: single-concurrency execution duration independent of load."""
        summary = metrics.summary()
        assert summary["p95_execution_duration_s"] <= summary["mean_execution_duration_s"] * 1.2

    def test_execution_close_to_service_time(self, metrics):
        assert metrics.mean_execution_duration_s() == pytest.approx(0.161, rel=0.05)

    def test_cold_starts_only_on_new_sandboxes(self, metrics):
        assert 0 < metrics.cold_starts < metrics.num_requests

    def test_instance_timeline_recorded(self, metrics):
        assert metrics.max_instances() >= 2


class TestMultiConcurrencySimulation:
    def test_contention_raises_mean_duration(self):
        """Figure 6: the multi-concurrency platform slows down at high request rates."""
        preset = get_platform_preset("gcp_run_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        low = PlatformSimulator(preset, function, seed=1).run(constant_rate_arrivals(1, 60.0))
        high = PlatformSimulator(preset, function, seed=1).run(constant_rate_arrivals(20, 60.0))
        assert high.mean_execution_duration_s() > 2.0 * low.mean_execution_duration_s()

    def test_autoscaler_adds_instances_under_load(self):
        preset = get_platform_preset("gcp_run_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.5)
        metrics = PlatformSimulator(preset, function, seed=1).run(constant_rate_arrivals(15, 120.0))
        assert metrics.max_instances() >= 3

    def test_duration_timeline_bucketing(self):
        preset = get_platform_preset("gcp_run_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5, init_duration_s=0.5)
        metrics = PlatformSimulator(preset, function, seed=2).run(constant_rate_arrivals(5, 40.0))
        timeline = metrics.duration_timeline(bucket_s=10.0)
        assert len(timeline) >= 3
        assert all("p95_duration_s" in row for row in timeline)

    def test_timeline_rejects_bad_bucket(self):
        preset = get_platform_preset("gcp_run_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5)
        metrics = PlatformSimulator(preset, function, seed=2).run(constant_rate_arrivals(2, 5.0))
        with pytest.raises(ValueError):
            metrics.duration_timeline(bucket_s=0.0)


class TestKeepAliveBehaviour:
    def test_short_idle_gap_stays_warm(self):
        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5, init_duration_s=1.0)
        arrivals = idle_gap_probe_arrivals([60.0] * 5)
        metrics = PlatformSimulator(preset, function, seed=5).run(arrivals)
        outcomes = sorted(metrics.requests, key=lambda r: r.arrival_s)
        assert outcomes[0].cold_start
        assert all(not r.cold_start for r in outcomes[1:])

    def test_long_idle_gap_goes_cold(self):
        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5, init_duration_s=1.0)
        arrivals = idle_gap_probe_arrivals([600.0] * 4)
        metrics = PlatformSimulator(preset, function, seed=5).run(arrivals)
        outcomes = sorted(metrics.requests, key=lambda r: r.arrival_s)
        assert all(r.cold_start for r in outcomes)

    def test_cold_start_records_init_duration(self):
        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5, init_duration_s=1.0)
        metrics = PlatformSimulator(preset, function, seed=5).run([0.0])
        outcome = metrics.requests[0]
        assert outcome.cold_start
        assert outcome.init_duration_s >= 1.0
        assert outcome.turnaround_s > outcome.execution_duration_s

    def test_empty_arrivals(self):
        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5)
        metrics = PlatformSimulator(preset, function).run([])
        assert metrics.num_requests == 0


class TestSandboxLifecycleEvents:
    """The simulator publishes the full typed lifecycle on its bus."""

    def _run_with_listener(self, arrivals, platform="aws_lambda_like", horizon_s=None):
        from repro.sim.events import (
            EventBus,
            KeepAliveExpired,
            SandboxBusy,
            SandboxColdStart,
            SandboxEvicted,
            SandboxIdle,
            SandboxProvisioned,
            SandboxTerminated,
        )

        preset = get_platform_preset(platform)
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5, init_duration_s=0.5)
        bus = EventBus()
        log = []
        for event_type in (SandboxColdStart, SandboxBusy, SandboxIdle, KeepAliveExpired, SandboxEvicted):
            bus.subscribe(event_type, lambda e, kind=event_type.__name__: log.append((kind, e)))
        base = {"provisioned": [], "terminated": []}
        bus.subscribe(SandboxProvisioned, lambda e: base["provisioned"].append(e))
        bus.subscribe(SandboxTerminated, lambda e: base["terminated"].append(e))
        simulator = PlatformSimulator(preset, function, seed=5, bus=bus)
        simulator.run(arrivals, horizon_s=horizon_s)
        return log, base

    def test_cold_start_busy_idle_sequence(self):
        log, base = self._run_with_listener([0.0])
        kinds = [kind for kind, _ in log]
        assert kinds[:3] == ["SandboxColdStart", "SandboxBusy", "SandboxIdle"]
        cold = log[0][1]
        assert cold.function_name == "minimal"
        assert cold.alloc_vcpus == pytest.approx(1.0)
        assert cold.init_duration_s == pytest.approx(0.55)  # placement delay + init
        # Cold starts still reach legacy SandboxProvisioned subscribers.
        assert len(base["provisioned"]) == 1

    def test_keepalive_expiry_publishes_expire_then_evict(self):
        # Horizon past the AWS max keep-alive (360 s) so the expiry fires.
        log, base = self._run_with_listener([0.0], horizon_s=500.0)
        kinds = [kind for kind, _ in log]
        assert "KeepAliveExpired" in kinds
        assert kinds.index("KeepAliveExpired") < kinds.index("SandboxEvicted")
        evict = next(event for kind, event in log if kind == "SandboxEvicted")
        assert evict.reason == "keepalive_expire"
        # Evictions still reach legacy SandboxTerminated subscribers.
        assert len(base["terminated"]) == 1

    def test_named_simulator_namespaces_sandboxes(self):
        from repro.sim.events import EventBus, SandboxColdStart
        from repro.sim.kernel import SimulationKernel

        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5)
        bus = EventBus()
        names = []
        bus.subscribe(SandboxColdStart, lambda e: names.append(e.sandbox_name))
        kernel = SimulationKernel()
        simulator = PlatformSimulator(preset, function, seed=1, bus=bus, kernel=kernel, name="fn-a")
        horizon = simulator.schedule_arrivals([0.0])
        kernel.run(until=horizon)
        assert names and all(name.startswith("fn-a/sandbox-") for name in names)

    def test_shared_kernel_requires_name(self):
        from repro.sim.kernel import SimulationKernel

        preset = get_platform_preset("aws_lambda_like")
        function = MINIMAL_FUNCTION.to_function_config(1.0, 0.5)
        with pytest.raises(ValueError):
            PlatformSimulator(preset, function, kernel=SimulationKernel())
