"""Property-based tests (hypothesis) on core invariants of the billing and scheduling substrates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PLATFORM_BILLING_MODELS, PlatformName
from repro.billing.units import ResourceKind, apply_minimum, round_up
from repro.platform.concurrency import ContentionModel
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.sched.analytical import theoretical_duration
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim
from repro.sched.task import SimTask
from repro.traces.statistics import pearson_correlation, spearman_correlation

positive_times = st.floats(min_value=1e-4, max_value=100.0, allow_nan=False, allow_infinity=False)
granularities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestRoundingProperties:
    @given(value=positive_times, granularity=granularities)
    def test_round_up_never_decreases(self, value, granularity):
        assert round_up(value, granularity) >= value - 1e-9

    @given(value=positive_times, granularity=st.floats(min_value=1e-4, max_value=1.0))
    def test_round_up_is_multiple_of_granularity(self, value, granularity):
        rounded = round_up(value, granularity)
        multiple = rounded / granularity
        assert abs(multiple - round(multiple)) < 1e-6

    @given(value=positive_times, granularity=st.floats(min_value=1e-4, max_value=1.0))
    def test_round_up_within_one_granule(self, value, granularity):
        assert round_up(value, granularity) <= value + granularity + 1e-9

    @given(value=positive_times, granularity=st.floats(min_value=1e-4, max_value=1.0))
    def test_round_up_idempotent(self, value, granularity):
        once = round_up(value, granularity)
        assert round_up(once, granularity) <= once + 1e-9

    @given(value=st.floats(min_value=0.0, max_value=10.0), minimum=st.floats(min_value=0.0, max_value=1.0))
    def test_apply_minimum_properties(self, value, minimum):
        result = apply_minimum(value, minimum)
        assert result >= value - 1e-12
        if value > 0 and minimum > 0:
            assert result >= minimum


class TestBillingProperties:
    @given(
        execution=st.floats(min_value=1e-3, max_value=100.0),
        cpu_used_fraction=st.floats(min_value=0.0, max_value=1.0),
        memory_used_fraction=st.floats(min_value=0.0, max_value=1.0),
        vcpus=fractions,
        memory=st.floats(min_value=0.128, max_value=8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_billable_resources_never_below_actual_usage(
        self, execution, cpu_used_fraction, memory_used_fraction, vcpus, memory
    ):
        """Under every Table 1 billing model, billable resources cover actual consumption."""
        inputs = InvocationBillingInput(
            execution_s=execution,
            init_s=0.0,
            alloc_vcpus=vcpus,
            alloc_memory_gb=memory,
            used_cpu_seconds=cpu_used_fraction * vcpus * execution,
            used_memory_gb=memory_used_fraction * memory,
        )
        for platform in (
            PlatformName.AWS_LAMBDA,
            PlatformName.GCP_RUN_REQUEST,
            PlatformName.AZURE_CONSUMPTION,
            PlatformName.HUAWEI_FUNCTIONGRAPH,
            PlatformName.CLOUDFLARE_WORKERS,
        ):
            billed = BillingCalculator(platform).bill(inputs)
            if billed.billable_cpu_seconds > 0:
                assert billed.billable_cpu_seconds >= billed.actual_cpu_seconds - 1e-9
            if billed.billable_memory_gb_seconds > 0:
                assert billed.billable_memory_gb_seconds >= billed.actual_memory_gb_seconds * 0.999 - 1e-9

    @given(execution=st.floats(min_value=1e-3, max_value=10.0), vcpus=fractions)
    @settings(max_examples=60, deadline=None)
    def test_invoice_total_nonnegative_and_monotone_in_duration(self, execution, vcpus):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        base = InvocationBillingInput(
            execution_s=execution,
            init_s=0.0,
            alloc_vcpus=vcpus,
            alloc_memory_gb=1.0,
            used_cpu_seconds=0.0,
            used_memory_gb=0.1,
        )
        longer = InvocationBillingInput(
            execution_s=execution * 2,
            init_s=0.0,
            alloc_vcpus=vcpus,
            alloc_memory_gb=1.0,
            used_cpu_seconds=0.0,
            used_memory_gb=0.1,
        )
        assert calculator.bill(base).invoice.total >= 0
        assert calculator.bill(longer).invoice.total >= calculator.bill(base).invoice.total - 1e-12

    @given(st.sampled_from(list(PLATFORM_BILLING_MODELS.values())))
    def test_describe_round_trips_key_fields(self, model):
        description = model.describe()
        assert description["platform"] == model.platform
        assert description["invocation_fee_usd"] == model.invocation_fee


class TestSchedulingProperties:
    @given(cpu_time=st.floats(min_value=1e-3, max_value=0.5), fraction=fractions)
    @settings(max_examples=60, deadline=None)
    def test_equation2_bounds(self, cpu_time, fraction):
        """Equation (2) durations lie between the CPU demand and demand/fraction + one period."""
        period = 0.02
        duration = theoretical_duration(cpu_time, period, fraction * period)
        assert duration >= cpu_time - 1e-9
        assert duration <= cpu_time / fraction + period + 1e-9

    @given(cpu_time=st.floats(min_value=2e-3, max_value=0.06), fraction=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_simulated_duration_bounded_by_theory_plus_slack(self, cpu_time, fraction):
        """The simulator conserves CPU demand and respects coarse duration bounds."""
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(fraction, period_s=0.02),
            tick_hz=250,
            horizon_s=20.0,
        )
        result = SchedulerSim(config, [SimTask.cpu_bound(cpu_time, name="t")]).run().single
        assert result.finished
        assert result.cpu_consumed_s >= cpu_time - 1e-9
        assert result.duration_s >= cpu_time - 1e-9
        # Overallocation can only make the task *faster* than the ideal share,
        # never slower than the theory plus one period of slack.
        ideal = theoretical_duration(cpu_time, 0.02, fraction * 0.02)
        assert result.duration_s <= ideal + 0.02 + 1e-6

    @given(concurrency=st.integers(min_value=1, max_value=64), vcpus=st.floats(min_value=0.1, max_value=4.0))
    def test_contention_slowdown_at_least_fair_share(self, concurrency, vcpus):
        contention = ContentionModel()
        slowdown = contention.slowdown(concurrency, vcpus)
        uncontended_rate = min(1.0, vcpus)
        fair_rate = min(1.0, vcpus / concurrency)
        assert slowdown >= uncontended_rate / (fair_rate + 1e-12) - 1e-9


class TestKeepAliveProperties:
    @given(
        minimum=st.floats(min_value=0.0, max_value=500.0),
        span=st.floats(min_value=0.0, max_value=500.0),
        idle=st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_cold_start_probability_bounded_and_monotone(self, minimum, span, idle):
        policy = KeepAlivePolicy(
            min_keep_alive_s=minimum,
            max_keep_alive_s=minimum + span,
            resource_behavior=KeepAliveResourceBehavior.FREEZE_DEALLOCATE,
        )
        probability = policy.cold_start_probability(idle)
        assert 0.0 <= probability <= 1.0
        assert policy.cold_start_probability(idle + 10.0) >= probability - 1e-12


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=50))
    def test_correlation_bounds(self, values):
        shifted = [v * 2 + 1 for v in values]
        rho = pearson_correlation(values, shifted)
        if not math.isnan(rho):
            assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3).map(lambda v: round(v, 3)),
            min_size=3,
            max_size=50,
        )
    )
    def test_spearman_invariant_to_monotone_transform(self, values):
        # Rounding avoids subnormal values whose cube underflows to zero and
        # would create ties that exist in the transform but not the original.
        transformed = [v**3 for v in values]
        rho_raw = spearman_correlation(values, values)
        rho_transformed = spearman_correlation(values, transformed)
        if not math.isnan(rho_raw) and not math.isnan(rho_transformed):
            assert rho_transformed >= rho_raw - 1e-6
