"""Unit tests for the synthetic trace generator and its calibration."""

import pytest

from repro.traces.calibration import calibration_failures, check_calibration, compute_calibration_statistics
from repro.traces.generator import HUAWEI_FLAVORS, TraceGenerator, TraceGeneratorConfig


class TestTraceGeneratorConfig:
    def test_defaults_valid(self):
        config = TraceGeneratorConfig()
        assert config.num_requests > 0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            TraceGeneratorConfig(num_requests=0)
        with pytest.raises(ValueError):
            TraceGeneratorConfig(num_functions=0)

    def test_invalid_cold_start_fraction(self):
        with pytest.raises(ValueError):
            TraceGeneratorConfig(cold_start_fraction=1.5)

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            TraceGeneratorConfig(utilization_correlation=2.0)

    def test_empty_flavors_rejected(self):
        with pytest.raises(ValueError):
            TraceGeneratorConfig(flavors=())


class TestTraceGenerator:
    def test_request_count(self, small_trace):
        assert len(small_trace) == 2_000

    def test_deterministic_given_seed(self):
        config = TraceGeneratorConfig(num_requests=200, num_functions=10, seed=42)
        a = TraceGenerator(config).generate()
        b = TraceGenerator(config).generate()
        assert [r.duration_s for r in a] == [r.duration_s for r in b]
        assert [r.usage.cpu_seconds for r in a] == [r.usage.cpu_seconds for r in b]

    def test_different_seed_different_trace(self):
        a = TraceGenerator(TraceGeneratorConfig(num_requests=200, num_functions=10, seed=1)).generate()
        b = TraceGenerator(TraceGeneratorConfig(num_requests=200, num_functions=10, seed=2)).generate()
        assert [r.duration_s for r in a] != [r.duration_s for r in b]

    def test_flavors_come_from_catalog(self, small_trace):
        flavors = set(HUAWEI_FLAVORS)
        for record in small_trace:
            assert (record.alloc_vcpus, record.alloc_memory_gb) in flavors

    def test_arrivals_sorted_and_within_span(self, small_trace):
        arrivals = [r.arrival_s for r in small_trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] <= 3600.0

    def test_usage_within_allocation(self, small_trace):
        for record in small_trace:
            assert record.usage.cpu_seconds <= record.alloc_vcpus * record.duration_s + 1e-9
            assert record.usage.memory_gb <= record.alloc_memory_gb + 1e-9

    def test_every_pod_has_cold_start_record(self, small_trace):
        cold_pods = {c.pod_id for c in small_trace.cold_starts}
        request_pods = {r.pod_id for r in small_trace}
        assert request_pods <= cold_pods

    def test_cold_start_flags_match_records(self, small_trace):
        cold_request_pods = {r.pod_id for r in small_trace if r.cold_start}
        cold_pods = {c.pod_id for c in small_trace.cold_starts}
        assert cold_request_pods <= cold_pods

    def test_cold_starts_list_subsequent_requests(self, small_trace):
        by_pod = {}
        for record in small_trace:
            by_pod.setdefault(record.pod_id, []).append(record.request_id)
        for cold in small_trace.cold_starts:
            assert list(cold.subsequent_request_ids) == by_pod.get(cold.pod_id, [])

    def test_functions_registered(self, small_trace):
        assert len(small_trace.functions) == 40
        for record in small_trace:
            assert record.function_id in small_trace.functions

    def test_duration_floor_respected(self, small_trace):
        assert min(r.duration_s for r in small_trace) >= 1e-3 - 1e-12

    def test_generate_functions_only(self):
        generator = TraceGenerator(TraceGeneratorConfig(num_requests=10, num_functions=5, seed=3))
        functions = generator.generate_functions()
        assert len(functions) == 5


class TestCalibration:
    def test_calibrated_trace_passes_all_targets(self, calibrated_trace):
        assert calibration_failures(calibrated_trace) == []

    def test_mean_duration_near_target(self, calibrated_trace):
        stats = compute_calibration_statistics(calibrated_trace)
        assert stats["mean_duration_s"] == pytest.approx(0.05819, rel=0.15)

    def test_correlation_in_band(self, calibrated_trace):
        stats = compute_calibration_statistics(calibrated_trace)
        assert 0.25 <= stats["util_pearson"] <= 0.80
        assert 0.25 <= stats["util_spearman"] <= 0.80

    def test_check_calibration_report_structure(self, calibrated_trace):
        report = check_calibration(calibrated_trace)
        for entry in report.values():
            assert set(entry) >= {"measured", "paper", "lower", "upper", "ok"}

    def test_empty_trace_rejected(self):
        from repro.traces.schema import Trace

        with pytest.raises(ValueError):
            compute_calibration_statistics(Trace([]))
