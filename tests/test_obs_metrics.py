"""Metrics primitives, the robust percentile contract, and telemetry sampling."""

import csv
import math

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.telemetry import TelemetryProcess
from repro.platform.metrics import RequestOutcome, SimulationMetrics
from repro.sim.kernel import SimulationKernel


# ----------------------------------------------------------------------
# percentile(): defined for every input
# ----------------------------------------------------------------------


class TestPercentile:
    def test_empty_returns_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_single_sample_is_every_percentile_of_itself(self):
        for q in (0.0, 0.01, 0.5, 0.95, 1.0):
            assert percentile([3.25], q) == 3.25

    def test_matches_numpy_on_bulk_data(self):
        values = [float(v) for v in range(1, 101)]
        for q in (0.05, 0.5, 0.95, 0.99):
            assert percentile(values, q) == float(np.quantile(values, q))

    def test_percent_style_q_is_normalised(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 95) == percentile(values, 0.95)
        assert percentile(values, 50.0) == percentile(values, 0.5)

    def test_out_of_range_q_clamps(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, -0.5) == 1.0
        assert percentile(values, 1.0) == 3.0


class TestSimulationMetricsPercentiles:
    """The PR-6 fix: percentile methods are total, not crash-on-empty."""

    @staticmethod
    def _outcome(duration, arrival=0.0, completion=None):
        return RequestOutcome(
            request_id="req-0",
            arrival_s=arrival,
            start_s=arrival,
            completion_s=completion if completion is not None else arrival + duration,
            execution_duration_s=duration,
            cold_start=False,
            init_duration_s=0.0,
            queue_delay_s=0.0,
            sandbox_name="sb-0",
        )

    def test_empty_metrics_return_nan_not_raise(self):
        metrics = SimulationMetrics()
        assert math.isnan(metrics.percentile_execution_duration_s(0.95))
        assert math.isnan(metrics.percentile_end_to_end_latency_s(0.95))

    def test_single_sample(self):
        metrics = SimulationMetrics()
        metrics.record(self._outcome(2.5))
        assert metrics.percentile_execution_duration_s(0.95) == 2.5
        assert metrics.percentile_end_to_end_latency_s(0.5) == 2.5

    def test_percent_style_q(self):
        metrics = SimulationMetrics()
        for duration in (1.0, 2.0, 3.0, 4.0):
            metrics.record(self._outcome(duration))
        assert metrics.percentile_execution_duration_s(95) == (
            metrics.percentile_execution_duration_s(0.95)
        )

    def test_bulk_matches_numpy(self):
        metrics = SimulationMetrics()
        for duration in range(1, 21):
            metrics.record(self._outcome(float(duration)))
        expected = float(np.quantile([float(d) for d in range(1, 21)], 0.95))
        assert metrics.percentile_execution_duration_s(0.95) == expected


# ----------------------------------------------------------------------
# Counter / Gauge / Histogram
# ----------------------------------------------------------------------


class TestPrimitives:
    def test_counter(self):
        counter = Counter("arrivals")
        counter.inc()
        counter.inc(3)
        assert counter.read() == 4.0

    def test_gauge_callback_backed(self):
        state = {"depth": 7}
        gauge = Gauge("queue_depth", fn=lambda: state["depth"])
        assert gauge.read() == 7.0
        state["depth"] = 2
        assert gauge.read() == 2.0

    def test_gauge_set(self):
        gauge = Gauge("manual")
        gauge.set(1.5)
        assert gauge.read() == 1.5

    def test_histogram_summary(self):
        hist = Histogram("latency_s")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.min == 1.0 and hist.max == 4.0
        summary = hist.summary(percentiles=(0.5,))
        assert summary["count"] == 4.0
        assert summary["p50"] == 2.5

    def test_histogram_window_is_bounded(self):
        hist = Histogram("bounded", capacity=8)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100  # totals keep counting
        assert hist.percentile(0.0) == 92.0  # window holds the last 8

    def test_slots_no_dict(self):
        # __slots__ is the point: thousands of metric updates per simulated
        # second must not allocate per-instance dicts.
        for obj in (Counter("c"), Gauge("g"), Histogram("h")):
            with pytest.raises(AttributeError):
                obj.arbitrary = 1  # type: ignore[attr-defined]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_sample_reads_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("arrivals").inc(5)
        registry.gauge("depth", fn=lambda: 3.0)
        registry.histogram("lat").observe(1.0)
        sample = registry.sample()
        assert sample["arrivals"] == 5.0
        assert sample["depth"] == 3.0
        assert sample["lat"] == 1.0  # histograms sample their count


# ----------------------------------------------------------------------
# TelemetryProcess: ring-buffered sampling on the kernel time grid
# ----------------------------------------------------------------------


class TestTelemetry:
    def _run(self, horizon_s=10.0, interval_s=1.0, capacity=4096):
        kernel = SimulationKernel()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        registry.gauge("now", fn=lambda: kernel.now)
        telemetry = TelemetryProcess(registry, interval_s=interval_s, capacity=capacity)
        kernel.add_process(telemetry)
        kernel.on("bump", lambda event: counter.inc())
        for t in (0.5, 2.5, 7.5):
            kernel.schedule(t, "bump")
        kernel.run(until=horizon_s)
        return telemetry

    def test_samples_on_the_grid(self):
        telemetry = self._run()
        times, _ = telemetry.series("time_s")
        assert times == [float(t) for t in range(0, 11)]
        assert telemetry.samples_taken == len(times)

    def test_counter_series_is_monotone_step(self):
        telemetry = self._run()
        _, ticks = telemetry.series("ticks")
        assert ticks == sorted(ticks)
        assert ticks[0] == 0.0 and ticks[-1] == 3.0

    def test_ring_buffer_caps_memory(self):
        telemetry = self._run(horizon_s=100.0, capacity=16)
        assert telemetry.samples_taken == 101
        assert len(telemetry.rows) == 16
        times, _ = telemetry.series("time_s")
        assert times[-1] == 100.0

    def test_csv_roundtrip(self, tmp_path):
        telemetry = self._run()
        path = tmp_path / "telemetry.csv"
        telemetry.to_csv(str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == telemetry.samples_taken
        assert rows[0]["time_s"] == "0.0"
        assert float(rows[-1]["ticks"]) == 3.0

    def test_summary_percentiles(self):
        telemetry = self._run()
        summary = telemetry.summary(percentiles=(0.5,))
        assert summary["ticks"]["max"] == 3.0
        assert summary["ticks"]["last"] == 3.0
        assert "p50" in summary["ticks"]
