"""Unit tests for the Table 1 billing catalog."""

import pytest

from repro.billing.catalog import PLATFORM_BILLING_MODELS, PlatformName, get_billing_model, list_platforms
from repro.billing.models import BillableTime
from repro.billing.units import MB, ResourceKind


class TestCatalogCoverage:
    def test_all_twelve_platforms_present(self):
        assert len(PLATFORM_BILLING_MODELS) == 12

    def test_every_enum_member_has_model(self):
        for platform in PlatformName:
            assert platform in PLATFORM_BILLING_MODELS

    def test_lookup_by_string(self):
        model = get_billing_model("aws_lambda")
        assert model.platform == "aws_lambda"

    def test_lookup_by_enum(self):
        model = get_billing_model(PlatformName.CLOUDFLARE_WORKERS)
        assert model.platform == "cloudflare_workers"

    def test_unknown_platform_raises(self):
        with pytest.raises(ValueError):
            get_billing_model("not_a_platform")

    def test_list_platforms_order(self):
        assert list_platforms()[0] is PlatformName.AWS_LAMBDA


class TestTable1Rows:
    """Each test checks one row of Table 1 against the encoded model."""

    def test_aws_lambda(self):
        model = get_billing_model(PlatformName.AWS_LAMBDA)
        assert model.billable_time is BillableTime.TURNAROUND
        assert model.time_granularity_s == pytest.approx(0.001)
        assert model.cpu_embedded_in_memory
        assert model.invocation_fee == pytest.approx(2e-7)
        assert model.allocation_resources[0].granularity == pytest.approx(1 * MB)

    def test_gcp_request_based(self):
        model = get_billing_model(PlatformName.GCP_RUN_REQUEST)
        assert model.billable_time is BillableTime.TURNAROUND
        assert model.time_granularity_s == pytest.approx(0.1)
        kinds = {r.kind for r in model.allocation_resources}
        assert kinds == {ResourceKind.CPU, ResourceKind.MEMORY}

    def test_gcp_instance_based_has_no_fee(self):
        model = get_billing_model(PlatformName.GCP_RUN_INSTANCE)
        assert model.billable_time is BillableTime.INSTANCE
        assert model.invocation_fee == 0.0

    def test_azure_consumption_uses_consumed_memory_with_cutoff(self):
        model = get_billing_model(PlatformName.AZURE_CONSUMPTION)
        assert model.billable_time is BillableTime.EXECUTION
        assert model.minimum_time_s == pytest.approx(0.1)
        memory = model.allocation_resources[0]
        assert memory.use_consumption
        assert memory.granularity == pytest.approx(128 * MB)

    def test_azure_flex_minimum_one_second(self):
        model = get_billing_model(PlatformName.AZURE_FLEX)
        assert model.minimum_time_s == pytest.approx(1.0)
        assert model.time_granularity_s == pytest.approx(0.1)

    def test_azure_premium_instance_billing(self):
        model = get_billing_model(PlatformName.AZURE_PREMIUM)
        assert model.billable_time is BillableTime.INSTANCE
        assert model.invocation_fee == 0.0

    def test_ibm_no_invocation_fee(self):
        model = get_billing_model(PlatformName.IBM_CODE_ENGINE)
        assert model.invocation_fee == 0.0
        assert model.billable_time is BillableTime.TURNAROUND

    def test_huawei_memory_based_1ms(self):
        model = get_billing_model(PlatformName.HUAWEI_FUNCTIONGRAPH)
        assert model.time_granularity_s == pytest.approx(0.001)
        assert model.cpu_embedded_in_memory

    def test_alibaba_decoupled_cpu_memory(self):
        model = get_billing_model(PlatformName.ALIBABA_FC)
        cpu = [r for r in model.allocation_resources if r.kind is ResourceKind.CPU][0]
        memory = [r for r in model.allocation_resources if r.kind is ResourceKind.MEMORY][0]
        assert cpu.granularity == pytest.approx(0.05)
        assert memory.granularity == pytest.approx(64 * MB)

    def test_cloudflare_usage_billed_cpu_only(self):
        model = get_billing_model(PlatformName.CLOUDFLARE_WORKERS)
        assert model.billable_time is BillableTime.CPU_TIME
        assert not model.allocation_resources
        assert model.usage_resources[0].kind is ResourceKind.CPU

    def test_vercel_and_oracle_memory_based(self):
        for platform in (PlatformName.VERCEL_FUNCTIONS, PlatformName.ORACLE_FUNCTIONS):
            model = get_billing_model(platform)
            assert model.cpu_embedded_in_memory
            assert model.billable_time is BillableTime.EXECUTION


class TestPriceConsistency:
    def test_aws_gcp_equivalent_price_close(self):
        """§2.2: 1 vCPU + 1,769 MB costs roughly the same on AWS and GCP gen1."""
        aws = get_billing_model(PlatformName.AWS_LAMBDA)
        gcp = get_billing_model(PlatformName.GCP_RUN_REQUEST)
        memory_gb = 1769.0 / 1024.0
        aws_per_second = aws.allocation_resources[0].unit_price * memory_gb
        gcp_per_second = sum(
            r.unit_price * (1.0 if r.kind is ResourceKind.CPU else memory_gb)
            for r in gcp.allocation_resources
        )
        assert aws_per_second == pytest.approx(2.8792e-5, rel=0.02)
        assert gcp_per_second == pytest.approx(2.8319e-5, rel=0.02)

    def test_invocation_fees_in_paper_range(self):
        """§2.5: fees between $1.5e-7 and $6e-7 per request where charged."""
        for model in PLATFORM_BILLING_MODELS.values():
            if model.invocation_fee > 0:
                assert 1.5e-7 <= model.invocation_fee <= 6e-7
