"""Byte-compat pin: ``tenants=None`` reproduces pre-tenancy outputs exactly.

The tenancy layer (PR 9) threads a tenant id and an origin timestamp through
arrivals, routing tuples, outcome records, the retry loop, the cost meter and
the sweep runners.  Every one of those touch points is gated the same way the
feedback/retry/obs layers were: with no tenants configured the code must take
the exact pre-tenancy paths.  This suite pins that contract against artifacts
generated from the tree *before* the tenancy change landed:

- ``tests/golden/tenancy/baseline_cluster.csv`` — a cluster-cost sweep
  (feedback on),
- ``tests/golden/tenancy/baseline_backpressure.csv`` — a backpressure sweep
  (feedback off, scheduler co-simulated),
- ``tests/golden/tenancy/baseline_retry.csv`` — a retry-amplification sweep
  (feedback on, retry off vs on),
- ``tests/golden/tenancy/baseline_fingerprints.json`` — sha256 replay
  fingerprints of direct cluster co-simulations (feedback off; feedback on
  with retries; and the same run with the observability layer attached,
  which must not move a byte).

CSV comparisons are on raw bytes; fingerprints hash the full summary row,
the fleet utilisation timeline and the unplaceable ledger.  Regenerating
these goldens is only legitimate for an *intentional* behaviour change to
the pre-tenancy layers::

    PYTHONPATH=src python tests/test_tenancy_compat.py
"""

import dataclasses
import hashlib
import json
import pathlib

from repro.analysis.backpressure import backpressure_sweep, retry_amplification_sweep
from repro.analysis.cluster_costs import cluster_cost_sweep
from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.obs import obs_from_params
from repro.platform.presets import get_platform_preset
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "tenancy"

#: Frozen scenario identity: changing any of these invalidates the baselines.
BASE_SEED = 20260808
FINGERPRINT_SEED = 20260807

CLUSTER_AXES = {
    "num_functions": (2, 3),
    "placement_policy": ("best_fit",),
    "keep_alive_s": (15.0,),
}
CLUSTER_COMMON = {"duration_s": 8.0, "feedback": "on"}

BACKPRESSURE_AXES = {
    "queue_depth": (0, 2),
    "placement_policy": ("best_fit",),
    "heterogeneity": ("homogeneous",),
}
BACKPRESSURE_COMMON = {"duration_s": 8.0, "num_functions": 3}

RETRY_AXES = {
    "queue_depth": (0,),
    "placement_policy": ("best_fit",),
    "heterogeneity": ("homogeneous",),
    "retry": ("off", "on"),
}
RETRY_COMMON = {"duration_s": 8.0, "num_functions": 3, "rps_per_function": 4.0}

RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_backoff_s=0.25,
    backoff_multiplier=2.0,
    max_backoff_s=10.0,
    jitter=0.2,
)


def _csv_bytes(store, path) -> bytes:
    store.to_csv(str(path))
    return pathlib.Path(path).read_bytes()


def _cluster_sweep_bytes(tmp) -> bytes:
    store = cluster_cost_sweep(
        axes=CLUSTER_AXES, common=CLUSTER_COMMON, base_seed=BASE_SEED, processes=1
    )
    return _csv_bytes(store, tmp / "cluster.csv")


def _backpressure_sweep_bytes(tmp) -> bytes:
    store = backpressure_sweep(
        axes=BACKPRESSURE_AXES, common=BACKPRESSURE_COMMON, base_seed=BASE_SEED, processes=1
    )
    return _csv_bytes(store, tmp / "backpressure.csv")


def _retry_sweep_bytes(tmp) -> bytes:
    store = retry_amplification_sweep(
        axes=RETRY_AXES, common=RETRY_COMMON, base_seed=BASE_SEED, processes=1
    )
    return _csv_bytes(store, tmp / "retry.csv")


def _fingerprint_scenario(feedback: str, retry, obs=None) -> ClusterSimulator:
    """A small saturated co-simulation: one host, short keep-alive, retries live."""
    preset = get_platform_preset("aws_lambda_like")
    preset = dataclasses.replace(
        preset,
        keep_alive=dataclasses.replace(
            preset.keep_alive, min_keep_alive_s=1.0, max_keep_alive_s=1.0
        ),
    )
    deployments = []
    for index in range(2):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=4.0, duration_s=5.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=2.0, memory_gb=4.0),
            max_hosts=1,
            queue_depth=2,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=FINGERPRINT_SEED,
        feedback=feedback,
        retry=retry,
        obs=obs,
    )


def _fingerprint(result) -> str:
    payload = json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "unplaceable": result.fleet.unplaceable,
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _current_fingerprints() -> dict:
    return {
        "feedback_off": _fingerprint(_fingerprint_scenario("off", None).run()),
        "feedback_on_retry_on": _fingerprint(
            _fingerprint_scenario("on", RETRY_POLICY).run()
        ),
    }


def _require(path: pathlib.Path) -> pathlib.Path:
    assert path.exists(), (
        f"missing baseline {path}; regenerate (only after an intentional "
        "pre-tenancy behaviour change) with "
        "'PYTHONPATH=src python tests/test_tenancy_compat.py'"
    )
    return path


class TestSweepCsvByteCompat:
    def test_cluster_sweep_csv_byte_identical(self, tmp_path):
        golden = _require(GOLDEN_DIR / "baseline_cluster.csv").read_bytes()
        assert _cluster_sweep_bytes(tmp_path) == golden

    def test_backpressure_sweep_csv_byte_identical(self, tmp_path):
        golden = _require(GOLDEN_DIR / "baseline_backpressure.csv").read_bytes()
        assert _backpressure_sweep_bytes(tmp_path) == golden

    def test_retry_sweep_csv_byte_identical(self, tmp_path):
        golden = _require(GOLDEN_DIR / "baseline_retry.csv").read_bytes()
        assert _retry_sweep_bytes(tmp_path) == golden


class TestReplayFingerprints:
    def test_cluster_fingerprints_match_baseline(self):
        golden = json.loads(_require(GOLDEN_DIR / "baseline_fingerprints.json").read_text())
        assert _current_fingerprints() == golden

    def test_obs_attached_run_matches_the_same_fingerprint(self, tmp_path):
        """Observability only reads the bus: same fingerprint as the bare run."""
        golden = json.loads(_require(GOLDEN_DIR / "baseline_fingerprints.json").read_text())
        obs = obs_from_params({"trace_out": str(tmp_path / "trace.json")})
        result = _fingerprint_scenario("on", RETRY_POLICY, obs=obs).run()
        assert _fingerprint(result) == golden["feedback_on_retry_on"]


def regenerate() -> None:
    import tempfile

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        (GOLDEN_DIR / "baseline_cluster.csv").write_bytes(_cluster_sweep_bytes(tmp))
        (GOLDEN_DIR / "baseline_backpressure.csv").write_bytes(_backpressure_sweep_bytes(tmp))
        (GOLDEN_DIR / "baseline_retry.csv").write_bytes(_retry_sweep_bytes(tmp))
    (GOLDEN_DIR / "baseline_fingerprints.json").write_text(
        json.dumps(_current_fingerprints(), indent=2, sort_keys=True) + "\n"
    )
    print(f"regenerated baselines under {GOLDEN_DIR}")


if __name__ == "__main__":
    regenerate()
