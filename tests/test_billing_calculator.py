"""Unit tests for the per-invocation billing calculator."""

import pytest

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName, get_billing_model
from repro.billing.units import ResourceKind
from repro.traces.schema import RequestRecord, ResourceUsage


def make_inputs(**overrides):
    defaults = dict(
        execution_s=0.1,
        init_s=0.0,
        alloc_vcpus=0.5,
        alloc_memory_gb=0.5,
        used_cpu_seconds=0.03,
        used_memory_gb=0.2,
    )
    defaults.update(overrides)
    return InvocationBillingInput(**defaults)


class TestAllocationMapping:
    def test_aws_proportional_mapping_takes_larger_memory(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        allocations = calculator.effective_allocations(make_inputs(alloc_vcpus=1.0, alloc_memory_gb=0.5))
        # 1 vCPU needs 1,769 MB on AWS, which exceeds the 0.5 GB trace allocation.
        assert allocations[ResourceKind.MEMORY] == pytest.approx(1769.0 / 1024.0)
        assert allocations[ResourceKind.CPU] == pytest.approx(1.0)

    def test_aws_mapping_keeps_memory_when_larger(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        allocations = calculator.effective_allocations(make_inputs(alloc_vcpus=0.1, alloc_memory_gb=1.0))
        assert allocations[ResourceKind.MEMORY] == pytest.approx(1.0)

    def test_non_aws_platform_keeps_trace_allocation(self):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        allocations = calculator.effective_allocations(make_inputs())
        assert allocations[ResourceKind.CPU] == pytest.approx(0.5)
        assert allocations[ResourceKind.MEMORY] == pytest.approx(0.5)


class TestBillableResources:
    def test_gcp_time_rounding_inflates_both_resources(self):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        billable = calculator.billable_resources(make_inputs(execution_s=0.010))
        # 10 ms rounds to 100 ms on GCP.
        assert billable[ResourceKind.CPU] == pytest.approx(0.5 * 0.1)
        assert billable[ResourceKind.MEMORY] == pytest.approx(0.5 * 0.1, rel=1e-3)

    def test_cloudflare_bills_only_consumed_cpu(self):
        calculator = BillingCalculator(PlatformName.CLOUDFLARE_WORKERS)
        billable = calculator.billable_resources(make_inputs(used_cpu_seconds=0.03))
        assert billable[ResourceKind.CPU] == pytest.approx(0.03)
        assert billable.get(ResourceKind.MEMORY, 0.0) == 0.0

    def test_azure_bills_consumed_memory_with_minimum(self):
        calculator = BillingCalculator(PlatformName.AZURE_CONSUMPTION)
        billable = calculator.billable_resources(make_inputs(execution_s=0.010, used_memory_gb=0.2))
        # 0.2 GB -> 0.25 GB (128 MB steps), 10 ms -> 100 ms minimum cutoff.
        assert billable[ResourceKind.MEMORY] == pytest.approx(0.25 * 0.1)

    def test_aws_embedded_cpu_reported(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        billable = calculator.billable_resources(make_inputs(alloc_vcpus=1.0, execution_s=1.0))
        assert billable[ResourceKind.CPU] == pytest.approx(1.0, rel=1e-3)

    def test_turnaround_billing_includes_init(self):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        warm = calculator.billable_resources(make_inputs(execution_s=0.1, init_s=0.0))
        cold = calculator.billable_resources(make_inputs(execution_s=0.1, init_s=1.0))
        assert cold[ResourceKind.CPU] > warm[ResourceKind.CPU]


class TestBilledInvocation:
    def test_inflation_ratios(self):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        billed = calculator.bill(make_inputs(execution_s=0.05, used_cpu_seconds=0.01))
        assert billed.cpu_inflation > 1.0
        assert billed.memory_inflation > 1.0

    def test_zero_usage_inflation_is_infinite(self):
        calculator = BillingCalculator(PlatformName.GCP_RUN_REQUEST)
        billed = calculator.bill(make_inputs(used_cpu_seconds=0.0))
        assert billed.cpu_inflation == float("inf")

    def test_invoice_total_positive(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        billed = calculator.bill(make_inputs())
        assert billed.invoice.total > 0

    def test_bill_request_record(self, small_trace):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        record = small_trace.requests[0]
        billed = calculator.bill_request(record)
        assert billed.actual_cpu_seconds == pytest.approx(record.usage.cpu_seconds)

    def test_instance_billing_excludes_fee_by_default_flag(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        with_fee = calculator.bill(make_inputs())
        without_fee = calculator.bill(make_inputs(), include_invocation_fee=False)
        assert with_fee.invoice.total - without_fee.invoice.total == pytest.approx(2e-7)

    def test_custom_model_accepted(self):
        model = get_billing_model(PlatformName.HUAWEI_FUNCTIONGRAPH)
        calculator = BillingCalculator(model)
        assert calculator.model.platform == "huawei_functiongraph"


class TestInvocationFeeEquivalence:
    def test_aws_128mb_equivalent_96ms(self):
        """Paper §2.5: the $2e-7 fee equals ~96 ms of billable time at 128 MB."""
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        equivalent = calculator.invocation_fee_equivalent_ms(0.072, 0.125)
        assert equivalent == pytest.approx(96.0, rel=0.02)

    def test_no_fee_platform_returns_zero(self):
        calculator = BillingCalculator(PlatformName.IBM_CODE_ENGINE)
        assert calculator.invocation_fee_equivalent_ms(0.5, 1.0) == 0.0

    def test_fee_equivalent_decreases_with_allocation(self):
        calculator = BillingCalculator(PlatformName.AWS_LAMBDA)
        small = calculator.invocation_fee_equivalent_ms(0.125, 0.25)
        large = calculator.invocation_fee_equivalent_ms(1.0, 1.769)
        assert small > large


class TestFromRequest:
    def test_round_trip_fields(self):
        record = RequestRecord(
            request_id="r",
            function_id="f",
            pod_id="p",
            arrival_s=0.0,
            duration_s=0.2,
            usage=ResourceUsage(0.1, 0.3),
            alloc_vcpus=1.0,
            alloc_memory_gb=1.0,
            cold_start=True,
            init_duration_s=0.7,
        )
        inputs = InvocationBillingInput.from_request(record)
        assert inputs.execution_s == pytest.approx(0.2)
        assert inputs.init_s == pytest.approx(0.7)
        assert inputs.used_memory_gb == pytest.approx(0.3)
