"""Tests for admission backpressure, multi-zone heterogeneity, and COST_FIT placement."""

import pytest

from repro.cluster.fleet import Fleet, FleetConfig, ZoneConfig
from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import PlacementPolicy, SandboxRequirement, choose_host
from repro.sim.events import (
    EventBus,
    SandboxAdmitted,
    SandboxColdStart,
    SandboxQueued,
    SandboxRejected,
    SandboxTerminated,
    SimEvent,
)


def _recording_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(SimEvent, seen.append)
    return bus, seen


class TestAdmissionQueue:
    def test_zero_capacity_fleet_queues_then_rejects_at_bound(self):
        """Acceptance criterion: a zero-capacity fleet queues rather than drops."""
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16), max_hosts=0, queue_depth=2))
        bus, seen = _recording_bus()
        fleet.attach(bus)
        for index in range(4):
            assert fleet.admit(float(index), f"sb-{index}", 1.0, 2.0) is None
        # First two queue; the bounded queue then rejects the rest.
        assert fleet.queue_depth == 2
        assert [e.sandbox_name for e in seen if isinstance(e, SandboxQueued)] == ["sb-0", "sb-1"]
        rejected = [e for e in seen if isinstance(e, SandboxRejected)]
        assert [e.sandbox_name for e in rejected] == ["sb-2", "sb-3"]
        assert all(e.reason == "queue_full" for e in rejected)
        assert fleet.queued_total == 2 and len(fleet.unplaceable) == 2
        assert fleet.hosts == []

    def test_queue_disabled_keeps_pr2_drop_semantics(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16), max_hosts=0))
        bus, seen = _recording_bus()
        fleet.attach(bus)
        assert fleet.admit(0.0, "sb-0", 1.0, 1.0) is None
        assert fleet.queue_depth == 0
        assert fleet.unplaceable == [(0.0, "sb-0")]
        assert [e.reason for e in seen if isinstance(e, SandboxRejected)] == ["no_capacity"]

    def test_oversized_rejected_immediately_even_with_queue(self):
        """Waiting cannot help a sandbox larger than every zone's host shape."""
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), queue_depth=10))
        bus, seen = _recording_bus()
        fleet.attach(bus)
        assert fleet.admit(1.0, "big", 4.0, 4.0) is None
        assert fleet.queue_depth == 0
        assert [e.reason for e in seen if isinstance(e, SandboxRejected)] == ["oversized"]

    def test_fifo_drain_ordering_on_mass_eviction(self):
        """Satellite: queue drains in enqueue order when capacity is released en masse."""
        fleet = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), max_hosts=1, queue_depth=10)
        )
        bus, seen = _recording_bus()
        fleet.attach(bus)
        # Fill the single host, then queue three more.
        fleet.admit(0.0, "a", 1.0, 4.0)
        fleet.admit(0.0, "b", 1.0, 4.0)
        for index, name in enumerate(("q0", "q1", "q2")):
            fleet.admit(1.0 + index, name, 1.0, 4.0)
        assert fleet.queue_depth == 3
        # Mass eviction: both placed sandboxes terminate at t=10.
        fleet.release(10.0, "a")
        fleet.release(10.0, "b")
        admitted = [e for e in seen if isinstance(e, SandboxAdmitted) and e.queue_wait_s > 0]
        assert [e.sandbox_name for e in admitted] == ["q0", "q1"]
        assert [e.queue_wait_s for e in admitted] == [9.0, 8.0]
        assert fleet.queue_depth == 1 and fleet.queue[0].sandbox_name == "q2"
        assert fleet.admitted_from_queue == 2
        assert fleet.summary()["mean_queue_wait_s"] == pytest.approx(8.5)

    def test_smallest_first_discipline_admits_small_before_old(self):
        fleet = Fleet(
            FleetConfig(
                host_spec=HostSpec(vcpus=2, memory_gb=8),
                max_hosts=1,
                queue_depth=10,
                queue_discipline="smallest_first",
            )
        )
        fleet.admit(0.0, "filler", 2.0, 8.0)
        fleet.admit(1.0, "large", 2.0, 8.0)  # queued first, but big
        fleet.admit(2.0, "small", 0.5, 1.0)  # queued second, small
        fleet.release(5.0, "filler")
        # smallest_first admits the small latecomer ahead of the older large
        # entry; the large one keeps waiting for the capacity small now holds.
        assert fleet.host_of("small") is not None
        assert fleet.host_of("large") is None
        assert [entry.sandbox_name for entry in fleet.queue] == ["large"]
        assert fleet.admitted_from_queue == 1
        # Under FIFO the same sequence admits the older large entry instead.
        fifo = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), max_hosts=1, queue_depth=10)
        )
        fifo.admit(0.0, "filler", 2.0, 8.0)
        fifo.admit(1.0, "large", 2.0, 8.0)
        fifo.admit(2.0, "small", 0.5, 1.0)
        fifo.release(5.0, "filler")
        assert fifo.host_of("large") is not None
        assert fifo.host_of("small") is None

    def test_fifo_skips_blocked_head_without_losing_it(self):
        """No head-of-line blocking: a later, smaller entry may pass a larger one."""
        fleet = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), max_hosts=1, queue_depth=10)
        )
        fleet.admit(0.0, "filler-1", 1.0, 4.0)
        fleet.admit(0.0, "filler-2", 1.0, 4.0)
        fleet.admit(1.0, "large", 2.0, 8.0)  # head of the queue, needs a whole host
        fleet.admit(2.0, "small", 1.0, 4.0)
        fleet.release(5.0, "filler-1")
        # The freed half-host cannot take the queue head, but the smaller
        # entry behind it is admitted; the head stays queued, not dropped.
        assert fleet.host_of("large") is None
        assert fleet.host_of("small") is not None
        assert [entry.sandbox_name for entry in fleet.queue] == ["large"]

    def test_sandbox_terminated_while_queued_is_removed(self):
        fleet = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), max_hosts=0, queue_depth=5)
        )
        fleet.admit(0.0, "sb-0", 1.0, 1.0)
        assert fleet.queue_depth == 1
        fleet.release(3.0, "sb-0")  # evicted before it was ever placed
        assert fleet.queue_depth == 0
        assert fleet.queue_abandoned == 1
        assert fleet.released == 0  # never held capacity

    def test_bus_driven_backpressure_loop(self):
        """Cold start -> queued -> eviction -> admitted, all through bus events."""
        fleet = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=1, memory_gb=2), max_hosts=1, queue_depth=4)
        )
        bus, seen = _recording_bus()
        fleet.attach(bus)
        bus.publish(SandboxColdStart(0.0, "sb-a", "f", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        bus.publish(SandboxColdStart(1.0, "sb-b", "f", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        assert fleet.num_placed == 1 and fleet.queue_depth == 1
        bus.publish(SandboxTerminated(7.5, "sb-a"))
        assert fleet.host_of("sb-b") is not None
        waited = [e for e in seen if isinstance(e, SandboxAdmitted) and e.sandbox_name == "sb-b"]
        assert waited and waited[-1].queue_wait_s == pytest.approx(6.5)

    def test_invalid_queue_config(self):
        with pytest.raises(ValueError):
            FleetConfig(queue_depth=-1)
        with pytest.raises(ValueError):
            FleetConfig(queue_discipline="lifo")


class TestCostFit:
    def _fleet(self, **kwargs):
        economy = HostSpec(vcpus=4, memory_gb=16, hourly_cost_usd=0.2, price_class="economy")
        premium = HostSpec(vcpus=8, memory_gb=32, hourly_cost_usd=1.0, price_class="premium")
        return Fleet(
            FleetConfig(
                zones=(
                    ZoneConfig(name="economy", host_spec=economy, max_hosts=2),
                    ZoneConfig(name="premium", host_spec=premium, max_hosts=2),
                ),
                policy=PlacementPolicy.COST_FIT,
                **kwargs,
            )
        )

    def test_cost_fit_prefers_cheapest_feasible_host(self):
        fleet = self._fleet()
        host = fleet.admit(0.0, "sb-0", 1.0, 2.0)
        assert host is not None and host.zone == "economy"
        assert host.name == "economy/host-00000"

    def test_cost_fit_opens_premium_only_when_economy_exhausted(self):
        fleet = self._fleet()
        for index in range(2):
            fleet.admit(0.0, f"big-{index}", 4.0, 16.0)  # fills one economy host each
        host = fleet.admit(1.0, "next", 4.0, 16.0)
        assert host is not None and host.zone == "premium"
        assert fleet.summary()["fleet_hourly_cost_usd"] == pytest.approx(0.2 + 0.2 + 1.0)

    def test_cost_fit_tie_breaking_deterministic_on_equal_price_hosts(self):
        """Satellite: equal-price candidates resolve best-fit, then by open order."""
        spec = HostSpec(vcpus=8, memory_gb=32, hourly_cost_usd=0.5)
        hosts = [Host(spec=spec, name=f"h{i}") for i in range(3)]
        hosts[1].place("pre", 4.0, 16.0)  # fuller -> smaller leftover -> best fit
        requirement = SandboxRequirement("sb", 1.0, 4.0)
        for _ in range(3):
            chosen = choose_host(hosts, requirement, PlacementPolicy.COST_FIT)
            assert chosen is hosts[1]
        # Fully equal candidates: the first-opened host wins, every time.
        even_hosts = [Host(spec=spec, name=f"e{i}") for i in range(3)]
        for _ in range(3):
            assert choose_host(even_hosts, requirement, PlacementPolicy.COST_FIT) is even_hosts[0]

    def test_cost_fit_zone_open_prefers_cheaper_spec_over_declaration_order(self):
        premium_first = Fleet(
            FleetConfig(
                zones=(
                    ZoneConfig(name="premium", host_spec=HostSpec(vcpus=8, memory_gb=32, hourly_cost_usd=1.0)),
                    ZoneConfig(name="economy", host_spec=HostSpec(vcpus=4, memory_gb=16, hourly_cost_usd=0.2)),
                ),
                policy=PlacementPolicy.COST_FIT,
            )
        )
        host = premium_first.admit(0.0, "sb", 1.0, 2.0)
        assert host is not None and host.zone == "economy"

    def test_non_cost_policies_open_in_declaration_order(self):
        fleet = Fleet(
            FleetConfig(
                zones=(
                    ZoneConfig(name="premium", host_spec=HostSpec(vcpus=8, memory_gb=32, hourly_cost_usd=1.0)),
                    ZoneConfig(name="economy", host_spec=HostSpec(vcpus=4, memory_gb=16, hourly_cost_usd=0.2)),
                ),
                policy=PlacementPolicy.BEST_FIT,
            )
        )
        host = fleet.admit(0.0, "sb", 1.0, 2.0)
        assert host is not None and host.zone == "premium"


class TestZonesAndCost:
    def test_zone_host_names_are_namespaced_and_deterministic(self):
        fleet = Fleet(
            FleetConfig(
                zones=(
                    ZoneConfig(name="a", host_spec=HostSpec(vcpus=1, memory_gb=2), max_hosts=2),
                    ZoneConfig(name="b", host_spec=HostSpec(vcpus=4, memory_gb=8), max_hosts=2),
                ),
                policy=PlacementPolicy.FIRST_FIT,
            )
        )
        for index in range(3):
            fleet.admit(0.0, f"sb-{index}", 1.0, 2.0)
        fleet.admit(0.0, "wide", 4.0, 8.0)
        assert [h.name for h in fleet.hosts] == [
            "a/host-00000",
            "a/host-00001",
            "b/host-00000",
            "b/host-00001",
        ]

    def test_single_zone_keeps_bare_host_names(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8)))
        fleet.admit(0.0, "sb-0", 2.0, 4.0)
        assert fleet.hosts[0].name == "host-00000" and fleet.hosts[0].zone == ""

    def test_duplicate_zone_names_rejected(self):
        zone = ZoneConfig(name="z", host_spec=HostSpec(vcpus=1, memory_gb=2))
        with pytest.raises(ValueError):
            FleetConfig(zones=(zone, zone))
        with pytest.raises(ValueError):
            FleetConfig(zones=())

    def test_default_spec_price_derived_from_capacity(self):
        spec = HostSpec(vcpus=2, memory_gb=8)
        assert spec.hourly_cost_usd == pytest.approx(2 * 0.024 + 8 * 0.006)
        priced = HostSpec(vcpus=2, memory_gb=8, hourly_cost_usd=0.42)
        assert priced.hourly_cost_usd == 0.42

    def test_summary_provider_cost_without_sampling(self):
        """With sampling disabled, summary() still accrues cost to the last event."""
        fleet = Fleet(
            FleetConfig(
                host_spec=HostSpec(vcpus=2, memory_gb=8, hourly_cost_usd=3.6),
                sample_interval_s=None,
            )
        )
        fleet.admit(0.0, "sb-0", 1.0, 1.0)
        fleet.release(1000.0, "sb-0")
        summary = fleet.summary()
        assert summary["provider_cost_usd"] == pytest.approx(1.0)
        assert summary["fleet_hourly_cost_usd"] == pytest.approx(3.6)

    def test_summary_splits_rejections_by_reason(self):
        fleet = Fleet(
            FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8), max_hosts=0, queue_depth=1)
        )
        fleet.admit(0.0, "oversized", 4.0, 4.0)
        fleet.admit(1.0, "queued", 1.0, 1.0)
        fleet.admit(2.0, "overflow", 1.0, 1.0)
        summary = fleet.summary()
        assert summary["rejected_oversized"] == 1.0
        assert summary["rejected_queue_full"] == 1.0
        assert summary["rejected_no_capacity"] == 0.0
        assert summary["unplaceable"] == 2.0

    def test_provider_cost_integrates_open_time(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8, hourly_cost_usd=3.6)))
        fleet.admit(0.0, "sb-0", 1.0, 1.0)
        # One host at $3.6/h open for 1000 s = $1.
        assert fleet.provider_cost_usd(1000.0) == pytest.approx(1.0)
        sample = fleet.sample(1000.0)
        assert sample["fleet_hourly_cost_usd"] == pytest.approx(3.6)
        assert sample["provider_cost_usd"] == pytest.approx(1.0)
        assert sample["queue_depth"] == 0.0
