"""Unit tests for cgroup CPU bandwidth control accounting."""

import pytest

from repro.sched.cgroup import BandwidthConfig, BandwidthController


class TestBandwidthConfig:
    def test_enabled_with_positive_quota(self):
        config = BandwidthConfig(period_s=0.02, quota_s=0.01)
        assert config.enabled
        assert config.cpu_fraction == pytest.approx(0.5)

    def test_disabled_with_zero_quota(self):
        config = BandwidthConfig(period_s=0.02, quota_s=0.0)
        assert not config.enabled
        assert config.cpu_fraction == float("inf")

    def test_for_vcpu_fraction(self):
        config = BandwidthConfig.for_vcpu_fraction(0.072, period_s=0.02)
        assert config.quota_s == pytest.approx(0.00144)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            BandwidthConfig(period_s=0.0, quota_s=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            BandwidthConfig.for_vcpu_fraction(0.0, period_s=0.02)


class TestBandwidthController:
    def test_account_within_quota_not_throttled(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.01))
        assert not controller.account(0, 0.004, now_s=0.004)

    def test_account_beyond_quota_throttles(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.005))
        # First accounting acquires a slice; repeated consumption exhausts it.
        throttled = controller.account(0, 0.004, now_s=0.004)
        assert not throttled
        throttled = controller.account(0, 0.004, now_s=0.008)
        assert throttled
        assert controller.is_throttled(0)

    def test_disabled_controller_never_throttles(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.0))
        assert not controller.account(0, 100.0, now_s=1.0)

    def test_refill_resets_global_pool_and_unthrottles(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.01))
        controller.account(0, 0.015, now_s=0.015)
        assert controller.is_throttled(0)
        unthrottled = controller.refill(now_s=0.02)
        assert unthrottled == [0]
        assert not controller.is_throttled(0)

    def test_refill_keeps_deeply_indebted_cpu_throttled(self):
        """A debt larger than one period's quota takes several refills to repay (overrun payback)."""
        config = BandwidthConfig(period_s=0.02, quota_s=0.00145)
        controller = BandwidthController(config)
        controller.account(0, 0.004, now_s=0.004)  # 4 ms consumed vs 1.45 ms quota
        assert controller.is_throttled(0)
        assert controller.refill(now_s=0.02) == []  # still owes debt
        assert controller.refill(now_s=0.04) == [0]  # debt repaid in the second period

    def test_slice_acquisition_bounded_by_global_pool(self):
        config = BandwidthConfig(period_s=0.1, quota_s=0.004, slice_s=0.005)
        controller = BandwidthController(config)
        controller.account(0, 0.001, now_s=0.001)
        # Only the 4 ms quota was available despite the 5 ms slice.
        assert controller.global_runtime_s == pytest.approx(0.0)

    def test_multi_cpu_pools_independent(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.01), num_cpus=2)
        assert not controller.account(0, 0.004, now_s=0.004)
        assert not controller.account(1, 0.004, now_s=0.004)
        assert controller.account(0, 0.01, now_s=0.008)
        assert not controller.is_throttled(1)

    def test_stats_counts(self):
        controller = BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.005))
        controller.account(0, 0.01, now_s=0.01)
        controller.refill(now_s=0.02)
        controller.refill(now_s=0.04)
        stats = controller.stats()
        assert stats["nr_periods"] == 2
        assert stats["nr_throttled"] >= 1
        assert stats["throttled_time_s"] > 0

    def test_invalid_num_cpus(self):
        with pytest.raises(ValueError):
            BandwidthController(BandwidthConfig(period_s=0.02, quota_s=0.01), num_cpus=0)
