"""Batched arrival generation + streaming: the perf PR's determinism gate.

The kernel hot-path optimisation is only allowed to exist because none of it
moves an event.  This suite pins that contract:

- the vectorized :class:`~repro.sim.arrivals.PoissonSource` /
  :class:`~repro.sim.arrivals.ConstantRateSource` reproduce the scalar
  reference loops **bit for bit**, for any chunk size;
- streaming a source into a kernel chunk-by-chunk dispatches the *identical*
  event sequence as scheduling every arrival eagerly -- including when
  handlers inject new events mid-run (the retry re-injection shape);
- a full cluster co-simulation (feedback + billing + client retries) is
  fingerprint-identical between eager scheduling and streamed arrivals at
  any chunk size, while the streamed heap stays bounded;
- the kernel's seq-reservation API preserves tie-break ranks and rejects
  past times;
- the EventBus dispatch cache (per-type resolved subscriber chains) stays
  coherent across subscribe/unsubscribe and behaves identically with the
  profiler attached;
- the cost meter's compiled fast path produces float-identical totals to
  the generic metering path.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billing.catalog import PlatformName
from repro.billing.meter import CostMeter, RequestResources
from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.obs.profile import KernelProfiler
from repro.platform.metrics import RequestOutcome
from repro.platform.presets import get_platform_preset
from repro.sim.arrivals import (
    DEFAULT_CHUNK_SIZE,
    ArrivalStream,
    ConstantRateSource,
    PoissonSource,
)
from repro.sim.events import EventBus, RequestCompleted, SimEvent
from repro.sim.kernel import SimulationKernel
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION
from repro.workloads.traffic import constant_rate_arrivals, poisson_arrivals

CHUNK_SIZES = st.sampled_from([1, 2, 7, 64, 1000, DEFAULT_CHUNK_SIZE])


def _scalar_poisson(rps, duration_s, seed, start_s=0.0):
    """The pre-vectorization implementation: one RNG draw per arrival."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / rps
    out = []
    t = start_s
    end = start_s + duration_s
    while True:
        t = t + rng.exponential(scale)
        if t >= end:
            break
        out.append(t)
    return out


# ----------------------------------------------------------------------
# Source-level equivalence
# ----------------------------------------------------------------------


class TestSourceEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        rps=st.floats(min_value=0.5, max_value=50.0),
        duration_s=st.floats(min_value=0.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
    )
    def test_poisson_source_bit_identical_to_scalar_loop(self, rps, duration_s, seed):
        source = PoissonSource(rps, duration_s, seed=seed)
        assert source.times() == _scalar_poisson(rps, duration_s, seed)

    @settings(max_examples=25, deadline=None)
    @given(
        rps=st.floats(min_value=0.5, max_value=50.0),
        duration_s=st.floats(min_value=0.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        chunk_size=CHUNK_SIZES,
    )
    def test_poisson_chunk_size_never_moves_an_arrival(self, rps, duration_s, seed, chunk_size):
        reference = PoissonSource(rps, duration_s, seed=seed).times()
        chunked = []
        for chunk in PoissonSource(rps, duration_s, seed=seed).chunks(chunk_size):
            assert 0 < len(chunk) <= chunk_size
            chunked.extend(chunk)
        assert chunked == reference

    @settings(max_examples=15, deadline=None)
    @given(
        rps=st.floats(min_value=0.5, max_value=50.0),
        duration_s=st.floats(min_value=0.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
    )
    def test_poisson_count_and_last_match_times(self, rps, duration_s, seed):
        source = PoissonSource(rps, duration_s, seed=seed)
        times = source.times()
        assert source.count() == len(times)
        assert source.last_arrival_s() == (times[-1] if times else 0.0)

    @settings(max_examples=15, deadline=None)
    @given(
        rps=st.floats(min_value=0.5, max_value=200.0),
        duration_s=st.floats(min_value=0.0, max_value=60.0),
        chunk_size=CHUNK_SIZES,
    )
    def test_constant_source_matches_listcomp_reference(self, rps, duration_s, chunk_size):
        source = ConstantRateSource(rps, duration_s)
        reference = constant_rate_arrivals(rps, duration_s)
        assert source.times() == reference
        chunked = [t for chunk in source.chunks(chunk_size) for t in chunk]
        assert chunked == reference
        assert source.count() == len(reference)

    def test_traffic_module_delegates_to_source(self):
        assert poisson_arrivals(8.0, 20.0, seed=7) == PoissonSource(8.0, 20.0, seed=7).times()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            next(PoissonSource(1.0, 1.0).chunks(0))
        with pytest.raises(ValueError):
            next(ConstantRateSource(1.0, 1.0).chunks(-1))


# ----------------------------------------------------------------------
# Kernel seq reservation
# ----------------------------------------------------------------------


class TestSeqReservation:
    def test_reserved_block_is_contiguous_and_orders_before_later_events(self):
        kernel = SimulationKernel()
        base = kernel.reserve_seqs(3)
        fired = []
        kernel.on("a", lambda e: fired.append(("a", e.seq)))
        kernel.on("b", lambda e: fired.append(("b", e.seq)))
        # Schedule a same-time event *after* the reservation, then fill the
        # reserved ranks in reverse: the reserved events still win the tie.
        kernel.schedule(1.0, "b")
        kernel.schedule_at_seq(1.0, base + 2, "a")
        kernel.schedule_at_seq(1.0, base + 1, "a")
        kernel.schedule_at_seq(1.0, base + 0, "a")
        kernel.run()
        assert fired == [("a", base), ("a", base + 1), ("a", base + 2), ("b", base + 3)]

    def test_past_time_rejected(self):
        kernel = SimulationKernel()
        base = kernel.reserve_seqs(2)
        kernel.on("tick", lambda e: None)
        kernel.schedule(1.0, "tick")
        kernel.run()
        assert kernel.now == 1.0
        with pytest.raises(ValueError):
            kernel.schedule_at_seq(0.5, base, "tick")

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            SimulationKernel().reserve_seqs(-1)

    def test_payloadless_events_share_the_empty_mapping(self):
        kernel = SimulationKernel()
        first = kernel.schedule(1.0, "tick")
        second = kernel.schedule_in(2.0, "tick")
        assert first.data == {} and second.data == {}
        assert first.data is second.data  # the documented shared payload


# ----------------------------------------------------------------------
# Stream-level identity on a bare kernel
# ----------------------------------------------------------------------


def _trace_run(kernel, arrival_handler_extra=None):
    """Run a kernel, tracing every dispatched (kind, time, seq)."""
    trace = []

    def on_arrival(event):
        trace.append(("arrival", event.time, event.seq))
        stream = event.data.get("stream")
        if stream is not None:
            stream.push_next_chunk()
        if arrival_handler_extra is not None:
            arrival_handler_extra(kernel, len(trace))

    kernel.on("arrival", on_arrival)
    kernel.on("injected", lambda e: trace.append(("injected", e.time, e.seq)))
    kernel.run()
    return trace


class TestArrivalStreamIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        rps=st.floats(min_value=1.0, max_value=40.0),
        duration_s=st.floats(min_value=0.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        chunk_size=CHUNK_SIZES,
    )
    def test_streamed_dispatch_identical_to_eager(self, rps, duration_s, seed, chunk_size):
        # Handlers inject extra events mid-run (every third arrival), the
        # shape retry re-injection takes: their seqs interleave with the
        # reserved block in both variants.
        def inject(kernel, count):
            if count % 3 == 0:
                kernel.schedule_in(0.25, "injected")

        eager_kernel = SimulationKernel()
        for t in PoissonSource(rps, duration_s, seed=seed).times():
            eager_kernel.schedule(t, "arrival")
        eager = _trace_run(eager_kernel, inject)

        streamed_kernel = SimulationKernel()
        stream = ArrivalStream(PoissonSource(rps, duration_s, seed=seed), chunk_size=chunk_size)
        stream.attach(streamed_kernel, "arrival")
        streamed = _trace_run(streamed_kernel, inject)

        assert streamed == eager

    def test_streamed_heap_stays_bounded(self):
        chunk_size = 32
        kernel = SimulationKernel()
        profiler = KernelProfiler()
        profiler.install(kernel)
        source = ConstantRateSource(100.0, 20.0)  # 2000 arrivals
        stream = ArrivalStream(source, chunk_size=chunk_size)
        count = stream.attach(kernel, "arrival")
        assert count == 2000
        fired = []

        def on_arrival(event):
            fired.append(event.time)
            s = event.data.get("stream")
            if s is not None:
                s.push_next_chunk()

        kernel.on("arrival", on_arrival)
        kernel.run()
        assert len(fired) == 2000
        assert stream.pending == 0
        # Eager scheduling would have held all 2000 arrivals at once; the
        # stream never exceeds one in-flight chunk plus the refill.
        assert profiler.max_heap_depth <= 2 * chunk_size

    def test_double_attach_rejected(self):
        stream = ArrivalStream(ConstantRateSource(1.0, 2.0))
        stream.attach(SimulationKernel(), "arrival")
        with pytest.raises(RuntimeError):
            stream.attach(SimulationKernel(), "arrival")


# ----------------------------------------------------------------------
# Cluster-level identity: streamed == eager, retries included
# ----------------------------------------------------------------------


class _EagerCluster(ClusterSimulator):
    """Schedules every arrival up front (the pre-streaming behaviour)."""

    def _arrivals(self, deployment):
        return super()._arrivals(deployment).times()


def _chunked_cluster_class(chunk_size):
    class _ChunkedCluster(ClusterSimulator):
        def _arrivals(self, deployment):
            return ArrivalStream(super()._arrivals(deployment), chunk_size=chunk_size)

    return _ChunkedCluster


def _cluster(cls, seed):
    preset = get_platform_preset("aws_lambda_like")
    deployments = []
    for index in range(2):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(
                function=function,
                platform=preset,
                rps=8.0,
                duration_s=5.0,
                arrival_process="poisson",
            )
        )
    return cls(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=1.0, memory_gb=2.0),
            max_hosts=1,
            queue_depth=0,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
        feedback="on",
        retry=RetryPolicy(max_attempts=3, base_backoff_s=0.3, jitter=0.1),
    )


def _fingerprint(result):
    return json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "unplaceable": result.fleet.unplaceable,
            "invoice_by_attempt": (
                sorted(result.meter.cost_usd_by_attempt.items())
                if result.meter is not None
                else None
            ),
        },
        sort_keys=True,
    ).encode()


class TestClusterStreamingIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        chunk_size=st.sampled_from([1, 7, 64, DEFAULT_CHUNK_SIZE]),
    )
    def test_streamed_cluster_fingerprint_identical_to_eager(self, seed, chunk_size):
        eager = _fingerprint(_cluster(_EagerCluster, seed).run())
        chunked = _fingerprint(_cluster(_chunked_cluster_class(chunk_size), seed).run())
        assert chunked == eager

    def test_retries_actually_exercised(self):
        # The identity above is only meaningful if the workload produces
        # retry re-injections that interleave with the reserved seq block.
        result = _cluster(ClusterSimulator, seed=3).run()
        assert sum(m.retry_arrivals for m in result.metrics.values()) > 0


# ----------------------------------------------------------------------
# EventBus dispatch cache
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _CacheEvent(SimEvent):
    value: int = 0


class TestBusDispatchCache:
    def test_subscribe_after_publish_invalidates_cache(self):
        bus = EventBus()
        seen = {"first": 0, "second": 0}
        bus.subscribe(_CacheEvent, lambda e: seen.__setitem__("first", seen["first"] + 1))
        bus.publish(_CacheEvent(time_s=0.0))  # warms the resolved chain
        bus.subscribe(_CacheEvent, lambda e: seen.__setitem__("second", seen["second"] + 1))
        bus.publish(_CacheEvent(time_s=1.0))
        assert seen == {"first": 2, "second": 1}

    def test_unsubscribe_after_publish_invalidates_cache(self):
        bus = EventBus()
        seen = {"count": 0}
        callback = bus.subscribe(_CacheEvent, lambda e: seen.__setitem__("count", seen["count"] + 1))
        bus.publish(_CacheEvent(time_s=0.0))
        bus.unsubscribe(_CacheEvent, callback)
        bus.publish(_CacheEvent(time_s=1.0))
        assert seen["count"] == 1

    def test_base_type_subscriber_added_late_is_picked_up(self):
        bus = EventBus()
        order = []
        bus.subscribe(_CacheEvent, lambda e: order.append("exact"))
        bus.publish(_CacheEvent(time_s=0.0))
        bus.subscribe(SimEvent, lambda e: order.append("base"))
        bus.publish(_CacheEvent(time_s=1.0))
        # Exact subscribers still run before base subscribers after the
        # cache rebuild.
        assert order == ["exact", "exact", "base"]

    def test_profiled_publish_delivers_identically_and_tallies(self):
        plain_bus, profiled_bus = EventBus(), EventBus()
        profiler = KernelProfiler()
        profiled_bus.set_profiler(profiler)
        plain_seen, profiled_seen = [], []
        for bus, seen in ((plain_bus, plain_seen), (profiled_bus, profiled_seen)):
            bus.subscribe(_CacheEvent, lambda e, s=seen: s.append(("exact", e.value)))
            bus.subscribe(SimEvent, lambda e, s=seen: s.append(("base", e.value)))
        for index in range(10):
            plain_bus.publish(_CacheEvent(time_s=float(index), value=index))
            profiled_bus.publish(_CacheEvent(time_s=float(index), value=index))
        assert profiled_seen == plain_seen
        stats = profiler.snapshot().publishes["_CacheEvent"]
        assert stats["count"] == 10
        assert stats["fanout"] == 20  # two subscribers per publish


# ----------------------------------------------------------------------
# Cost meter: compiled fast path == generic metering, float for float
# ----------------------------------------------------------------------


class TestMeterFastPathIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        platform=st.sampled_from(
            [PlatformName.AWS_LAMBDA, PlatformName.GCP_RUN_REQUEST, PlatformName.AZURE_CONSUMPTION]
        ),
        durations=st.lists(
            st.floats(min_value=1e-4, max_value=30.0), min_size=1, max_size=20
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_fast_path_totals_equal_generic_path_exactly(self, platform, durations, seed):
        rng = np.random.default_rng(seed)
        resources = RequestResources(
            alloc_vcpus=1.0, alloc_memory_gb=2.0, used_cpu_seconds=0.16, used_memory_gb=0.09
        )
        outcomes = []
        t = 0.0
        for index, duration in enumerate(durations):
            cold = bool(rng.integers(0, 2))
            init_s = 0.5 if cold else 0.0
            outcomes.append(
                RequestOutcome(
                    request_id=f"req-{index:04d}",
                    arrival_s=t,
                    start_s=t + init_s,
                    completion_s=t + init_s + duration,
                    execution_duration_s=duration,
                    cold_start=cold,
                    init_duration_s=init_s,
                    queue_delay_s=0.0,
                    sandbox_name=f"fn-00-{index % 3}",
                    attempts=int(rng.integers(1, 4)),
                )
            )
            t += float(rng.uniform(0.0, 1.0))

        bus = EventBus()
        fast = CostMeter(platform).attach(bus, resources)
        for outcome in outcomes:
            bus.publish(RequestCompleted(time_s=outcome.completion_s, outcome=outcome))

        generic = CostMeter(platform)
        for outcome in outcomes:
            generic.meter_outcome(outcome, resources)

        assert fast.cost_usd == generic.cost_usd
        assert fast.billable_cpu_seconds == generic.billable_cpu_seconds
        assert fast.billable_memory_gb_seconds == generic.billable_memory_gb_seconds
        assert fast.actual_cpu_seconds == generic.actual_cpu_seconds
        assert fast.actual_memory_gb_seconds == generic.actual_memory_gb_seconds
        assert fast.invocation_fee_usd == generic.invocation_fee_usd
        assert fast.num_requests == generic.num_requests
        assert fast.num_cold_starts == generic.num_cold_starts
        assert sorted(fast.cost_usd_by_attempt.items()) == sorted(
            generic.cost_usd_by_attempt.items()
        )
