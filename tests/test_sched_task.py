"""Unit tests for simulated tasks and scheduling policies."""

import pytest

from repro.sched.policies import PolicyParameters, SchedulingPolicy, max_burst_s, pick_next
from repro.sched.task import PhaseKind, SimTask, TaskPhase, TaskState


class TestTaskPhase:
    def test_compute_phase(self):
        phase = TaskPhase.compute(0.1)
        assert phase.kind is PhaseKind.COMPUTE

    def test_io_phase(self):
        phase = TaskPhase.io(0.2)
        assert phase.kind is PhaseKind.IO

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TaskPhase.compute(-1.0)


class TestSimTask:
    def test_cpu_bound_constructor(self):
        task = SimTask.cpu_bound(0.1, name="t")
        assert task.total_cpu_demand_s == pytest.approx(0.1)
        assert task.state is TaskState.WAITING
        assert task.phase_remaining_s == pytest.approx(0.1)

    def test_io_bound_constructor(self):
        task = SimTask.io_bound(compute_burst_s=0.01, io_wait_s=0.05, num_bursts=3)
        assert len(task.phases) == 6
        assert task.total_cpu_demand_s == pytest.approx(0.03)

    def test_io_bound_requires_positive_bursts(self):
        with pytest.raises(ValueError):
            SimTask.io_bound(0.01, 0.05, 0)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            SimTask(phases=[])

    def test_advance_phase(self):
        task = SimTask.io_bound(0.01, 0.05, 1)
        task.advance_phase()
        assert task.current_phase.kind is PhaseKind.IO
        task.advance_phase()
        assert task.current_phase is None

    def test_unique_default_names(self):
        a = SimTask.cpu_bound(0.1)
        b = SimTask.cpu_bound(0.1)
        assert a.name != b.name

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            SimTask.cpu_bound(0.1, arrival_s=-1.0)


class TestPolicies:
    def test_cfs_picks_lowest_vruntime(self):
        a = SimTask.cpu_bound(1.0, name="a")
        b = SimTask.cpu_bound(1.0, name="b")
        a.vruntime = 0.5
        b.vruntime = 0.1
        assert pick_next([a, b], PolicyParameters(), now_s=0.0) is b

    def test_eevdf_prefers_earliest_deadline(self):
        params = PolicyParameters(policy=SchedulingPolicy.EEVDF)
        a = SimTask.cpu_bound(1.0, name="a")
        b = SimTask.cpu_bound(1.0, name="b")
        a.vruntime = 0.010
        b.vruntime = 0.000
        assert pick_next([a, b], params, now_s=0.0) is b

    def test_empty_runnable_returns_none(self):
        assert pick_next([], PolicyParameters(), now_s=0.0) is None

    def test_cfs_has_no_burst_limit(self):
        assert max_burst_s(PolicyParameters(policy=SchedulingPolicy.CFS)) is None

    def test_eevdf_burst_limited_by_slice(self):
        params = PolicyParameters(policy=SchedulingPolicy.EEVDF, eevdf_base_slice_s=0.003)
        assert max_burst_s(params) == pytest.approx(0.003)

    def test_invalid_slice_rejected(self):
        with pytest.raises(ValueError):
            PolicyParameters(eevdf_base_slice_s=0.0)

    def test_deterministic_tie_break_by_name(self):
        a = SimTask.cpu_bound(1.0, name="a")
        b = SimTask.cpu_bound(1.0, name="b")
        assert pick_next([b, a], PolicyParameters(), now_s=0.0) is a
