"""Unit tests for trace CSV / JSONL round-tripping."""

import pytest

from repro.traces.io import read_requests_csv, read_requests_jsonl, write_requests_csv, write_requests_jsonl


@pytest.fixture()
def sample_requests(small_trace):
    return small_trace.requests[:50]


class TestCsvRoundTrip:
    def test_count_preserved(self, tmp_path, sample_requests):
        path = tmp_path / "trace.csv"
        written = write_requests_csv(path, sample_requests)
        assert written == 50
        assert len(read_requests_csv(path)) == 50

    def test_values_preserved(self, tmp_path, sample_requests):
        path = tmp_path / "trace.csv"
        write_requests_csv(path, sample_requests)
        loaded = read_requests_csv(path)
        for original, copy in zip(sample_requests, loaded):
            assert copy.request_id == original.request_id
            assert copy.duration_s == pytest.approx(original.duration_s)
            assert copy.usage.cpu_seconds == pytest.approx(original.usage.cpu_seconds)
            assert copy.cold_start == original.cold_start
            assert copy.init_duration_s == pytest.approx(original.init_duration_s)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_requests_csv(path, []) == 0
        assert read_requests_csv(path) == []


class TestJsonlRoundTrip:
    def test_count_preserved(self, tmp_path, sample_requests):
        path = tmp_path / "trace.jsonl"
        assert write_requests_jsonl(path, sample_requests) == 50
        assert len(read_requests_jsonl(path)) == 50

    def test_values_preserved(self, tmp_path, sample_requests):
        path = tmp_path / "trace.jsonl"
        write_requests_jsonl(path, sample_requests)
        loaded = read_requests_jsonl(path)
        for original, copy in zip(sample_requests, loaded):
            assert copy.pod_id == original.pod_id
            assert copy.alloc_memory_gb == pytest.approx(original.alloc_memory_gb)

    def test_blank_lines_ignored(self, tmp_path, sample_requests):
        path = tmp_path / "trace.jsonl"
        write_requests_jsonl(path, sample_requests[:2])
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(read_requests_jsonl(path)) == 2
