"""Tests for the cluster co-simulation: Fleet, ClusterSimulator, and the cost sweep."""

import dataclasses

import pytest

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import Fleet, FleetConfig
from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy
from repro.platform.presets import get_platform_preset
from repro.sim.events import EventBus, SandboxColdStart, SandboxTerminated
from repro.sim.kernel import SimulationKernel
from repro.workloads.functions import PYAES_FUNCTION


def _deployments(count, platform="gcp_run_like", rps=4.0, duration_s=20.0):
    preset = get_platform_preset(platform)
    out = []
    for index in range(count):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        out.append(FunctionDeployment(function=function, platform=preset, rps=rps, duration_s=duration_s))
    return out


class TestFleet:
    def test_admit_and_release_capacity(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16)))
        host = fleet.admit(0.0, "sb-0", 2.0, 8.0)
        assert host is not None and host.allocated_vcpus == pytest.approx(2.0)
        assert fleet.num_placed == 1
        fleet.release(5.0, "sb-0")
        assert fleet.num_placed == 0
        assert host.allocated_vcpus == pytest.approx(0.0)
        assert fleet.admitted == 1 and fleet.released == 1

    def test_opens_hosts_on_demand_with_deterministic_names(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8)))
        for index in range(4):
            fleet.admit(0.0, f"sb-{index}", 2.0, 4.0)
        assert [host.name for host in fleet.hosts] == [
            "host-00000",
            "host-00001",
            "host-00002",
            "host-00003",
        ]

    def test_oversized_sandbox_unplaceable(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=2, memory_gb=8)))
        assert fleet.admit(1.0, "big", 4.0, 4.0) is None
        assert fleet.unplaceable == [(1.0, "big")]
        # Releasing an unplaced sandbox is a harmless no-op.
        fleet.release(2.0, "big")
        assert fleet.released == 0

    def test_host_cap_zero_rejects_everything(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16), max_hosts=0))
        assert fleet.admit(0.0, "sb-0", 1.0, 1.0) is None
        assert len(fleet.unplaceable) == 1
        assert fleet.hosts == []

    def test_best_fit_reuses_fuller_host(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=8, memory_gb=32), policy=PlacementPolicy.BEST_FIT))
        fleet.admit(0.0, "a", 6.0, 24.0)  # host-0 mostly full
        fleet.admit(0.0, "b", 1.0, 4.0)   # fits host-0; best-fit keeps it there
        assert fleet.host_of("b") is fleet.host_of("a")

    def test_worst_fit_prefers_emptier_host(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=8, memory_gb=32), policy=PlacementPolicy.WORST_FIT))
        fleet.admit(0.0, "a", 6.0, 24.0)
        fleet.admit(0.0, "b", 6.0, 24.0)  # does not fit host-0 -> host-1
        fleet.admit(0.0, "c", 1.0, 4.0)
        fleet.admit(0.0, "d", 1.0, 4.0)
        # Worst-fit spreads the small sandboxes across both hosts.
        assert fleet.host_of("c") is not fleet.host_of("d")

    def test_bus_driven_admission_and_eviction(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16)))
        bus = EventBus()
        fleet.attach(bus)
        bus.publish(SandboxColdStart(0.0, "sb-0", "f", alloc_vcpus=1.0, alloc_memory_gb=2.0))
        assert fleet.num_placed == 1
        bus.publish(SandboxTerminated(10.0, "sb-0"))
        assert fleet.num_placed == 0

    def test_kernel_sampling_timeline(self):
        fleet = Fleet(FleetConfig(host_spec=HostSpec(vcpus=4, memory_gb=16), sample_interval_s=5.0))
        kernel = SimulationKernel()
        kernel.add_process(fleet)
        kernel.run(until=20.0)
        assert [row["time_s"] for row in fleet.timeline] == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert all(row["hosts_open"] == 0.0 for row in fleet.timeline)

    def test_sampling_disabled(self):
        fleet = Fleet(FleetConfig(sample_interval_s=None))
        assert fleet.next_event_time(0.0) is None

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FleetConfig(max_hosts=-1)
        with pytest.raises(ValueError):
            FleetConfig(sample_interval_s=0.0)


class TestClusterSimulator:
    def test_serves_all_traffic_and_places_all_sandboxes(self):
        simulator = ClusterSimulator(
            _deployments(3),
            fleet_config=FleetConfig(host_spec=HostSpec(vcpus=8, memory_gb=32)),
            billing_platform="gcp_run_request",
            seed=7,
        )
        result = simulator.run()
        summary = result.summary()
        assert summary["num_requests"] == 3 * 4.0 * 20.0
        assert summary["unplaceable"] == 0.0
        assert summary["hosts_open"] >= 1.0
        assert summary["cost_usd"] > 0.0
        # Every cold start the simulators published reached the fleet.
        total_cold = sum(
            sum(1 for r in m.requests if r.cold_start) for m in result.metrics.values()
        )
        assert result.fleet.admitted >= total_cold > 0

    def test_deterministic_given_seed(self):
        def run():
            simulator = ClusterSimulator(
                _deployments(3),
                fleet_config=FleetConfig(host_spec=HostSpec(vcpus=8, memory_gb=32)),
                billing_platform="aws_lambda",
                seed=11,
            )
            return simulator.run().summary()

        assert run() == run()

    def test_short_keepalive_releases_capacity(self):
        preset = get_platform_preset("gcp_run_like")
        keep_alive = dataclasses.replace(
            preset.keep_alive, min_keep_alive_s=2.0, max_keep_alive_s=4.0
        )
        preset = dataclasses.replace(preset, keep_alive=keep_alive)
        deployments = []
        for index in range(2):
            function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
            function = dataclasses.replace(function, name=f"fn-{index:02d}")
            deployments.append(
                FunctionDeployment(function=function, platform=preset, rps=2.0, duration_s=10.0)
            )
        simulator = ClusterSimulator(deployments, seed=3)
        result = simulator.run()
        assert result.fleet.released > 0

    def test_unique_names_required(self):
        deployments = _deployments(2)
        clash = dataclasses.replace(
            deployments[1], function=dataclasses.replace(deployments[1].function, name="fn-00")
        )
        with pytest.raises(ValueError):
            ClusterSimulator([deployments[0], clash])

    def test_empty_deployments_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator([])

    def test_run_twice_rejected(self):
        simulator = ClusterSimulator(_deployments(1, rps=1.0, duration_s=2.0), seed=1)
        simulator.run()
        with pytest.raises(RuntimeError):
            simulator.run()


class TestClusterCostSweep:
    AXES = {
        "num_functions": (3,),
        "placement_policy": ("first_fit", "best_fit"),
        "keep_alive_s": (60.0,),
    }
    COMMON = {"duration_s": 15.0, "rps_per_function": 2.0}

    def test_sequential_and_parallel_rows_identical(self, tmp_path):
        from repro.analysis.cluster_costs import cluster_cost_sweep

        sequential = cluster_cost_sweep(axes=self.AXES, common=self.COMMON, base_seed=5)
        parallel = cluster_cost_sweep(axes=self.AXES, common=self.COMMON, base_seed=5, processes=2)
        assert sequential == parallel
        # Acceptance criterion: byte-identical CSV exports.
        seq_path, par_path = tmp_path / "seq.csv", tmp_path / "par.csv"
        sequential.to_csv(str(seq_path))
        parallel.to_csv(str(par_path))
        assert seq_path.read_bytes() == par_path.read_bytes()

    def test_rows_carry_fleet_and_cost_columns(self):
        from repro.analysis.cluster_costs import cluster_cost_sweep

        store = cluster_cost_sweep(
            axes={"num_functions": (3,), "placement_policy": ("best_fit",), "keep_alive_s": (60.0,)},
            common=self.COMMON,
            base_seed=5,
        )
        row = store.rows[0]
        assert {"placement_policy", "hosts_open", "cost_usd", "billable_cpu_seconds"} <= set(row)
        assert row["num_requests"] > 0

    def test_experiment_registry_entry_runs(self):
        from repro.analysis.experiments import EXPERIMENTS

        assert "cluster_costs" in EXPERIMENTS
