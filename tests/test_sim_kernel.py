"""Tests for the shared discrete-event kernel (`repro.sim.kernel`)."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Event, SimulationKernel


def collect(kernel, kinds):
    log = []
    for kind in kinds:
        kernel.on(kind, lambda event, k=kind: log.append((event.time, k, dict(event.data))))
    return log


class TestEventOrdering:
    def test_events_fire_in_time_order(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["a", "b", "c"])
        kernel.schedule(3.0, "c")
        kernel.schedule(1.0, "a")
        kernel.schedule(2.0, "b")
        kernel.run()
        assert [entry[1] for entry in log] == ["a", "b", "c"]

    def test_same_time_ties_break_by_schedule_order(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["first", "second", "third"])
        kernel.schedule(1.0, "first")
        kernel.schedule(1.0, "second")
        kernel.schedule(1.0, "third")
        kernel.run()
        assert [entry[1] for entry in log] == ["first", "second", "third"]

    def test_clock_is_monotonic_and_tracks_events(self):
        kernel = SimulationKernel()
        times = []
        kernel.on("tick", lambda event: times.append(kernel.now))
        for t in (0.5, 1.5, 1.5, 4.0):
            kernel.schedule(t, "tick")
        kernel.run()
        assert times == sorted(times)
        assert kernel.now == 4.0

    def test_events_scheduled_from_handlers_interleave(self):
        kernel = SimulationKernel()
        log = []

        def on_spawn(event):
            log.append(("spawn", kernel.now))
            if kernel.now < 3.0:
                kernel.schedule_in(1.0, "spawn")

        kernel.on("spawn", on_spawn)
        kernel.schedule(1.0, "spawn")
        kernel.run()
        assert log == [("spawn", 1.0), ("spawn", 2.0), ("spawn", 3.0)]

    def test_missing_handler_raises(self):
        kernel = SimulationKernel()
        kernel.schedule(1.0, "unknown")
        with pytest.raises(KeyError):
            kernel.run()

    def test_default_handler_catches_unregistered_kinds(self):
        kernel = SimulationKernel()
        seen = []
        kernel.on_default(lambda event: seen.append(event.kind))
        kernel.schedule(1.0, "anything")
        kernel.run()
        assert seen == ["anything"]


class TestPeekStepCancelPause:
    def test_peek_returns_next_time_without_executing(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["x"])
        kernel.schedule(2.5, "x")
        assert kernel.peek() == 2.5
        assert log == []
        assert kernel.now == 0.0

    def test_peek_empty_returns_none(self):
        assert SimulationKernel().peek() is None

    def test_step_executes_exactly_one_event(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["x"])
        kernel.schedule(1.0, "x")
        kernel.schedule(2.0, "x")
        event = kernel.step()
        assert isinstance(event, Event)
        assert len(log) == 1
        assert kernel.now == 1.0
        assert kernel.step() is not None
        assert kernel.step() is None

    def test_cancelled_events_are_skipped(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["keep", "drop"])
        kernel.schedule(1.0, "keep")
        handle = kernel.schedule(2.0, "drop")
        kernel.schedule(3.0, "keep")
        kernel.cancel(handle)
        kernel.run()
        assert [entry[1] for entry in log] == ["keep", "keep"]

    def test_run_until_leaves_later_events_queued(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["x"])
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, "x")
        executed = kernel.run(until=2.0)
        assert executed == 2
        assert kernel.peek() == 3.0
        kernel.run()
        assert len(log) == 3

    def test_run_max_events(self):
        kernel = SimulationKernel()
        collect(kernel, ["x"])
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, "x")
        assert kernel.run(max_events=2) == 2
        assert kernel.peek() == 3.0

    def test_pause_from_handler_stops_run(self):
        kernel = SimulationKernel()
        log = []

        def handler(event):
            log.append(kernel.now)
            kernel.pause()

        kernel.on("x", handler)
        kernel.schedule(1.0, "x")
        kernel.schedule(2.0, "x")
        assert kernel.run() == 1
        assert log == [1.0]
        assert kernel.run() == 1  # resumes where it left off
        assert log == [1.0, 2.0]

    def test_run_stop_predicate(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["x"])
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, "x")
        kernel.run(stop=lambda: len(log) >= 2)
        assert len(log) == 2


class _CountdownProcess:
    """A polled process firing at fixed times (co-simulation stand-in)."""

    def __init__(self, fire_times):
        self.remaining = list(fire_times)
        self.fired = []

    def next_event_time(self, now):
        return self.remaining[0] if self.remaining else None

    def handle(self, now):
        self.fired.append(now)
        self.remaining.pop(0)


class TestPolledProcesses:
    def test_process_events_interleave_with_heap_events(self):
        kernel = SimulationKernel()
        log = collect(kernel, ["heap"])
        process = _CountdownProcess([1.5, 3.5])
        kernel.add_process(process)
        kernel.schedule(1.0, "heap")
        kernel.schedule(2.0, "heap")
        kernel.run()
        assert process.fired == [1.5, 3.5]
        assert [entry[0] for entry in log] == [1.0, 2.0]
        assert kernel.now == 3.5

    def test_heap_event_wins_exact_time_tie(self):
        kernel = SimulationKernel()
        order = []
        kernel.on("heap", lambda event: order.append("heap"))

        class TieProcess:
            def __init__(self):
                self.done = False

            def next_event_time(self, now):
                return None if self.done else 1.0

            def handle(self, now):
                order.append("process")
                self.done = True

        kernel.add_process(TieProcess())
        kernel.schedule(1.0, "heap")
        kernel.run()
        assert order == ["heap", "process"]

    def test_peek_sees_process_times(self):
        kernel = SimulationKernel()
        kernel.add_process(_CountdownProcess([0.75]))
        assert kernel.peek() == 0.75


class TestPeriodicProcess:
    def test_fixed_grid_ticks(self):
        from repro.sim.kernel import PeriodicProcess, SimulationKernel

        ticks = []
        kernel = SimulationKernel()
        kernel.add_process(PeriodicProcess(3.0, ticks.append))
        kernel.run(until=9.0)
        assert ticks == [0.0, 3.0, 6.0, 9.0]

    def test_unbounded_run_terminates_when_only_periodic_ticks_remain(self):
        from repro.sim.kernel import PeriodicProcess, SimulationKernel

        ticks = []
        kernel = SimulationKernel()
        kernel.add_process(PeriodicProcess(1.0, ticks.append))
        kernel.on("work", lambda event: None)
        kernel.schedule(2.5, "work")
        executed = kernel.run()  # no until bound: must not spin forever
        # Periodic ticks interleave while heap work remains, then the run stops.
        assert executed >= 1
        assert kernel.now <= 2.5
        assert all(t <= 2.5 for t in ticks)

    def test_unbounded_run_with_only_periodic_process_executes_nothing(self):
        from repro.sim.kernel import PeriodicProcess, SimulationKernel

        kernel = SimulationKernel()
        kernel.add_process(PeriodicProcess(1.0, lambda now: None))
        assert kernel.run() == 0

    def test_invalid_interval(self):
        import pytest

        from repro.sim.kernel import PeriodicProcess

        with pytest.raises(ValueError):
            PeriodicProcess(0.0, lambda now: None)
