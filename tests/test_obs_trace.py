"""Trace integrity: spans account for every arrival, across any seeded run.

The acceptance contract of the observability PR: on a traced run with
retries on, the span census must match the domain metrics exactly --
``total == arrivals``, ``roots == arrivals - retry_arrivals``, outcomes
partition into completed / failed / censored, every retry child links to a
failed parent attempt, and timestamps are monotone within each span.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.obs import Observability, validate_chrome_trace
from repro.obs.trace import CENSORED, COMPLETED, FAILED
from repro.platform.presets import get_platform_preset
from repro.sim.retry import RetryPolicy
from repro.workloads.functions import PYAES_FUNCTION


def _traced_cluster(seed, *, retry=None, feedback="on", max_hosts=1, rps=6.0,
                    duration_s=6.0, num_functions=2, queue_depth=0):
    """A small, saturated cluster run with an Observability attached."""
    preset = get_platform_preset("aws_lambda_like")
    deployments = []
    for index in range(num_functions):
        function = dataclasses.replace(
            PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5),
            name=f"fn-{index:02d}",
        )
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=rps, duration_s=duration_s)
        )
    obs = Observability()
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=1.0, memory_gb=2.0),
            max_hosts=max_hosts,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
        feedback=feedback,
        retry=retry,
        obs=obs,
    )
    return simulator.run(), obs


class TestTraceIntegrity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        retry=st.sampled_from([None, RetryPolicy(max_attempts=3)]),
    )
    def test_spans_account_for_every_arrival(self, seed, retry):
        result, obs = _traced_cluster(seed, retry=retry)
        metrics = list(result.metrics.values())
        arrivals = sum(m.arrivals for m in metrics)
        retry_arrivals = sum(m.retry_arrivals for m in metrics)
        completed = sum(m.num_requests for m in metrics)
        failed = sum(m.failed_requests for m in metrics)

        spans = obs.trace.spans
        # Every arrival opened exactly one span; no span without an arrival.
        assert len(spans) == arrivals
        assert sum(1 for s in spans if s.is_root) == arrivals - retry_arrivals
        # Every span closed by the horizon or was censored at it: the outcome
        # census partitions into the domain metrics' conservation law.
        by_outcome = {}
        for span in spans:
            by_outcome[span.outcome] = by_outcome.get(span.outcome, 0) + 1
        assert by_outcome.get(COMPLETED, 0) == completed
        assert by_outcome.get(FAILED, 0) == failed
        assert by_outcome.get(CENSORED, 0) == arrivals - completed - failed
        assert set(by_outcome) <= {COMPLETED, FAILED, CENSORED}

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_retry_children_link_to_failed_parent_attempts(self, seed):
        _, obs = _traced_cluster(seed, retry=RetryPolicy(max_attempts=4))
        spans = obs.trace.spans
        by_request = {}
        for span in spans:
            by_request.setdefault(span.request_id, []).append(span)
        for span in spans:
            if span.is_root:
                assert span.parent_id == ""
                assert span.attempt == 1
                continue
            parents = by_request.get(span.parent_id, [])
            # The parent attempt exists, failed, and is one attempt behind.
            assert any(
                p.attempt == span.attempt - 1 and p.outcome == FAILED for p in parents
            ), f"no failed parent for {span.request_id} attempt {span.attempt}"

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        retry=st.sampled_from([None, RetryPolicy(max_attempts=3)]),
    )
    def test_timestamps_monotone_within_each_span(self, seed, retry):
        _, obs = _traced_cluster(seed, retry=retry)
        for span in obs.trace.spans:
            assert span.end_s is not None  # finalize() closed or censored it
            assert span.arrival_s <= span.end_s
            if span.exec_start_s is not None:
                assert span.arrival_s <= span.exec_start_s <= span.end_s

    def test_chain_of_walks_attempts_in_order(self):
        _, obs = _traced_cluster(7, retry=RetryPolicy(max_attempts=4))
        chained = [s for s in obs.trace.spans if not s.is_root]
        assert chained, "saturated fixture must produce retries"
        span = max(chained, key=lambda s: s.attempt)
        chain = obs.trace.chain_of(span.request_id)
        assert [s.attempt for s in chain] == list(range(1, span.attempt + 1))
        assert all(s.outcome == FAILED for s in chain[:-1])


class TestChromeExport:
    def test_chrome_trace_is_well_formed(self, tmp_path):
        _, obs = _traced_cluster(11, retry=RetryPolicy(max_attempts=3))
        path = tmp_path / "trace.json"
        obs.write_trace(str(path))
        with open(path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert validate_chrome_trace(events) == len(events)
        # Retry re-injections draw flow arrows: balanced start/finish pairs.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        # Telemetry counters ride along in the same document.
        assert any(e["ph"] == "C" for e in events)

    def test_jsonl_export_round_trips_span_count(self, tmp_path):
        _, obs = _traced_cluster(11, retry=RetryPolicy(max_attempts=3))
        path = tmp_path / "spans.jsonl"
        obs.write_trace(str(path))
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        requests = [line for line in lines if line["kind"] == "request"]
        sandboxes = [line for line in lines if line["kind"] == "sandbox"]
        assert len(requests) == len(obs.trace.spans)
        assert len(sandboxes) == len(obs.trace.sandbox_spans)


class TestStandalonePlatformSimulator:
    def test_obs_attaches_without_a_cluster(self):
        """A lone PlatformSimulator carries its own obs (no shared kernel)."""
        from repro.platform.invoker import PlatformSimulator
        from repro.workloads.traffic import constant_rate_arrivals

        preset = get_platform_preset("gcp_run_like")
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        obs = Observability()
        simulator = PlatformSimulator(preset, function, seed=5, obs=obs)
        metrics = simulator.run(constant_rate_arrivals(3.0, 10.0))
        assert len(obs.trace.spans) == metrics.arrivals > 0
        assert obs.summary()["spans"]["completed"] == metrics.num_requests
        assert obs.kernel_profile().events_total > 0
        assert obs.telemetry.samples_taken > 0


class TestObservabilityLifecycle:
    def test_attach_refuses_reuse(self):
        _, obs = _traced_cluster(3)
        try:
            obs.attach(None, None)
        except RuntimeError as error:
            assert "one run" in str(error)
        else:
            raise AssertionError("attach() must refuse a second run")

    def test_summary_census_matches_spans(self):
        result, obs = _traced_cluster(5, retry=RetryPolicy(max_attempts=3))
        census = obs.summary()["spans"]
        metrics = list(result.metrics.values())
        assert census["total"] == sum(m.arrivals for m in metrics)
        assert census["completed"] == sum(m.num_requests for m in metrics)
        assert census["failed"] == sum(m.failed_requests for m in metrics)
