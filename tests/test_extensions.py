"""Tests for the extension features built on top of the paper's core results:

- event-driven quota enforcement (§4.3's proposed fix),
- the §5 actionables (platform selection, function merging / decomposition),
- request-based vs instance-based billing break-even,
- the provider-side keep-alive cost model.
"""

import math

import pytest

from repro.billing.catalog import PlatformName
from repro.billing.instance_billing import break_even_utilization, compare_request_vs_instance_billing
from repro.core.advisor import (
    PlatformSelectionAdvisor,
    evaluate_function_decomposition,
    evaluate_function_merging,
)
from repro.platform.keepalive import KeepAlivePolicy, KeepAliveResourceBehavior
from repro.platform.keepalive_cost import estimate_keepalive_cost, keepalive_policy_comparison
from repro.platform.presets import get_platform_preset
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import QuotaEnforcement, SchedulerConfig, SchedulerSim
from repro.sched.task import SimTask
from repro.workloads.functions import MINIMAL_FUNCTION, PYAES_FUNCTION, WorkloadSpec, get_workload


class TestEventDrivenQuotaEnforcement:
    def _duration(self, enforcement, cpu_time=0.016, fraction=0.5, tick_hz=250):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(fraction, 0.020),
            tick_hz=tick_hz,
            horizon_s=5.0,
            quota_enforcement=enforcement,
        )
        return SchedulerSim(config, [SimTask.cpu_bound(cpu_time, name="t")]).run().single

    def test_event_enforcement_matches_equation2(self):
        """§4.3: one-shot-timer enforcement removes the overrun, recovering Equation (2)."""
        from repro.sched.analytical import theoretical_duration

        result = self._duration(QuotaEnforcement.EVENT)
        assert result.duration_s == pytest.approx(theoretical_duration(0.016, 0.020, 0.010), abs=1e-4)

    def test_tick_enforcement_overallocates_relative_to_event(self):
        tick = self._duration(QuotaEnforcement.TICK)
        event = self._duration(QuotaEnforcement.EVENT)
        assert tick.duration_s <= event.duration_s + 1e-9

    def test_event_enforcement_long_task_share_matches_quota(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(0.072, 0.020),
            tick_hz=250,
            horizon_s=2.0,
            quota_enforcement=QuotaEnforcement.EVENT,
        )
        result = SchedulerSim(config, [SimTask.cpu_bound(10.0, name="spin")]).run().single
        assert result.cpu_consumed_s / 2.0 == pytest.approx(0.072, rel=0.05)

    def test_event_enforcement_burst_never_exceeds_quota(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig.for_vcpu_fraction(0.25, 0.020),
            tick_hz=250,
            horizon_s=1.0,
            quota_enforcement=QuotaEnforcement.EVENT,
        )
        result = SchedulerSim(config, [SimTask.cpu_bound(10.0, name="spin")]).run().single
        for start, end in result.run_segments[:-1]:
            assert end - start <= 0.005 + 1e-6

    def test_event_enforcement_without_bandwidth_limit(self):
        config = SchedulerConfig(
            bandwidth=BandwidthConfig(period_s=0.02, quota_s=0.0),
            tick_hz=250,
            horizon_s=1.0,
            quota_enforcement=QuotaEnforcement.EVENT,
        )
        result = SchedulerSim(config, [SimTask.cpu_bound(0.05, name="t")]).run().single
        assert result.duration_s == pytest.approx(0.05, abs=1e-6)


class TestPlatformSelectionAdvisor:
    @pytest.fixture(scope="class")
    def advisor(self):
        return PlatformSelectionAdvisor()

    def test_rank_returns_all_platforms_sorted(self, advisor):
        rankings = advisor.rank(PYAES_FUNCTION, 1.0, 1.769, requests_per_month=1e6)
        assert len(rankings) == 5
        costs = [r.monthly_cost for r in rankings]
        assert costs == sorted(costs)

    def test_cloudflare_wins_for_io_bound_workloads(self, advisor):
        """Usage-based billing is the cheapest when wall-clock time dwarfs CPU time."""
        rankings = advisor.rank(get_workload("io_bound"), 0.5, 0.5, requests_per_month=1e6)
        assert rankings[0].platform == "cloudflare_workers"

    def test_fee_dominates_for_minimal_functions(self, advisor):
        """§2.5: for tiny functions the invocation fee dominates the bill on every fee-charging platform."""
        rankings = advisor.rank(MINIMAL_FUNCTION, 0.072, 0.125, requests_per_month=1e6)
        for ranking in rankings:
            if ranking.platform != "ibm_code_engine":  # IBM charges no request fee
                assert ranking.invocation_fee_share > 0.4

    def test_monthly_cost_scales_with_volume(self, advisor):
        low = advisor.rank(PYAES_FUNCTION, 1.0, 1.769, requests_per_month=1e5)
        high = advisor.rank(PYAES_FUNCTION, 1.0, 1.769, requests_per_month=1e7)
        assert high[0].monthly_cost > low[0].monthly_cost * 50

    def test_rank_for_trace(self, advisor, small_trace):
        rankings = advisor.rank_for_trace(small_trace)
        assert len(rankings) == 5
        assert all(r.cost_per_invocation > 0 for r in rankings)
        # Usage-based billing bills the least for the low-utilisation trace.
        assert rankings[0].platform == "cloudflare_workers"

    def test_rank_for_empty_trace_rejected(self, advisor):
        from repro.traces.schema import Trace

        with pytest.raises(ValueError):
            advisor.rank_for_trace(Trace([]))

    def test_invalid_volume_rejected(self, advisor):
        with pytest.raises(ValueError):
            advisor.rank(PYAES_FUNCTION, 1.0, 1.0, requests_per_month=-1)

    def test_as_row_keys(self, advisor):
        row = advisor.rank(PYAES_FUNCTION, 1.0, 1.769, requests_per_month=1e6)[0].as_row()
        assert {"platform", "monthly_cost", "execution_duration_ms"} <= set(row)


class TestFunctionMergingAndDecomposition:
    def test_merging_short_functions_saves_fees(self):
        """§5: merging similar functions lowers invocation fees (and cutoff waste)."""
        short = WorkloadSpec(name="short", cpu_time_s=0.01, used_memory_gb=0.05)
        recommendation = evaluate_function_merging([short] * 5, 0.25, 0.5)
        assert recommendation.worthwhile
        assert recommendation.separate_cost > recommendation.merged_cost

    def test_merging_single_function_is_neutral(self):
        recommendation = evaluate_function_merging([PYAES_FUNCTION], 1.0, 1.769)
        assert recommendation.saving == pytest.approx(0.0, abs=1e-9)

    def test_merging_requires_workloads(self):
        with pytest.raises(ValueError):
            evaluate_function_merging([], 1.0, 1.0)

    def test_decomposition_right_sizes_stages(self):
        """Decomposing lets the IO-dominated stage run at a small allocation instead of
        holding the CPU-heavy stage's large (memory-proportional) allocation for the
        whole wall-clock duration."""
        pipeline = WorkloadSpec(name="pipeline", cpu_time_s=0.2, io_time_s=2.0, used_memory_gb=0.1)
        recommendation = evaluate_function_decomposition(
            pipeline,
            piece_allocations_vcpus=[0.125, 1.0],
            piece_cpu_fractions=[0.9, 0.1],
            alloc_memory_gb=1.769,
            monolithic_vcpus=1.0,
            billing_platform=PlatformName.AWS_LAMBDA,
            scheduling_provider=None,
        )
        assert recommendation.num_pieces == 2
        assert recommendation.worthwhile
        assert recommendation.saving > 0.3

    def test_decomposition_not_worthwhile_for_pure_cpu_on_decoupled_billing(self):
        """With decoupled CPU billing (GCP) a pure-CPU pipeline bills the same vCPU-seconds
        regardless of how it is split, so the extra invocation fees make decomposition lose."""
        pipeline = WorkloadSpec(name="pipeline", cpu_time_s=1.0, used_memory_gb=0.1)
        recommendation = evaluate_function_decomposition(
            pipeline,
            piece_allocations_vcpus=[1.0, 0.25],
            piece_cpu_fractions=[0.2, 0.8],
            alloc_memory_gb=0.5,
            monolithic_vcpus=1.0,
            billing_platform=PlatformName.GCP_RUN_REQUEST,
            scheduling_provider=None,
        )
        assert not recommendation.worthwhile

    def test_decomposition_validation(self):
        with pytest.raises(ValueError):
            evaluate_function_decomposition(
                PYAES_FUNCTION, [1.0], [0.5, 0.5], alloc_memory_gb=1.0
            )
        with pytest.raises(ValueError):
            evaluate_function_decomposition(
                PYAES_FUNCTION, [1.0, 0.5], [0.6, 0.6], alloc_memory_gb=1.0
            )


class TestInstanceBilling:
    def test_low_traffic_favours_request_billing(self):
        comparison = compare_request_vs_instance_billing(
            requests_per_hour=10, mean_execution_s=0.2, alloc_vcpus=1.0, alloc_memory_gb=2.0
        )
        assert not comparison.instance_billing_cheaper
        assert comparison.instance_utilization < 0.01

    def test_high_traffic_favours_instance_billing(self):
        comparison = compare_request_vs_instance_billing(
            requests_per_hour=15_000, mean_execution_s=0.2, alloc_vcpus=1.0, alloc_memory_gb=2.0
        )
        assert comparison.instance_billing_cheaper
        assert comparison.instance_utilization > 0.5

    def test_break_even_utilization_in_unit_interval(self):
        utilization = break_even_utilization(0.2, 1.0, 2.0)
        assert 0.0 < utilization <= 1.0

    def test_break_even_consistent_with_comparison(self):
        utilization = break_even_utilization(0.2, 1.0, 2.0)
        rate_above = (utilization * 1.05) * 3600.0 / 0.2
        comparison = compare_request_vs_instance_billing(
            requests_per_hour=rate_above, mean_execution_s=0.2, alloc_vcpus=1.0, alloc_memory_gb=2.0
        )
        assert comparison.instance_billing_cheaper

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compare_request_vs_instance_billing(-1, 0.2, 1.0, 2.0)
        with pytest.raises(ValueError):
            break_even_utilization(0.0, 1.0, 2.0)

    def test_as_row(self):
        row = compare_request_vs_instance_billing(100, 0.2, 1.0, 2.0).as_row()
        assert "instance_billing_cheaper" in row


class TestKeepAliveCost:
    def _policies(self):
        return {
            "aws_like": get_platform_preset("aws_lambda_like").keep_alive,
            "azure_like": get_platform_preset("azure_consumption_like").keep_alive,
            "gcp_like": get_platform_preset("gcp_run_like").keep_alive,
        }

    def test_freeze_policy_has_zero_idle_cost(self):
        estimate = estimate_keepalive_cost(
            self._policies()["aws_like"], [60.0, 120.0], 1.0, 2.0, policy_label="aws"
        )
        assert estimate.idle_vcpu_seconds_per_request == 0.0
        assert estimate.implied_cost_per_request == 0.0

    def test_full_allocation_policy_costs_most(self):
        comparison = keepalive_policy_comparison(self._policies(), [60.0, 180.0, 300.0], 1.0, 2.0)
        assert (
            comparison["azure_like"].implied_cost_per_request
            > comparison["gcp_like"].implied_cost_per_request
            >= comparison["aws_like"].implied_cost_per_request
        )

    def test_longer_gaps_increase_idle_and_cold_starts(self):
        policy = self._policies()["azure_like"]
        short = estimate_keepalive_cost(policy, [30.0] * 10, 1.0, 1.0)
        long = estimate_keepalive_cost(policy, [500.0] * 10, 1.0, 1.0)
        assert long.mean_idle_s_per_request > short.mean_idle_s_per_request
        assert long.cold_start_probability > short.cold_start_probability

    def test_cold_start_probability_trade_off(self):
        """The policy that holds the most resources (Azure-like full allocation) buys fewer
        cold starts per idle-second held than freezing at the same gap distribution only by
        keeping everything resident -- the §3.3 trade-off."""
        comparison = keepalive_policy_comparison(self._policies(), [200.0] * 5, 1.0, 1.0)
        assert comparison["aws_like"].cold_start_probability <= 1.0
        assert comparison["gcp_like"].cold_start_probability == 0.0  # 200 s < GCP's window

    def test_validation(self):
        policy = KeepAlivePolicy(10.0, 20.0, KeepAliveResourceBehavior.FREEZE_DEALLOCATE)
        with pytest.raises(ValueError):
            estimate_keepalive_cost(policy, [], 1.0, 1.0)
        with pytest.raises(ValueError):
            estimate_keepalive_cost(policy, [10.0], 0.0, 1.0)
        with pytest.raises(ValueError):
            estimate_keepalive_cost(policy, [-5.0], 1.0, 1.0)
