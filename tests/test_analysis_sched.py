"""Tests for the §4 analysis modules (Figures 10-12, Table 3, and the exploit row)."""

import pytest

from repro.analysis.exploit import exploit_summary
from repro.analysis.overallocation import (
    aws_memory_to_vcpus,
    figure10_allocation_sweep,
    figure10_jump_positions,
    figure10_summary,
)
from repro.analysis.quantization import figure11_series, figure11_summary
from repro.analysis.throttle import (
    figure12_cfs_vs_eevdf,
    figure12_provider_profiles,
    infer_scheduling_parameters,
    infer_scheduling_parameters_by_matching,
    profile_configuration,
    table3_inference,
)


class TestFigure10:
    @pytest.fixture(scope="class")
    def sweep(self):
        fractions = [aws_memory_to_vcpus(m) for m in (128, 256, 512, 896, 1408, 1769)]
        return figure10_allocation_sweep(
            provider="aws_lambda", vcpu_fractions=fractions, samples_per_point=8, seed=5
        )

    def test_memory_to_vcpus_mapping(self):
        assert aws_memory_to_vcpus(1769) == pytest.approx(1.0)
        assert aws_memory_to_vcpus(128) == pytest.approx(0.0724, abs=1e-3)
        with pytest.raises(ValueError):
            aws_memory_to_vcpus(0)

    def test_empirical_at_or_below_expected(self, sweep):
        """Figure 10: overallocation makes the empirical mean at most the reciprocal expectation."""
        for row in sweep:
            assert row["empirical_mean_duration_ms"] <= row["expected_duration_ms"] * 1.05

    def test_duration_decreases_with_allocation(self, sweep):
        ordered = sorted(sweep, key=lambda r: r["vcpu_fraction"])
        assert ordered[0]["empirical_mean_duration_ms"] > ordered[-1]["empirical_mean_duration_ms"]

    def test_full_allocation_runs_at_native_speed(self, sweep):
        full = [r for r in sweep if r["vcpu_fraction"] == pytest.approx(1.0)][0]
        assert full["empirical_mean_duration_ms"] == pytest.approx(16.0, rel=0.05)

    def test_plateau_above_first_jump(self, sweep):
        """§4.1: shrinking the allocation from 1 vCPU initially does not slow the function."""
        by_memory = {round(r["memory_mb"]): r for r in sweep}
        assert by_memory[1408]["empirical_mean_duration_ms"] == pytest.approx(
            by_memory[1769]["empirical_mean_duration_ms"], rel=0.15
        )

    def test_summary_fields(self, sweep):
        summary = figure10_summary(sweep)
        assert summary["num_points"] == len(sweep)
        assert summary["fraction_at_or_below_expected"] >= 0.8
        assert summary["mean_overallocation_ratio_subcore"] >= 1.0

    def test_jump_positions_harmonic(self):
        rows = figure10_jump_positions(cpu_time_s=0.016, max_jumps=4)
        fractions = [row["vcpu_fraction"] for row in rows]
        assert fractions[0] == pytest.approx(0.8)
        assert fractions[1] == pytest.approx(0.4)
        # Memory positions follow ~1400 x 1/n MB as the paper observes.
        assert rows[0]["memory_mb"] == pytest.approx(1415, rel=0.01)


class TestFigure11:
    def test_series_covers_all_periods(self):
        rows = figure11_series(periods_ms=(5.0, 100.0), vcpu_fractions=(0.25, 0.5, 1.0))
        assert len(rows) == 6

    def test_longer_periods_deviate_more(self):
        """Figure 11: the 100 ms period shows a larger deviation from the ideal than 5 ms."""
        summary = {row["period_ms"]: row for row in figure11_summary(figure11_series())}
        assert summary[100.0]["mean_abs_deviation_ms"] > summary[5.0]["mean_abs_deviation_ms"]
        assert summary[100.0]["max_abs_deviation_ms"] > summary[5.0]["max_abs_deviation_ms"]

    def test_duration_never_below_cpu_time(self):
        for row in figure11_series(periods_ms=(20.0,), vcpu_fractions=(0.1, 0.5, 1.0)):
            assert row["duration_ms"] >= 51.8 - 1e-6


class TestFigure12AndTable3:
    def test_provider_profiles_quantization(self):
        rows = figure12_provider_profiles(
            configurations=(
                ("aws_0.25", "aws_lambda", 0.25),
                ("gcp_0.25", "gcp_run_functions", 0.25),
            ),
            exec_duration_s=2.0,
            invocations=3,
        )
        by_label = {row["configuration"]: row for row in rows}
        # AWS throttle intervals are ~20 ms multiples; GCP's are ~100 ms.
        assert by_label["aws_0.25"]["throttle_interval_p50_ms"] == pytest.approx(20.0, abs=2.0)
        assert by_label["gcp_0.25"]["throttle_interval_p50_ms"] == pytest.approx(100.0, abs=10.0)

    def test_aws_obtained_cpu_quantized_at_4ms(self):
        profile = profile_configuration(0.072, 0.020, 250, exec_duration_s=2.0, invocations=3, seed=1)
        obtained_ms = [v * 1e3 for v in profile.obtained_cpu_times_s()]
        assert obtained_ms, "profiler should observe throttles"
        # Bursts are cut at scheduler ticks: at most ~2 tick intervals of CPU per
        # burst (one tick of lagged accounting plus one undetected micro-gap).
        assert max(obtained_ms) <= 8.5
        import numpy as np

        assert float(np.median(obtained_ms)) <= 4.5

    def test_cfs_vs_eevdf_overrun_ordering(self):
        """Figure 12(d): higher timer frequency and EEVDF both reduce overrun."""
        rows = figure12_cfs_vs_eevdf(exec_duration_s=2.0, invocations=3)
        by_label = {row["configuration"]: row for row in rows}
        assert (
            by_label["cfs_1000hz"]["obtained_cpu_mean_ms"]
            <= by_label["cfs_250hz"]["obtained_cpu_mean_ms"] + 1e-6
        )
        assert (
            by_label["eevdf_250hz"]["obtained_cpu_mean_ms"]
            <= by_label["cfs_250hz"]["obtained_cpu_mean_ms"] + 1e-6
        )
        assert by_label["cfs_1000hz"]["mean_overrun_ratio"] <= by_label["cfs_250hz"]["mean_overrun_ratio"]
        assert by_label["eevdf_250hz"]["mean_overrun_ratio"] <= by_label["cfs_250hz"]["mean_overrun_ratio"]

    def test_table3_recovers_configured_parameters(self):
        """Table 3: the inference recovers each provider's period and CONFIG_HZ."""
        rows = table3_inference(exec_duration_s=3.0, invocations=6)
        for row in rows:
            assert row["inferred_period_ms"] == pytest.approx(row["configured_period_ms"])
            assert row["inferred_tick_hz"] == pytest.approx(row["configured_tick_hz"])

    def test_closed_form_inference_on_aws_profile(self):
        profile = profile_configuration(0.25, 0.020, 250, exec_duration_s=2.0, invocations=4, seed=2)
        inferred = infer_scheduling_parameters(profile)
        assert inferred["period_ms"] == pytest.approx(20.0)

    def test_matching_inference_gcp(self):
        profile = profile_configuration(0.25, 0.100, 1000, exec_duration_s=3.0, invocations=6, seed=3)
        inferred = infer_scheduling_parameters_by_matching(
            profile, vcpu_fraction=0.25, reference_exec_duration_s=3.0, reference_invocations=6
        )
        assert inferred["period_ms"] == pytest.approx(100.0)
        assert inferred["tick_hz"] == pytest.approx(1000)

    def test_no_throttle_profile_inference_is_nan(self):
        profile = profile_configuration(1.0, 0.020, 250, exec_duration_s=0.5, invocations=1)
        inferred = infer_scheduling_parameters_by_matching(profile, vcpu_fraction=1.0)
        assert inferred["period_ms"] != inferred["period_ms"]  # NaN


class TestExploitRow:
    def test_summary_rows(self):
        rows = exploit_summary()
        by_name = {row["exploit"]: row for row in rows}
        intermittent = by_name["intermittent_execution_aws"]
        assert intermittent["billable_gb_seconds_reduction"] > 0.4
        assert intermittent["cost_change"] > 0
        background = by_name["keepalive_background_task_azure"]
        assert background["cost_change"] < 0
