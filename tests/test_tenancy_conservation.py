"""Per-tenant conservation laws over the multi-tenant admission layer.

The tenancy layer adds two new places a request can live -- terminally denied
by credit metering, or parked in a tenant's credit queue -- so the arrival
conservation law of ``tests/test_conservation.py`` gains a term: per tenant,

    arrivals == completed + failed + denied + pending + in-flight

must hold for **any** configuration (deny or queue exhaustion policy, feedback
on or off, retries on or off, refillable or starved credit buckets, bounded or
unbounded credit queues).  And because tenants partition the deployments, the
per-tenant reports must sum exactly to the global totals the pre-tenancy law
pins -- tenancy re-buckets the accounting, it must never change it.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.platform.presets import get_platform_preset
from repro.sim.retry import RetryPolicy
from repro.tenancy import TenantConfig
from repro.workloads.functions import PYAES_FUNCTION

RETRY_POLICY = RetryPolicy(max_attempts=3, base_backoff_s=0.2, jitter=0.1)


def _build_cluster(seed, tenants, *, feedback="off", retry=None, rps=6.0,
                   num_functions=4, max_hosts=1, queue_depth=0):
    preset = get_platform_preset("aws_lambda_like")
    deployments = []
    for index in range(num_functions):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        deployments.append(
            FunctionDeployment(function=function, platform=preset, rps=rps, duration_s=5.0)
        )
    return ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=2.0, memory_gb=4.0),
            max_hosts=max_hosts,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
        feedback=feedback,
        retry=retry,
        tenants=tenants,
    )


def _assert_tenant_conservation(simulator, result):
    """Per-tenant closure plus exact agreement with the global totals."""
    report = result.tenancy
    assert report is not None
    # --- per tenant: the extended conservation law ------------------------
    for tenant in report.tenants:
        assert tenant.conserves(), (
            f"{tenant.name}: {tenant.arrivals} arrivals != {tenant.completed} completed + "
            f"{tenant.failed} failed + {tenant.denied} denied + {tenant.pending} pending + "
            f"{tenant.in_flight} in flight"
        )
    # --- per-simulator: the same law holds at function granularity --------
    for name, sim in simulator.simulators.items():
        m = sim.metrics
        accounted = (
            m.num_requests
            + m.failed_requests
            + m.denied_requests
            + sim.pending_request_count
            + sim.in_flight_request_count
        )
        assert m.arrivals == accounted, f"{name} leaks requests"
    # --- tenants partition the cluster: sums match global totals ----------
    totals = {
        "arrivals": sum(m.arrivals for m in result.metrics.values()),
        "completed": sum(m.num_requests for m in result.metrics.values()),
        "failed": sum(m.failed_requests for m in result.metrics.values()),
        "denied": sum(m.denied_requests for m in result.metrics.values()),
        "pending": sum(m.pending_requests for m in result.metrics.values()),
    }
    assert sum(t.arrivals for t in report.tenants) == totals["arrivals"]
    assert sum(t.completed for t in report.tenants) == totals["completed"]
    assert sum(t.failed for t in report.tenants) == totals["failed"]
    assert sum(t.denied for t in report.tenants) == totals["denied"]
    assert sum(t.pending for t in report.tenants) == totals["pending"]
    assert sum(t.functions for t in report.tenants) == len(result.metrics)
    # --- controller counters agree with the metrics-side accounting -------
    admission = simulator.admission
    for tenant in report.tenants:
        assert admission.denied[tenant.name] == tenant.denied
        # Everything the controller admitted was handed to routing; together
        # with denials and still-parked requests that covers every metered
        # arrival (organic + retry re-injections).
        assert (
            admission.admitted[tenant.name]
            + admission.denied[tenant.name]
            + admission.queue_depth(tenant.name)
            == tenant.arrivals
        )
        # Credits were spent exactly once per admitted request.
        config = admission.config(tenant.name)
        assert admission.credits_spent[tenant.name] == (
            admission.admitted[tenant.name] * config.request_cost
        )


class TestTenancyConservation:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        on_exhausted=st.sampled_from(["deny", "queue"]),
        feedback=st.sampled_from(["off", "on"]),
        with_retry=st.booleans(),
        capacity=st.sampled_from([5.0, 50.0]),
        refill=st.sampled_from([0.0, 1.5]),
        num_tenants=st.sampled_from([1, 2, 3]),
    )
    def test_any_tenant_config_conserves(
        self, seed, on_exhausted, feedback, with_retry, capacity, refill, num_tenants
    ):
        tenants = [
            TenantConfig(
                f"tenant-{index:02d}",
                credit_capacity=capacity,
                credit_refill_per_s=refill,
                on_exhausted=on_exhausted,
                slo_latency_s=0.5,
            )
            for index in range(num_tenants)
        ]
        simulator = _build_cluster(
            seed, tenants, feedback=feedback,
            retry=RETRY_POLICY if with_retry else None,
        )
        result = simulator.run()
        _assert_tenant_conservation(simulator, result)

    def test_starved_credit_queue_strands_as_pending(self):
        """refill=0 + queue policy: the credit queue never drains, yet conserves."""
        tenants = [TenantConfig("starved", credit_capacity=5.0, credit_refill_per_s=0.0,
                                on_exhausted="queue")]
        simulator = _build_cluster(11, tenants, rps=4.0, num_functions=2)
        result = simulator.run()
        _assert_tenant_conservation(simulator, result)
        report = result.tenancy.by_name("starved")
        assert report.pending > 0           # stranded in the credit queue
        assert report.completed == 5        # one 5-credit bucket across both functions
        assert simulator.admission.resumed["starved"] == 0

    def test_bounded_credit_queue_denies_overflow(self):
        """max_queued caps the park depth; overflow arrivals are denied."""
        tenants = [TenantConfig("bounded", credit_capacity=4.0, credit_refill_per_s=0.1,
                                on_exhausted="queue", max_queued=3)]
        simulator = _build_cluster(23, tenants, rps=5.0, num_functions=2)
        result = simulator.run()
        _assert_tenant_conservation(simulator, result)
        report = result.tenancy.by_name("bounded")
        assert report.denied > 0
        assert simulator.admission.queue_depth("bounded") <= 3

    def test_deny_under_retry_amplification_conserves(self):
        """Denials, failures, retries and credit refills interleaving at once."""
        tenants = [
            TenantConfig("a", credit_capacity=10.0, credit_refill_per_s=1.0,
                         on_exhausted="deny", slo_latency_s=0.4),
            TenantConfig("b", credit_capacity=10.0, credit_refill_per_s=1.0,
                         on_exhausted="queue", slo_latency_s=0.4),
        ]
        simulator = _build_cluster(
            77, tenants, feedback="on", retry=RETRY_POLICY, rps=8.0, queue_depth=2
        )
        result = simulator.run()
        _assert_tenant_conservation(simulator, result)
        assert result.tenancy.total_denied > 0

    def test_unmetered_tenants_report_matches_untenanted_run(self):
        """Default (inf-capacity) tenants must not perturb the simulation at all.

        The strongest statement of the gating contract that plain equality can
        make: a run with unmetered tenants produces the *identical* summary to
        the same seed without tenants (modulo the tenancy-only columns), with
        zero denials and every arrival taking the pre-tenancy code path's
        timings.
        """
        baseline = _build_cluster(99, None, feedback="on", retry=RETRY_POLICY).run()
        tenanted = _build_cluster(
            99,
            [TenantConfig("free-a"), TenantConfig("free-b")],
            feedback="on",
            retry=RETRY_POLICY,
        ).run()
        base_row = baseline.summary()
        tenant_row = tenanted.summary()
        tenancy_keys = {
            k for k in tenant_row
            if k.startswith("tenant:")
            or k in ("num_tenants", "credit_denied_requests", "slo_attainment", "jain_fairness")
        }
        assert {k: v for k, v in tenant_row.items() if k not in tenancy_keys} == base_row
        assert tenant_row["credit_denied_requests"] == 0.0
        assert tenant_row["jain_fairness"] == 1.0 or tenant_row["jain_fairness"] > 0.0
