"""Unit tests for the generalised billing model (Equation 1)."""

import pytest

from repro.billing.models import (
    AllocationBilledResource,
    BillableTime,
    BillingModel,
    UsageBilledResource,
)
from repro.billing.units import MB, MILLISECONDS, ResourceKind


def simple_model(**overrides):
    defaults = dict(
        platform="test",
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(kind=ResourceKind.MEMORY, granularity=1 * MB, unit_price=1.6e-5),
        ),
        invocation_fee=2e-7,
    )
    defaults.update(overrides)
    return BillingModel(**defaults)


class TestBillableSeconds:
    def test_execution_time_rounded(self):
        model = simple_model(time_granularity_s=0.1)
        assert model.billable_seconds(execution_s=0.123) == pytest.approx(0.2)

    def test_turnaround_includes_init(self):
        model = simple_model(billable_time=BillableTime.TURNAROUND)
        assert model.billable_seconds(execution_s=0.1, init_s=0.5) == pytest.approx(0.6)

    def test_execution_excludes_init(self):
        model = simple_model()
        assert model.billable_seconds(execution_s=0.1, init_s=0.5) == pytest.approx(0.1)

    def test_instance_time_requires_instance_seconds(self):
        model = simple_model(billable_time=BillableTime.INSTANCE)
        with pytest.raises(ValueError):
            model.billable_seconds(execution_s=0.1)
        assert model.billable_seconds(execution_s=0.1, instance_s=120.0) == pytest.approx(120.0)

    def test_cpu_time_billing(self):
        model = simple_model(billable_time=BillableTime.CPU_TIME)
        assert model.billable_seconds(execution_s=0.5, cpu_time_s=0.05) == pytest.approx(0.05)

    def test_minimum_cutoff(self):
        model = simple_model(minimum_time_s=0.1)
        assert model.billable_seconds(execution_s=0.003) == pytest.approx(0.1)

    def test_minimum_not_applied_to_zero(self):
        model = simple_model(minimum_time_s=0.1)
        assert model.billable_seconds(execution_s=0.0) == 0.0


class TestBillableResources:
    def test_allocation_resource_rounding(self):
        model = simple_model()
        billable = model.billable_resources(
            execution_s=1.0, allocations={ResourceKind.MEMORY: 0.2001}
        )
        # 0.2001 GB rounds up to the next MB.
        assert billable[ResourceKind.MEMORY] == pytest.approx(0.2011, abs=1e-3)

    def test_usage_resource_not_multiplied_by_time(self):
        model = BillingModel(
            platform="cf",
            billable_time=BillableTime.CPU_TIME,
            usage_resources=(UsageBilledResource(kind=ResourceKind.CPU, granularity=0.001, unit_price=2e-5),),
        )
        billable = model.billable_resources(
            execution_s=10.0, allocations={}, usages={ResourceKind.CPU: 0.05}, cpu_time_s=0.05
        )
        assert billable[ResourceKind.CPU] == pytest.approx(0.05)

    def test_consumption_based_allocation_resource(self):
        model = BillingModel(
            platform="azure",
            billable_time=BillableTime.EXECUTION,
            allocation_resources=(
                AllocationBilledResource(
                    kind=ResourceKind.MEMORY, granularity=128 * MB, unit_price=1.6e-5, use_consumption=True
                ),
            ),
        )
        billable = model.billable_resources(
            execution_s=1.0,
            allocations={ResourceKind.MEMORY: 1.5},
            usages={ResourceKind.MEMORY: 0.2},
        )
        # Billed on consumed 0.2 GB rounded to 0.25 GB, not the 1.5 GB allocation.
        assert billable[ResourceKind.MEMORY] == pytest.approx(0.25)


class TestInvoice:
    def test_total_includes_fee(self):
        model = simple_model()
        invoice = model.invoice(execution_s=1.0, allocations={ResourceKind.MEMORY: 1.0})
        assert invoice.total == pytest.approx(1.6e-5 + 2e-7, rel=1e-6)

    def test_fee_can_be_excluded(self):
        model = simple_model()
        invoice = model.invoice(
            execution_s=1.0, allocations={ResourceKind.MEMORY: 1.0}, include_invocation_fee=False
        )
        assert invoice.charge_for("invocation_fee") == 0.0

    def test_line_item_labels(self):
        model = simple_model()
        invoice = model.invoice(execution_s=1.0, allocations={ResourceKind.MEMORY: 1.0})
        labels = {item.label for item in invoice.line_items}
        assert "alloc:memory" in labels
        assert "invocation_fee" in labels

    def test_as_dict_contains_total(self):
        model = simple_model()
        invoice = model.invoice(execution_s=1.0, allocations={ResourceKind.MEMORY: 1.0})
        assert invoice.as_dict()["total"] == pytest.approx(invoice.total)

    def test_zero_duration_only_fee(self):
        model = simple_model()
        invoice = model.invoice(execution_s=0.0, allocations={ResourceKind.MEMORY: 1.0})
        assert invoice.total == pytest.approx(2e-7)


class TestValidation:
    def test_negative_granularity_rejected(self):
        with pytest.raises(ValueError):
            simple_model(time_granularity_s=-1.0)

    def test_negative_fee_rejected(self):
        with pytest.raises(ValueError):
            simple_model(invocation_fee=-1e-7)

    def test_describe_contains_table1_fields(self):
        description = simple_model().describe()
        assert description["billable_time"] == "execution"
        assert description["time_granularity_ms"] == pytest.approx(1.0)
        assert description["invocation_fee_usd"] == pytest.approx(2e-7)
