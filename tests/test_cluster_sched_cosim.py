"""Tests for the scheduler engine's participation in the cluster co-simulation."""

import dataclasses

import pytest

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig, ZoneConfig
from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy
from repro.platform.presets import get_platform_preset
from repro.sched.engine import SchedulerSim
from repro.sched.presets import scheduler_config_for
from repro.sched.task import SimTask, TaskPhase
from repro.sim.kernel import SimulationKernel
from repro.workloads.functions import PYAES_FUNCTION


def _deployments(count, rps=3.0, duration_s=10.0):
    preset = get_platform_preset("gcp_run_like")
    out = []
    for index in range(count):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=1.0)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        out.append(FunctionDeployment(function=function, platform=preset, rps=rps, duration_s=duration_s))
    return out


def _sched_tasks():
    return [
        SimTask(phases=[TaskPhase.compute(0.4)], arrival_s=0.1 * index, name=f"t{index}")
        for index in range(4)
    ]


def _sched_config(horizon_s=20.0):
    return scheduler_config_for("aws_lambda", vcpu_fraction=0.5, horizon_s=horizon_s)


class TestSchedulerAttach:
    def test_attached_engine_matches_standalone_exactly(self):
        """Co-simulating on the shared kernel must not perturb scheduler results."""
        standalone = SchedulerSim(_sched_config(), _sched_tasks()).run()
        engine = SchedulerSim(_sched_config(), _sched_tasks())
        simulator = ClusterSimulator(_deployments(2), scheduler=engine, seed=3)
        cosim = simulator.run().scheduler
        assert cosim is not None
        for name, expected in standalone.tasks.items():
            actual = cosim.tasks[name]
            assert actual.completion_s == expected.completion_s
            assert actual.cpu_consumed_s == expected.cpu_consumed_s
            assert actual.run_segments == expected.run_segments
            assert actual.throttle_segments == expected.throttle_segments
        assert cosim.bandwidth_stats == standalone.bandwidth_stats

    def test_attach_then_run_rejected(self):
        engine = SchedulerSim(_sched_config(), _sched_tasks())
        engine.attach(SimulationKernel())
        with pytest.raises(RuntimeError):
            engine.run()

    def test_double_attach_rejected(self):
        engine = SchedulerSim(_sched_config(), _sched_tasks())
        engine.attach(SimulationKernel())
        with pytest.raises(RuntimeError):
            engine.attach(SimulationKernel())

    def test_finalize_idempotent(self):
        engine = SchedulerSim(_sched_config(), _sched_tasks())
        kernel = SimulationKernel()
        engine.attach(kernel)
        kernel.run(until=25.0)
        first = engine.finalize()
        second = engine.finalize()
        assert first.tasks.keys() == second.tasks.keys()
        assert all(first.tasks[n].completion_s == second.tasks[n].completion_s for n in first.tasks)

    def test_engine_goes_quiet_past_horizon(self):
        """The attached engine must not keep the shared kernel alive forever."""
        engine = SchedulerSim(_sched_config(horizon_s=5.0), _sched_tasks())
        kernel = SimulationKernel()
        engine.attach(kernel)
        kernel.run()  # unbounded: terminates because the engine drains
        result = engine.finalize()
        assert all(task.finished for task in result.tasks.values())

    def test_summary_carries_scheduler_columns(self):
        engine = SchedulerSim(_sched_config(), _sched_tasks())
        simulator = ClusterSimulator(_deployments(1), scheduler=engine, seed=5)
        summary = simulator.run().summary()
        assert summary["sched_tasks"] == 4.0
        assert summary["sched_finished"] == 4.0
        assert summary["sched_cpu_consumed_s"] == pytest.approx(1.6)
        assert summary["sched_throttle_time_s"] > 0.0  # 0.5 vCPU quota throttles
        assert summary["sched_mean_duration_s"] > 0.4  # throttling stretches wall-clock

    def test_no_scheduler_omits_columns(self):
        summary = ClusterSimulator(_deployments(1), seed=5).run().summary()
        assert "sched_tasks" not in summary


class TestSingleKernelAcceptance:
    """Acceptance criterion: scheduler + fleet + backpressure + COST_FIT in one kernel."""

    def _simulator(self, seed=11):
        zones = (
            ZoneConfig(
                name="economy",
                host_spec=HostSpec(vcpus=2, memory_gb=4, hourly_cost_usd=0.2),
                max_hosts=1,
            ),
            ZoneConfig(
                name="premium",
                host_spec=HostSpec(vcpus=4, memory_gb=8, hourly_cost_usd=1.0),
                max_hosts=1,
            ),
        )
        return ClusterSimulator(
            _deployments(4, rps=2.0, duration_s=15.0),
            fleet_config=FleetConfig(
                zones=zones, policy=PlacementPolicy.COST_FIT, queue_depth=16
            ),
            billing_platform="gcp_run_request",
            scheduler=SchedulerSim(_sched_config(horizon_s=15.0), _sched_tasks()),
            seed=seed,
        )

    def test_full_stack_runs_and_reports_every_layer(self):
        summary = self._simulator().run().summary()
        assert summary["num_requests"] == 4 * 2.0 * 15.0
        assert summary["num_zones"] == 2.0
        assert summary["sched_finished"] == 4.0
        assert summary["cost_usd"] > 0.0
        assert summary["provider_cost_usd"] > 0.0
        # The deliberately tiny fleet exercises the queue, not the drop path.
        assert summary["queued"] > 0.0
        assert summary["unplaceable"] == 0.0
        assert summary["rejected_queue_full"] == 0.0
        assert summary["rejected_no_capacity"] == 0.0

    def test_full_stack_deterministic_given_seed(self):
        first = self._simulator().run().summary()
        second = self._simulator().run().summary()
        assert first == second

    def test_zero_capacity_cluster_queues_rather_than_drops(self):
        """Acceptance criterion: the zero-capacity fleet queues, never drops."""
        simulator = ClusterSimulator(
            _deployments(1, rps=1.0, duration_s=5.0),
            fleet_config=FleetConfig(
                host_spec=HostSpec(vcpus=2, memory_gb=4), max_hosts=0, queue_depth=100
            ),
            seed=2,
        )
        result = simulator.run()
        assert result.fleet.queued_total > 0
        assert len(result.fleet.unplaceable) == 0
        assert result.fleet.admitted == 0
