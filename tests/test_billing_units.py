"""Unit tests for billing units and rounding helpers."""

import pytest

from repro.billing.units import GB, MB, MILLISECONDS, Resource, ResourceKind, apply_minimum, round_up


class TestConstants:
    def test_mb_in_gb(self):
        assert 1024 * MB == pytest.approx(GB)

    def test_milliseconds(self):
        assert 100 * MILLISECONDS == pytest.approx(0.1)


class TestRoundUp:
    def test_rounds_up_to_next_multiple(self):
        assert round_up(0.101, 0.1) == pytest.approx(0.2)

    def test_exact_multiple_unchanged(self):
        assert round_up(0.3, 0.1) == pytest.approx(0.3)

    def test_near_exact_multiple_not_bumped(self):
        # 58 ms is already a whole number of 1 ms increments; binary floating
        # point error must not push it up to 59 ms.
        assert round_up(0.058, 0.001) == pytest.approx(0.058)

    def test_fractional_millisecond_rounds_up(self):
        # 58.19 ms at 1 ms granularity bills as 59 ms.
        assert round_up(0.05819, 0.001) == pytest.approx(0.059)

    def test_zero_value(self):
        assert round_up(0.0, 0.1) == 0.0

    def test_negative_granularity_disables_rounding(self):
        assert round_up(0.123, 0.0) == pytest.approx(0.123)
        assert round_up(0.123, -1.0) == pytest.approx(0.123)

    def test_value_below_granularity_rounds_to_granularity(self):
        assert round_up(0.0001, 0.001) == pytest.approx(0.001)

    def test_memory_rounding_128mb(self):
        assert round_up(0.2, 128 * MB) == pytest.approx(0.25)

    def test_large_values(self):
        assert round_up(1234.5678, 0.001) == pytest.approx(1234.568, abs=1e-6)


class TestApplyMinimum:
    def test_below_minimum_raised(self):
        assert apply_minimum(0.02, 0.1) == pytest.approx(0.1)

    def test_above_minimum_unchanged(self):
        assert apply_minimum(0.5, 0.1) == pytest.approx(0.5)

    def test_zero_stays_zero(self):
        assert apply_minimum(0.0, 0.1) == 0.0

    def test_no_minimum(self):
        assert apply_minimum(0.02, 0.0) == pytest.approx(0.02)


class TestResource:
    def test_valid(self):
        resource = Resource(ResourceKind.CPU, 0.5)
        assert resource.kind is ResourceKind.CPU

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Resource(ResourceKind.MEMORY, -1.0)
