"""Property-based determinism tests: same seed => byte-identical cluster runs and sweeps."""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
from repro.cluster.fleet import FleetConfig
from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy
from repro.platform.presets import get_platform_preset
from repro.sim.results import ResultStore
from repro.sim.sweep import build_grid, run_sweep
from repro.workloads.functions import PYAES_FUNCTION


def _run_cluster(seed, policy, queue_depth, arrival_process):
    preset = get_platform_preset("gcp_run_like")
    deployments = []
    for index in range(2):
        function = PYAES_FUNCTION.to_function_config(1.0, 2.0, init_duration_s=0.5)
        function = dataclasses.replace(function, name=f"fn-{index:02d}")
        deployments.append(
            FunctionDeployment(
                function=function,
                platform=preset,
                rps=3.0,
                duration_s=6.0,
                arrival_process=arrival_process,
            )
        )
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=HostSpec(vcpus=2, memory_gb=4),
            policy=policy,
            max_hosts=1,
            queue_depth=queue_depth,
            sample_interval_s=2.0,
        ),
        billing_platform="aws_lambda",
        seed=seed,
    )
    result = simulator.run()
    # Serialise everything observable -- summary row, the full fleet timeline,
    # and the admission-queue tail -- so "byte-identical" means exactly that.
    return json.dumps(
        {
            "summary": result.summary(),
            "timeline": result.fleet.timeline,
            "queue": [entry.sandbox_name for entry in result.fleet.queue],
            "unplaceable": result.fleet.unplaceable,
        },
        sort_keys=True,
    ).encode()


class TestClusterRunDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        policy=st.sampled_from(
            [
                PlacementPolicy.FIRST_FIT,
                PlacementPolicy.BEST_FIT,
                PlacementPolicy.WORST_FIT,
                PlacementPolicy.COST_FIT,
            ]
        ),
        queue_depth=st.sampled_from([0, 3, 16]),
        arrival_process=st.sampled_from(["constant", "poisson"]),
    )
    def test_same_seed_byte_identical(self, seed, policy, queue_depth, arrival_process):
        """Any ClusterSimulator configuration replays byte-identically from its seed."""
        first = _run_cluster(seed, policy, queue_depth, arrival_process)
        second = _run_cluster(seed, policy, queue_depth, arrival_process)
        assert first == second


class TestSweepDeterminism:
    AXES = {
        "queue_depth": (0, 4),
        "placement_policy": ("best_fit", "cost_fit"),
        "heterogeneity": ("homogeneous", "two_tier"),
    }
    COMMON = {"duration_s": 8.0, "num_functions": 3, "rps_per_function": 2.0}

    def test_backpressure_sweep_sequential_equals_parallel_bytes(self, tmp_path):
        """Acceptance criterion: seq vs parallel backpressure CSVs are byte-identical."""
        grid = build_grid(
            runner="repro.analysis.backpressure:backpressure_point",
            axes=self.AXES,
            common=self.COMMON,
            base_seed=17,
        )
        sequential = run_sweep(grid, processes=None)
        parallel = run_sweep(grid, processes=2)
        assert sequential == parallel
        seq_path, par_path = tmp_path / "seq.csv", tmp_path / "par.csv"
        sequential.to_csv(str(seq_path))
        parallel.to_csv(str(par_path))
        assert seq_path.read_bytes() == par_path.read_bytes()
        # The grid genuinely exercises backpressure: some point queued work.
        assert any(row["queued"] > 0 for row in sequential.rows)

    def test_backpressure_rows_round_trip_through_csv(self, tmp_path):
        grid = build_grid(
            runner="repro.analysis.backpressure:backpressure_point",
            axes={"queue_depth": (4,), "placement_policy": ("cost_fit",), "heterogeneity": ("two_tier",)},
            common=self.COMMON,
            base_seed=17,
        )
        store = run_sweep(grid)
        path = tmp_path / "rows.csv"
        store.to_csv(str(path))
        assert ResultStore.from_csv(str(path)) == store
