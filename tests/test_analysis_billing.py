"""Tests for the §2 analysis modules (Figures 2-5) against the paper's qualitative findings."""

import math

import pytest

from repro.analysis.coldstart import figure4_cdf_series, figure4_differences, figure4_summary
from repro.analysis.inflation import figure2_cdf_series, figure2_summary
from repro.analysis.rounding import (
    figure5_invocation_fee_equivalents,
    figure5_rounding_cdf_series,
    figure5_rounding_summary,
)
from repro.analysis.utilization import figure3_cdf_series, figure3_summary, utilization_scatter


class TestFigure2:
    @pytest.fixture(scope="class")
    def summary(self, small_trace):
        return figure2_summary(small_trace)

    def test_one_row_per_platform(self, summary):
        assert len(summary) == 5

    def test_gcp_highest_memory_inflation(self, summary):
        by_platform = {row["platform"]: row for row in summary}
        gcp = by_platform["gcp_run_request"]["memory_inflation"]
        for name, row in by_platform.items():
            if row["memory_inflation"] > 0:
                assert gcp >= row["memory_inflation"]

    def test_cloudflare_cpu_near_actual(self, summary):
        by_platform = {row["platform"]: row for row in summary}
        assert by_platform["cloudflare_workers"]["cpu_inflation"] == pytest.approx(1.0, abs=0.1)

    def test_inflation_magnitudes_in_paper_band(self, summary):
        """Inflation factors land in the single-digit multiples the paper reports (not 100x)."""
        for row in summary:
            for key in ("cpu_inflation", "memory_inflation"):
                if row[key] > 0:
                    assert row[key] < 10.0

    def test_cdf_series_structure(self, small_trace):
        series = figure2_cdf_series(small_trace, num_points=20)
        assert "actual_usage" in series["cpu"]
        assert "aws_lambda" in series["cpu"]
        assert "azure_consumption" in series["memory"]
        assert "azure_consumption" not in series["cpu"]  # Azure bills memory only
        for points in series["cpu"].values():
            assert len(points) <= 20

    def test_billable_cdf_dominates_actual(self, small_trace):
        """The billable-resource CDF sits to the right of the actual-usage CDF."""
        series = figure2_cdf_series(small_trace, num_points=30)
        actual_median = [v for v, p in series["cpu"]["actual_usage"] if p >= 0.5][0]
        gcp_median = [v for v, p in series["cpu"]["gcp_run_request"] if p >= 0.5][0]
        assert gcp_median > actual_median


class TestFigure3:
    def test_summary_metrics(self, small_trace):
        rows = {row["metric"]: row["measured"] for row in figure3_summary(small_trace)}
        assert 0.3 <= rows["cpu_below_half_fraction"] <= 0.95
        assert 0.4 <= rows["memory_below_half_fraction"] <= 0.95
        assert 0.25 <= rows["pearson"] <= 0.85
        assert 0.25 <= rows["spearman"] <= 0.85

    def test_most_requests_underutilize_resources(self, small_trace):
        """I3: functions rarely consume their full allocation."""
        rows = {row["metric"]: row["measured"] for row in figure3_summary(small_trace)}
        assert rows["cpu_below_half_fraction"] > 0.3
        assert rows["memory_below_half_fraction"] > 0.4

    def test_cdf_series(self, small_trace):
        series = figure3_cdf_series(small_trace)
        assert set(series) == {"cpu_utilization", "memory_utilization"}
        for points in series.values():
            values = [v for v, _ in points]
            assert all(0 <= v <= 1 for v in values)

    def test_scatter_downsampled(self, small_trace):
        scatter = utilization_scatter(small_trace, sample=100)
        assert len(scatter) <= 110


class TestFigure4:
    def test_differences_cover_all_cold_starts(self, small_trace):
        diffs = figure4_differences(small_trace)
        assert len(diffs["cpu"]) == len(small_trace.cold_starts)
        assert len(diffs["memory"]) == len(small_trace.cold_starts)

    def test_some_cold_starts_cost_more_than_their_requests(self, small_trace):
        """§2.4: a substantial fraction of cold starts are never amortised by later requests."""
        rows = figure4_summary(small_trace)
        for row in rows:
            assert 0.05 <= row["negative_or_zero_fraction"] <= 0.95

    def test_cdf_series_keys(self, small_trace):
        series = figure4_cdf_series(small_trace)
        assert set(series) == {"cpu", "memory"}

    def test_empty_trace(self):
        from repro.traces.schema import Trace

        assert figure4_summary(Trace([])) == []


class TestFigure5:
    def test_aws_fee_equivalent_96ms_at_128mb(self):
        """§2.5: the AWS invocation fee equals ~96 ms of billable time at 128 MB."""
        rows = figure5_invocation_fee_equivalents(vcpu_sweep=(0.072,))
        aws = [r for r in rows if r["platform"] == "aws_lambda"][0]
        assert aws["fee_equivalent_ms"] == pytest.approx(96.0, rel=0.03)

    def test_fee_equivalent_exceeds_mean_duration_for_small_functions(self, small_trace):
        """§2.5: for small allocations the fee is worth more than the average execution."""
        rows = figure5_invocation_fee_equivalents(vcpu_sweep=(0.072,))
        aws = [r for r in rows if r["platform"] == "aws_lambda"][0]
        mean_duration_ms = (
            sum(r.duration_s for r in small_trace) / len(small_trace.requests) * 1e3
        )
        assert aws["fee_equivalent_ms"] > mean_duration_ms

    def test_ibm_has_no_fee(self):
        rows = figure5_invocation_fee_equivalents(vcpu_sweep=(0.5,))
        ibm = [r for r in rows if r["platform"] == "ibm_code_engine"][0]
        assert ibm["fee_equivalent_ms"] == 0.0

    def test_fee_equivalent_decreases_with_allocation(self):
        rows = figure5_invocation_fee_equivalents(vcpu_sweep=(0.25, 1.0))
        aws = [r for r in rows if r["platform"] == "aws_lambda"]
        assert aws[0]["fee_equivalent_ms"] > aws[1]["fee_equivalent_ms"]

    def test_rounding_summary_orderings(self, small_trace):
        rows = {row["metric"]: row["measured"] for row in figure5_rounding_summary(small_trace)}
        # Rounded-up times exceed the raw mean execution time; the 100 ms
        # granularity inflates more than the 1 ms + cutoff scheme for means
        # computed over the same requests.
        assert rows["rounded_time_100ms_gran_ms"] >= rows["mean_execution_ms"]
        assert rows["rounded_time_1ms_gran_100ms_cutoff_ms"] >= rows["mean_execution_ms"] * 0.9
        assert rows["rounded_memory_128mb_gran_gb_s"] > 0

    def test_rounded_up_values_same_order_of_magnitude_as_execution(self, small_trace):
        """§2.5: rounding adds costs on the same order as the execution itself."""
        rows = {row["metric"]: row["measured"] for row in figure5_rounding_summary(small_trace)}
        assert rows["rounded_time_100ms_gran_ms"] < 10 * rows["mean_execution_ms"]

    def test_rounding_cdf_series(self, small_trace):
        series = figure5_rounding_cdf_series(small_trace, num_points=25)
        assert len(series) == 3
        values_100ms = [v for v, _ in series["rounded_time_100ms_gran_s"]]
        # Everything is rounded up to multiples of 100 ms.
        for value in values_100ms:
            assert (value * 10) == pytest.approx(round(value * 10), abs=1e-6)
