"""Tests for the §3 analysis modules (Figures 6, 8, 9 and Table 2)."""

import pytest

from repro.analysis.concurrency import (
    figure6_burst_sweep,
    figure6_long_run_summary,
    figure6_long_run_timeline,
    figure6_slowdown_summary,
)
from repro.analysis.keepalive import (
    figure9_cold_start_probabilities,
    figure9_probe_simulation,
    table2_keepalive_behavior,
)
from repro.analysis.overhead import figure8_overhead


class TestFigure6:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure6_burst_sweep(rps_sweep=(1, 10, 20), burst_duration_s=60.0)

    def test_rows_per_platform_and_rate(self, sweep):
        assert len(sweep) == 6

    def test_aws_duration_flat_across_rates(self, sweep):
        """Figure 6: the single-concurrency platform keeps execution duration stable."""
        aws = [r["mean_duration_ms"] for r in sweep if r["platform"] == "aws"]
        assert max(aws) / min(aws) < 1.1

    def test_gcp_duration_rises_with_rate(self, sweep):
        """Figure 6: the multi-concurrency platform slows down as the request rate grows."""
        gcp = sorted((r for r in sweep if r["platform"] == "gcp"), key=lambda r: r["rps"])
        assert gcp[-1]["mean_duration_ms"] > 2.0 * gcp[0]["mean_duration_ms"]

    def test_slowdown_summary(self, sweep):
        summary = {row["platform"]: row for row in figure6_slowdown_summary(sweep)}
        assert summary["gcp"]["max_slowdown"] > summary["aws"]["max_slowdown"]
        assert summary["aws"]["max_slowdown"] == pytest.approx(1.0, abs=0.1)

    def test_long_run_timeline_and_summary(self):
        timeline = figure6_long_run_timeline(rps=10.0, duration_s=120.0, bucket_s=20.0, seed=4)
        assert len(timeline) >= 5
        summary = figure6_long_run_summary(timeline, tail_start_s=80.0)
        # Scaling eventually kicks in and the steady state is faster than the peak.
        assert summary["max_instances"] > 1
        assert summary["steady_state_mean_duration_s"] <= summary["peak_mean_duration_s"]

    def test_long_run_empty_timeline(self):
        assert figure6_long_run_summary([]) == {}


class TestFigure8:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure8_overhead(num_requests=150)

    def test_all_configurations_present(self, rows):
        assert len(rows) == 6

    def test_http_server_has_highest_overhead(self, rows):
        """I7: HTTP-server platforms show the highest minimal-function duration."""
        by_arch = {}
        for row in rows:
            by_arch.setdefault(row["architecture"], []).append(row["mean_duration_ms"])
        assert max(by_arch["http_server"]) > max(by_arch["api_polling"]) > max(by_arch["code_execution"])

    def test_cloudflare_near_zero(self, rows):
        cloudflare = [r for r in rows if r["configuration"] == "cloudflare_workers"][0]
        assert cloudflare["mean_duration_ms"] < 0.5

    def test_gcp_small_allocation_slower_than_full(self, rows):
        by_config = {r["configuration"]: r for r in rows}
        assert by_config["gcp_0.08vcpu"]["mean_duration_ms"] > by_config["gcp_1vcpu"]["mean_duration_ms"]

    def test_aws_overhead_in_low_milliseconds(self, rows):
        by_config = {r["configuration"]: r for r in rows}
        assert by_config["aws_1769mb"]["mean_duration_ms"] == pytest.approx(1.2, abs=0.6)

    def test_p95_at_least_mean(self, rows):
        for row in rows:
            assert row["p95_duration_ms"] >= row["mean_duration_ms"] * 0.9


class TestFigure9AndTable2:
    def test_probability_rows_cover_grid(self):
        rows = figure9_cold_start_probabilities(idle_times_s=(60, 300, 600, 900, 1020))
        assert len(rows) == 3 * 5

    def test_probability_monotonic_in_idle_time(self):
        rows = figure9_cold_start_probabilities()
        platforms = {row["platform"] for row in rows}
        for platform in platforms:
            series = [r for r in rows if r["platform"] == platform]
            probabilities = [r["cold_start_probability"] for r in sorted(series, key=lambda r: r["idle_time_s"])]
            assert probabilities == sorted(probabilities)

    def test_keep_alive_ordering_matches_paper(self):
        """Figure 9: AWS ~300-360 s, Azure opportunistic and shorter, GCP the longest (~900 s)."""
        rows = figure9_cold_start_probabilities(idle_times_s=(330.0, 700.0))
        by_key = {(r["platform"], r["idle_time_s"]): r["cold_start_probability"] for r in rows}
        assert by_key[("azure_consumption_like", 330.0)] >= by_key[("aws_lambda_like", 330.0)]
        assert by_key[("gcp_run_like", 700.0)] < 1.0
        assert by_key[("aws_lambda_like", 700.0)] == 1.0

    def test_probe_simulation_matches_policy(self):
        rows = figure9_probe_simulation(
            platform_name="aws_lambda_like",
            idle_times_s=(120.0, 500.0),
            probes_per_idle_time=10,
        )
        by_idle = {r["idle_time_s"]: r for r in rows}
        assert by_idle[120.0]["measured_cold_start_probability"] == pytest.approx(0.0, abs=0.15)
        assert by_idle[500.0]["measured_cold_start_probability"] == pytest.approx(1.0, abs=0.15)

    def test_table2_rows(self):
        rows = {row["platform"]: row for row in table2_keepalive_behavior()}
        assert rows["aws_lambda_like"]["resource_behavior"] == "freeze_deallocate"
        assert rows["gcp_run_like"]["resource_behavior"] == "scale_down_cpu"
        assert rows["azure_consumption_like"]["resource_behavior"] == "full_allocation"
        assert rows["cloudflare_workers_like"]["resource_behavior"] == "code_cache"

    def test_table2_idle_resources(self):
        """Table 2: AWS deallocates, GCP keeps ~0.01 vCPU, Azure keeps the full allocation."""
        rows = {row["platform"]: row for row in table2_keepalive_behavior()}
        assert rows["aws_lambda_like"]["idle_vcpus_per_1vcpu_sandbox"] == 0.0
        assert rows["gcp_run_like"]["idle_vcpus_per_1vcpu_sandbox"] == pytest.approx(0.01)
        assert rows["azure_consumption_like"]["idle_vcpus_per_1vcpu_sandbox"] == pytest.approx(1.0)
