"""Unit tests for the statistics helpers."""

import math

import numpy as np
import pytest

from repro.traces.statistics import (
    cdf_points,
    describe,
    empirical_cdf,
    geometric_mean,
    histogram,
    pearson_correlation,
    quantile,
    spearman_correlation,
)


class TestEmpiricalCdf:
    def test_sorted_and_normalised(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == pytest.approx(1.0)
        assert probs[0] == pytest.approx(1 / 3)

    def test_empty_input(self):
        values, probs = empirical_cdf([])
        assert values.size == 0
        assert probs.size == 0

    def test_monotonic(self):
        _, probs = empirical_cdf(np.random.default_rng(0).normal(size=100))
        assert np.all(np.diff(probs) >= 0)


class TestCdfPoints:
    def test_downsampling(self):
        points = cdf_points(list(range(1000)), num_points=10)
        assert len(points) == 10
        assert points[-1][1] == pytest.approx(1.0)

    def test_small_input_not_padded(self):
        points = cdf_points([1.0, 2.0], num_points=10)
        assert len(points) == 2

    def test_invalid_num_points(self):
        with pytest.raises(ValueError):
            cdf_points([1.0], num_points=0)

    def test_empty(self):
        assert cdf_points([]) == []


class TestQuantile:
    def test_median(self):
        assert quantile([1, 2, 3, 4, 5], 0.5) == 3

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            quantile([1, 2], 1.5)

    def test_empty_is_nan(self):
        assert math.isnan(quantile([], 0.5))


class TestDescribe:
    def test_keys_present(self):
        stats = describe([1.0, 2.0, 3.0])
        for key in ("count", "mean", "std", "min", "p5", "p50", "p95", "p99", "max"):
            assert key in stats
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2.0)

    def test_empty_all_nan(self):
        stats = describe([])
        assert all(math.isnan(v) for v in stats.values())


class TestCorrelations:
    def test_perfect_positive_pearson(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative_pearson(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_nan(self):
        assert math.isnan(pearson_correlation([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_spearman_monotonic_nonlinear(self):
        x = [1, 2, 3, 4, 5]
        y = [1, 8, 27, 64, 125]  # monotonic but nonlinear
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        rho = spearman_correlation([1, 2, 2, 3], [1, 2, 2, 3])
        assert rho == pytest.approx(1.0)

    def test_spearman_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_correlation([1], [1, 2])


class TestHistogramAndGeomean:
    def test_histogram_counts_sum(self):
        bins = histogram(list(range(100)), bins=10)
        assert sum(count for _, _, count in bins) == 100

    def test_histogram_empty(self):
        assert histogram([]) == []

    def test_geometric_mean(self):
        assert geometric_mean([1, 10, 100]) == pytest.approx(10.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))
