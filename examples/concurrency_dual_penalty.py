#!/usr/bin/env python3
"""The dual penalty of the multi-concurrency serving model (paper §3.1, Figure 6).

Deploys the same compute-intensive function (PyAES, ~160 ms CPU per request at
1 vCPU) on a single-concurrency platform (AWS-Lambda-like) and a
multi-concurrency platform (GCP-Cloud-Run-like, concurrency limit 80), sends
short traffic bursts at increasing request rates, and reports both the mean
execution duration and the resulting per-request cost: slower execution under
contention directly translates into a larger wall-clock-billed invoice.

Run with::

    python examples/concurrency_dual_penalty.py
"""

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.core.report import render_table
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import PYAES_FUNCTION
from repro.workloads.traffic import constant_rate_arrivals

RPS_SWEEP = (1, 4, 8, 15, 30)
BURST_DURATION_S = 120.0


def mean_cost_per_request(metrics, billing_platform, alloc_vcpus, alloc_memory_gb):
    """Bill every simulated request and return the mean cost in USD."""
    calculator = BillingCalculator(billing_platform)
    costs = []
    for outcome in metrics.requests:
        inputs = InvocationBillingInput(
            execution_s=outcome.execution_duration_s,
            init_s=outcome.init_duration_s,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=PYAES_FUNCTION.cpu_time_s,
            used_memory_gb=PYAES_FUNCTION.used_memory_gb,
        )
        costs.append(calculator.bill(inputs).invoice.total)
    return sum(costs) / len(costs) if costs else float("nan")


def main() -> None:
    function = PYAES_FUNCTION.to_function_config(alloc_vcpus=1.0, alloc_memory_gb=2.0, init_duration_s=1.5)
    scenarios = {
        "aws_single_concurrency": (get_platform_preset("aws_lambda_like"), PlatformName.AWS_LAMBDA),
        "gcp_multi_concurrency": (get_platform_preset("gcp_run_like"), PlatformName.GCP_RUN_REQUEST),
    }
    rows = []
    for label, (preset, billing) in scenarios.items():
        for rps in RPS_SWEEP:
            simulator = PlatformSimulator(preset, function, seed=1)
            metrics = simulator.run(constant_rate_arrivals(rps, BURST_DURATION_S))
            rows.append(
                {
                    "platform": label,
                    "rps": rps,
                    "mean_duration_ms": metrics.mean_execution_duration_s() * 1e3,
                    "p95_duration_ms": metrics.percentile_execution_duration_s(0.95) * 1e3,
                    "max_instances": metrics.max_instances(),
                    "mean_cost_per_request_usd": mean_cost_per_request(metrics, billing, 1.0, 2.0),
                }
            )
    print(render_table(rows, title="Figure 6 scenario -- execution duration and cost vs request rate"))

    aws_base = [r for r in rows if r["platform"] == "aws_single_concurrency"][0]
    gcp_rows = [r for r in rows if r["platform"] == "gcp_multi_concurrency"]
    worst = max(gcp_rows, key=lambda r: r["mean_duration_ms"])
    print(
        f"\nDual penalty at {worst['rps']} RPS on the multi-concurrency platform: "
        f"{worst['mean_duration_ms'] / gcp_rows[0]['mean_duration_ms']:.1f}x slower than its own 1 RPS baseline "
        f"and {worst['mean_cost_per_request_usd'] / aws_base['mean_cost_per_request_usd']:.1f}x the per-request cost "
        "of the single-concurrency deployment."
    )


if __name__ == "__main__":
    main()
