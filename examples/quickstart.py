#!/usr/bin/env python3
"""Quickstart: from a synthetic trace to billable-resource inflation and per-platform costs.

This walks the three layers of the paper top-down in ~60 lines:

1. generate a Huawei-like synthetic request trace,
2. bill every request under the Table 1 billing models and measure how far the
   billable resources exceed actual consumption (Figure 2),
3. price a single workload (FunctionBench's PyAES) on several platforms with
   serving-architecture and OS-scheduling effects applied.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.inflation import figure2_summary
from repro.billing.catalog import PlatformName
from repro.core.cost_model import CostModel
from repro.core.report import render_table
from repro.platform.presets import get_platform_preset
from repro.traces.calibration import check_calibration
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.workloads.functions import PYAES_FUNCTION


def main() -> None:
    # 1. A small synthetic production trace (deterministic given the seed).
    trace = TraceGenerator(TraceGeneratorConfig(num_requests=10_000, num_functions=100, seed=1)).generate()
    print(f"Generated {len(trace)} requests from {len(trace.functions)} functions\n")

    calibration = [
        {"statistic": name, **{k: entry[k] for k in ("measured", "paper", "ok")}}
        for name, entry in check_calibration(trace).items()
    ]
    print(render_table(calibration, title="Trace calibration against the paper's reported statistics"))
    print()

    # 2. Billable-resource inflation under the Table 1 billing models (Figure 2).
    inflation = figure2_summary(trace)
    print(
        render_table(
            inflation,
            columns=["platform", "cpu_inflation", "memory_inflation", "paper_cpu_inflation", "paper_memory_inflation"],
            title="Billable resources vs actual consumption (aggregate inflation factors)",
        )
    )
    print()

    # 3. Price one workload across platforms, with serving + scheduling effects.
    rows = []
    configurations = [
        (PlatformName.AWS_LAMBDA, "aws_lambda_like", "aws_lambda"),
        (PlatformName.GCP_RUN_REQUEST, "gcp_run_like", "gcp_run_functions"),
        (PlatformName.AZURE_CONSUMPTION, "azure_consumption_like", None),
        (PlatformName.CLOUDFLARE_WORKERS, "cloudflare_workers_like", None),
    ]
    for billing, serving_name, sched in configurations:
        model = CostModel(billing, serving_platform=get_platform_preset(serving_name), scheduling_provider=sched)
        report = model.invocation_cost(PYAES_FUNCTION, alloc_vcpus=1.0, alloc_memory_gb=1.769)
        rows.append(
            {
                "platform": billing.value,
                "execution_ms": report.execution_duration_s * 1e3,
                "cost_per_million_usd": report.cost_per_million_invocations,
                "invocation_fee_share": report.invocation_fee_share,
            }
        )
    print(render_table(rows, title="PyAES (160 ms CPU) at 1 vCPU: cost per million invocations"))


if __name__ == "__main__":
    main()
