#!/usr/bin/env python3
"""Per-layer cost decomposition, right-sizing, and the §4.3 intermittent-execution exploit.

This example shows the "actionables" side of the paper (§5): given a workload,

1. decompose one invocation's cost into the contribution of each layer
   (allocation inflation, scheduling effects, serving overhead, billing
   rounding, invocation fee) and rank the cost drivers,
2. search resource allocations with quantization awareness to find the
   cheapest configuration meeting a latency target,
3. evaluate the intermittent-execution exploit: large billable-GB-second
   savings, but a higher actual bill once invocation fees are counted.

Run with::

    python examples/cost_decomposition_rightsizing.py
"""

from repro.billing.catalog import PlatformName
from repro.core.decomposition import decompose_invocation_cost
from repro.core.exploit import evaluate_intermittent_execution
from repro.core.report import render_table
from repro.core.rightsizing import RightsizingAdvisor
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import PYAES_FUNCTION, VIDEO_PROCESSING_FUNCTION


def main() -> None:
    # 1. Cost decomposition on a GCP-like deployment of PyAES at 0.5 vCPU.
    decomposition = decompose_invocation_cost(
        PYAES_FUNCTION,
        alloc_vcpus=0.5,
        alloc_memory_gb=1.0,
        billing_platform=PlatformName.GCP_RUN_REQUEST,
        serving_platform=get_platform_preset("gcp_run_like"),
        scheduling_provider="gcp_run_functions",
    )
    shares = [{"layer": layer, "share_of_cost": share} for layer, share in decomposition.shares().items()]
    print(render_table(shares, title="Per-layer cost decomposition (PyAES, GCP-like, 0.5 vCPU)"))
    print(f"Ranked cost drivers (excluding the usage baseline): {', '.join(decomposition.ranked_drivers())}\n")

    # 2. Quantization-aware right-sizing on AWS.
    advisor = RightsizingAdvisor(PlatformName.AWS_LAMBDA, scheduling_provider="aws_lambda")
    recommendation = advisor.evaluate(
        PYAES_FUNCTION,
        vcpu_candidates=[0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 0.85, 1.0],
        latency_target_s=0.6,
    )
    candidates = [
        {
            "vcpus": candidate.alloc_vcpus,
            "duration_ms": candidate.execution_duration_s * 1e3,
            "cost_per_invocation_usd": candidate.cost_per_invocation,
            "meets_target": candidate.meets_latency_target,
        }
        for candidate in recommendation.candidates
    ]
    print(render_table(candidates, title="Right-sizing sweep (PyAES on AWS, 600 ms latency target)"))
    best = recommendation.best
    print(
        f"Cheapest allocation meeting the target: {best.alloc_vcpus} vCPUs "
        f"({best.execution_duration_s * 1e3:.0f} ms, ${best.cost_per_invocation:.2e} per invocation); "
        f"jitter risk near this allocation: {advisor.jitter_risk(PYAES_FUNCTION, best.alloc_vcpus):.2f}\n"
    )

    # 3. The intermittent-execution exploit on the video-processing workload.
    rows = []
    for vcpus in (0.125, 0.25, 0.5):
        plan = evaluate_intermittent_execution(VIDEO_PROCESSING_FUNCTION, alloc_vcpus=vcpus, alloc_memory_gb=0.5)
        rows.append(
            {
                "alloc_vcpus": vcpus,
                "bursts": plan.num_bursts,
                "gb_seconds_saved": plan.billable_gb_seconds_reduction,
                "bill_change": plan.cost_change,
            }
        )
    print(render_table(rows, title="§4.3 exploit -- GB-second savings vs actual bill change (AWS billing)"))
    print(
        "\nThe exploit reduces billable GB-seconds (the capacity cost the provider under-accounts), "
        "but the fixed per-invocation fee makes the real bill larger -- which is exactly why providers "
        "keep invocation fees and coarse billing granularity."
    )


if __name__ == "__main__":
    main()
