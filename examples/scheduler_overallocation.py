#!/usr/bin/env python3
"""CPU overallocation and quantized scheduling (paper §4, Figures 10-12 and Table 3).

Runs a compute-bound function on the OS-scheduling simulator with AWS-, GCP-
and IBM-like CPU bandwidth-control settings:

1. sweeps the fractional vCPU allocation and compares the measured duration
   against the ideal 1/allocation expectation (Figure 10's overallocation and
   quantization jumps),
2. profiles throttling from user space with the paper's Algorithm 1 and prints
   the throttle interval / obtained-CPU distributions (Figure 12),
3. infers each provider's bandwidth period and timer frequency from the
   observed profiles (Table 3).

Run with::

    python examples/scheduler_overallocation.py
"""

from repro.analysis.overallocation import figure10_allocation_sweep, figure10_jump_positions
from repro.analysis.throttle import (
    infer_scheduling_parameters_by_matching,
    profile_configuration,
)
from repro.core.report import render_table
from repro.sched.presets import PROVIDER_SCHED_PRESETS


def main() -> None:
    # 1. Figure 10: allocation sweep on the AWS-like configuration.
    sweep = figure10_allocation_sweep(provider="aws_lambda", cpu_time_s=0.016, samples_per_point=10, seed=7)
    print(
        render_table(
            sweep,
            columns=[
                "memory_mb",
                "vcpu_fraction",
                "empirical_mean_duration_ms",
                "expected_duration_ms",
                "overallocation_ratio",
            ],
            title="Figure 10 -- duration vs fractional allocation (AWS-like, 16 ms CPU task)",
        )
    )
    jumps = figure10_jump_positions(provider="aws_lambda", cpu_time_s=0.016)
    print()
    print(render_table(jumps, title="Predicted quantization jumps (harmonic sequence, ~1400 MB x 1/n)"))

    # 2 + 3. Figure 12 / Table 3: profile each provider and infer its settings.
    rows = []
    for provider, preset in PROVIDER_SCHED_PRESETS.items():
        profile = profile_configuration(
            vcpu_fraction=0.25,
            period_s=preset.period_s,
            tick_hz=preset.tick_hz,
            exec_duration_s=4.0,
            invocations=8,
            seed=13,
        )
        summary = profile.summary()
        inferred = infer_scheduling_parameters_by_matching(profile, vcpu_fraction=0.25)
        rows.append(
            {
                "provider": provider,
                "mean_throttle_interval_ms": summary["mean_throttle_interval_s"] * 1e3,
                "mean_obtained_cpu_ms": summary["mean_obtained_cpu_s"] * 1e3,
                "cpu_share_obtained": summary["cpu_share"],
                "inferred_period_ms": inferred["period_ms"],
                "inferred_tick_hz": inferred["tick_hz"],
                "actual_period_ms": preset.period_s * 1e3,
                "actual_tick_hz": preset.tick_hz,
            }
        )
    print()
    print(render_table(rows, title="Figure 12 / Table 3 -- throttle profiles and inferred scheduling parameters"))
    print(
        "\nNote how every provider grants slightly more CPU than the 0.25 vCPU limit "
        "(cpu_share_obtained > 0.25): lagged tick-based accounting lets short bursts overrun the quota."
    )


if __name__ == "__main__":
    main()
