#!/usr/bin/env python3
"""Platform selection, billing-mode choice, and keep-alive cost (paper §5 actionables).

Given a workload (or a whole trace), this example:

1. ranks platforms by projected monthly cost, with billing, serving-overhead
   and OS-scheduling effects applied,
2. finds the utilisation level at which switching from request-based to
   instance-based billing (provisioned concurrency) pays off,
3. compares the provider-side keep-alive cost and cold-start probability of
   the AWS-, GCP- and Azure-like keep-alive policies for a bursty traffic
   pattern,
4. evaluates merging a chain of small functions to amortise invocation fees.

Run with::

    python examples/platform_selection.py
"""

import numpy as np

from repro.billing.instance_billing import break_even_utilization, compare_request_vs_instance_billing
from repro.core.advisor import PlatformSelectionAdvisor, evaluate_function_merging
from repro.core.report import render_table
from repro.platform.keepalive_cost import keepalive_policy_comparison
from repro.platform.presets import get_platform_preset
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.workloads.functions import PYAES_FUNCTION, WorkloadSpec, get_workload


def main() -> None:
    advisor = PlatformSelectionAdvisor()

    # 1. Rank platforms for two very different workloads.
    for workload, vcpus, memory in ((PYAES_FUNCTION, 1.0, 1.769), (get_workload("io_bound"), 0.5, 0.5)):
        rankings = [r.as_row() for r in advisor.rank(workload, vcpus, memory, requests_per_month=10e6)]
        print(render_table(rankings, title=f"Platform ranking for '{workload.name}' at 10M requests/month"))
        print()

    # ... and for an empirical trace mix.
    trace = TraceGenerator(TraceGeneratorConfig(num_requests=5_000, num_functions=50, seed=3)).generate()
    trace_rankings = [r.as_row() for r in advisor.rank_for_trace(trace, requests_per_month=50e6)]
    print(render_table(trace_rankings, title="Platform ranking for the synthetic trace mix (50M requests/month)"))
    print()

    # 2. Request-based vs instance-based billing break-even.
    rows = []
    for rph in (100, 2_000, 10_000, 15_000):
        rows.append(compare_request_vs_instance_billing(rph, 0.2, 1.0, 2.0).as_row())
    print(render_table(rows, title="Request-based vs instance-based billing (GCP, 200 ms requests)"))
    breakeven = break_even_utilization(0.2, 1.0, 2.0)
    print(f"Instance-based billing wins above ~{breakeven:.0%} instance utilisation\n")

    # 3. Keep-alive cost vs cold starts for a bursty inter-arrival pattern.
    rng = np.random.default_rng(1)
    idle_gaps = rng.exponential(180.0, size=200).tolist()
    policies = {
        "aws_like_freeze": get_platform_preset("aws_lambda_like").keep_alive,
        "gcp_like_cpu_scale_down": get_platform_preset("gcp_run_like").keep_alive,
        "azure_like_full_alloc": get_platform_preset("azure_consumption_like").keep_alive,
    }
    estimates = [e.as_row() for e in keepalive_policy_comparison(policies, idle_gaps, 1.0, 2.0).values()]
    print(render_table(estimates, title="Keep-alive: provider-side cost vs cold-start probability"))
    print()

    # 4. Merging a chain of small functions to amortise invocation fees.
    stage = WorkloadSpec(name="pipeline_stage", cpu_time_s=0.012, used_memory_gb=0.06)
    merge = evaluate_function_merging([stage] * 6, alloc_vcpus=0.25, alloc_memory_gb=0.5)
    print(
        f"Merging 6 chained 12 ms stages into one function saves {merge.saving:.0%} per end-to-end request "
        f"(${merge.separate_cost:.2e} -> ${merge.merged_cost:.2e})."
    )


if __name__ == "__main__":
    main()
