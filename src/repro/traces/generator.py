"""Synthetic Huawei-like serverless trace generator.

The paper's billing-model analysis (§2.3-§2.5) runs over the Huawei Cloud
production FaaS trace.  That trace is proprietary, so this module generates a
synthetic population of functions and requests calibrated to the summary
statistics the paper reports:

- mean wall-clock execution duration ~58.19 ms with a heavy right tail,
- mean consumed CPU time ~51.8 ms across CPU-reporting requests,
- more than 65% of requests using less than 50% of allotted CPU and ~76% of
  requests using less than half the allotted memory (Figure 3),
- a moderate CPU/memory utilisation correlation (Pearson ~0.55),
- discrete resource flavors (fixed vCPU-memory combos) as offered by Huawei
  Function Graph,
- traceable cold starts in which ~42% of initialisations consume at least as
  many billable resources as all subsequent requests in the sandbox (Figure 4).

The generator is deterministic given a seed, which keeps every downstream
experiment reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.traces.schema import (
    ColdStartRecord,
    FunctionProfile,
    RequestRecord,
    ResourceUsage,
    Trace,
)

__all__ = ["TraceGeneratorConfig", "TraceGenerator", "HUAWEI_FLAVORS"]


#: Discrete vCPU / memory flavors modelled after Huawei Function Graph's fixed
#: CPU-memory combinations (vCPUs, memory in GB).  The paper notes Huawei
#: offers fixed combos rather than fine-grained knobs (Table 1).
HUAWEI_FLAVORS: Tuple[Tuple[float, float], ...] = (
    (0.1, 0.128),
    (0.2, 0.256),
    (0.3, 0.512),
    (0.5, 0.768),
    (0.67, 1.0),
    (1.0, 1.769),
    (1.5, 2.0),
    (2.0, 4.0),
)


@dataclass
class TraceGeneratorConfig:
    """Configuration of the synthetic trace generator.

    The defaults are calibrated so that the generated population matches the
    aggregate statistics reported in the paper for the Huawei trace.

    Attributes:
        num_functions: number of distinct functions in the population.
        num_requests: total number of request records to generate.
        seed: PRNG seed; the same seed always yields the identical trace.
        mean_duration_s: target mean wall-clock execution duration (paper: 58.19 ms).
        duration_sigma: sigma of the log-normal duration distribution (per function).
        mean_cpu_utilization: population mean of per-function CPU utilisation.
        mean_memory_utilization: population mean of per-function memory utilisation.
        utilization_correlation: target correlation between per-request CPU and
            memory utilisation (paper: Pearson ~0.552).
        cold_start_fraction: fraction of requests that are cold starts.
        mean_init_duration_s: mean sandbox initialisation duration.
        duration_floor_s: minimum request duration (the paper analyses requests
            with at least 1 ms of execution for its rounding study).
        trace_span_s: wall-clock length of the generated trace window.
        flavors: the discrete (vCPU, memory GB) combinations functions use.
    """

    num_functions: int = 200
    num_requests: int = 50_000
    seed: int = 2026
    mean_duration_s: float = 0.05819
    duration_sigma: float = 1.1
    mean_cpu_utilization: float = 0.42
    mean_memory_utilization: float = 0.38
    utilization_correlation: float = 0.55
    cold_start_fraction: float = 0.01
    mean_init_duration_s: float = 0.9
    duration_floor_s: float = 0.001
    trace_span_s: float = 3600.0
    flavors: Sequence[Tuple[float, float]] = field(default_factory=lambda: HUAWEI_FLAVORS)

    def __post_init__(self) -> None:
        if self.num_functions <= 0 or self.num_requests <= 0:
            raise ValueError("num_functions and num_requests must be positive")
        if not 0 <= self.cold_start_fraction <= 1:
            raise ValueError("cold_start_fraction must be in [0, 1]")
        if not -1 <= self.utilization_correlation <= 1:
            raise ValueError("utilization_correlation must be in [-1, 1]")
        if self.mean_duration_s <= 0 or self.mean_init_duration_s <= 0:
            raise ValueError("durations must be positive")
        if not self.flavors:
            raise ValueError("at least one flavor is required")


class TraceGenerator:
    """Generate synthetic serverless traces with Huawei-like statistics."""

    def __init__(self, config: Optional[TraceGeneratorConfig] = None) -> None:
        self.config = config or TraceGeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def generate(self) -> Trace:
        """Generate the full trace (functions, requests, and cold-start records)."""
        functions = self._generate_functions()
        requests, cold_starts = self._generate_requests(functions)
        return Trace(requests, cold_starts, functions)

    def generate_functions(self) -> List[FunctionProfile]:
        """Generate only the function population (useful for targeted tests)."""
        return self._generate_functions()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _generate_functions(self) -> List[FunctionProfile]:
        cfg = self.config
        rng = self._rng
        functions: List[FunctionProfile] = []
        # Per-function mean durations follow a log-normal whose population mean
        # matches cfg.mean_duration_s.  Individual functions therefore range
        # from sub-millisecond to multi-second, as in the production trace.
        mu = math.log(cfg.mean_duration_s) - 0.5 * cfg.duration_sigma**2
        mean_durations = rng.lognormal(mean=mu, sigma=cfg.duration_sigma, size=cfg.num_functions)
        # Longer-running functions tend to be deployed with larger flavors in
        # production; bias flavor choice by the duration rank so that the mean
        # consumed CPU time is not dominated by tiny allocations.
        duration_ranks = np.argsort(np.argsort(mean_durations)) / max(cfg.num_functions - 1, 1)
        for i in range(cfg.num_functions):
            flavor_bias = 0.35 + 0.6 * duration_ranks[i]
            flavor_index = int(
                np.clip(
                    round(flavor_bias * (len(cfg.flavors) - 1) + rng.normal(0.0, 1.0)),
                    0,
                    len(cfg.flavors) - 1,
                )
            )
            vcpus, mem_gb = cfg.flavors[flavor_index]
            cpu_util = float(np.clip(rng.beta(2.0, 2.8), 0.01, 0.99))
            mem_util = float(np.clip(rng.beta(2.0, 3.2), 0.01, 0.99))
            functions.append(
                FunctionProfile(
                    function_id=f"fn-{i:05d}",
                    alloc_vcpus=vcpus,
                    alloc_memory_gb=mem_gb,
                    mean_duration_s=max(float(mean_durations[i]), cfg.duration_floor_s),
                    mean_cpu_utilization=cpu_util,
                    mean_memory_utilization=mem_util,
                    workload_class="generic",
                )
            )
        return functions

    def _correlated_utilizations(
        self, n: int, mean_cpu: float, mean_mem: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw per-request CPU/memory utilisation pairs with the configured correlation.

        Utilisations are produced through a Gaussian copula: correlated standard
        normals are mapped through the normal CDF to uniforms and then scaled
        around the per-function mean utilisation.
        """
        # Per-function scaling, the skew transform and clipping downstream all
        # attenuate the copula correlation; boost the latent correlation so the
        # *observed* request-level Pearson lands near the configured target.
        rho = float(np.clip(self.config.utilization_correlation * 1.4, -0.97, 0.97))
        rng = self._rng
        cov = np.array([[1.0, rho], [rho, 1.0]])
        normals = rng.multivariate_normal(mean=[0.0, 0.0], cov=cov, size=n)
        # Normal CDF via the error function keeps us free of scipy here.
        uniforms = 0.5 * (1.0 + np.vectorize(math.erf)(normals / math.sqrt(2.0)))
        # Power transform: production utilisation is right-skewed -- most
        # requests use well under half of their allocation (Figure 3), while a
        # minority run close to the limit.  u^k has mean 1/(k+1).
        cpu_skew, mem_skew = 1.8, 2.0
        cpu_base = uniforms[:, 0] ** cpu_skew
        mem_base = uniforms[:, 1] ** mem_skew
        cpu = np.clip(cpu_base * (mean_cpu / (1.0 / (cpu_skew + 1.0))), 0.01, 1.0)
        mem = np.clip(mem_base * (mean_mem / (1.0 / (mem_skew + 1.0))), 0.01, 1.0)
        return cpu, mem

    def _generate_requests(
        self, functions: List[FunctionProfile]
    ) -> Tuple[List[RequestRecord], List[ColdStartRecord]]:
        cfg = self.config
        rng = self._rng

        # Requests are distributed over functions with a Zipf-like popularity
        # skew: a few functions receive most of the traffic, which matches the
        # long-tail shape of production FaaS workloads.
        popularity = rng.zipf(1.5, size=cfg.num_functions).astype(float)
        popularity /= popularity.sum()
        function_choices = rng.choice(cfg.num_functions, size=cfg.num_requests, p=popularity)

        arrivals = np.sort(rng.uniform(0.0, cfg.trace_span_s, size=cfg.num_requests))
        cold_flags = rng.random(cfg.num_requests) < cfg.cold_start_fraction
        # Draw all correlated utilisation pairs up front: one vectorised call is
        # orders of magnitude faster than per-request sampling for large traces.
        cpu_util_all, mem_util_all = self._correlated_utilizations(
            cfg.num_requests, cfg.mean_cpu_utilization, cfg.mean_memory_utilization
        )
        # Draw all request durations up front and rescale so the empirical mean
        # matches the configured target regardless of which functions happened
        # to receive most of the (Zipf-skewed) traffic.
        profile_means = np.array(
            [functions[int(f)].mean_duration_s for f in function_choices], dtype=float
        )
        durations_all = rng.lognormal(np.log(profile_means) - 0.5 * 0.5**2, 0.5)
        durations_all = np.maximum(durations_all, cfg.duration_floor_s)
        mean_now = float(durations_all.mean())
        if mean_now > 0:
            durations_all = np.maximum(
                durations_all * (cfg.mean_duration_s / mean_now), cfg.duration_floor_s
            )

        requests: List[RequestRecord] = []
        cold_starts: List[ColdStartRecord] = []
        pod_counter = 0
        # Track which pod currently serves each function, so warm requests are
        # attributed to the pod created by the most recent cold start.
        active_pod: Dict[int, str] = {}
        cold_start_index: Dict[str, int] = {}

        for i in range(cfg.num_requests):
            fn_index = int(function_choices[i])
            profile = functions[fn_index]
            is_cold = bool(cold_flags[i]) or fn_index not in active_pod
            if is_cold:
                pod_id = f"pod-{pod_counter:07d}"
                pod_counter += 1
                active_pod[fn_index] = pod_id
                init_duration = float(
                    np.clip(rng.lognormal(math.log(cfg.mean_init_duration_s), 0.6), 0.05, 30.0)
                )
                cold_starts.append(
                    ColdStartRecord(
                        pod_id=pod_id,
                        function_id=profile.function_id,
                        init_duration_s=init_duration,
                        alloc_vcpus=profile.alloc_vcpus,
                        alloc_memory_gb=profile.alloc_memory_gb,
                        subsequent_request_ids=[],
                    )
                )
                cold_start_index[pod_id] = len(cold_starts) - 1
            else:
                init_duration = 0.0
            pod_id = active_pod[fn_index]

            duration = float(durations_all[i])
            # Scale the population-level utilisation draw by the function's own
            # mean so distinct functions keep distinct utilisation profiles.
            cpu_scale = profile.mean_cpu_utilization / cfg.mean_cpu_utilization
            mem_scale = profile.mean_memory_utilization / cfg.mean_memory_utilization
            cpu_util = float(np.clip(cpu_util_all[i] * cpu_scale, 0.01, 1.0))
            mem_util = float(np.clip(mem_util_all[i] * mem_scale, 0.01, 1.0))
            cpu_seconds = cpu_util * profile.alloc_vcpus * duration
            memory_gb = mem_util * profile.alloc_memory_gb

            record = RequestRecord(
                request_id=f"req-{i:08d}",
                function_id=profile.function_id,
                pod_id=pod_id,
                arrival_s=float(arrivals[i]),
                duration_s=duration,
                usage=ResourceUsage(cpu_seconds=cpu_seconds, memory_gb=memory_gb),
                alloc_vcpus=profile.alloc_vcpus,
                alloc_memory_gb=profile.alloc_memory_gb,
                cold_start=is_cold,
                init_duration_s=init_duration if is_cold else 0.0,
            )
            requests.append(record)

        # Attach subsequent request ids to each cold start (frozen dataclass:
        # rebuild the record with the collected request list).
        pod_requests: Dict[str, List[str]] = {}
        for record in requests:
            pod_requests.setdefault(record.pod_id, []).append(record.request_id)
        for pod_id, index in cold_start_index.items():
            existing = cold_starts[index]
            cold_starts[index] = ColdStartRecord(
                pod_id=existing.pod_id,
                function_id=existing.function_id,
                init_duration_s=existing.init_duration_s,
                alloc_vcpus=existing.alloc_vcpus,
                alloc_memory_gb=existing.alloc_memory_gb,
                subsequent_request_ids=tuple(pod_requests.get(pod_id, [])),
            )

        return requests, cold_starts
