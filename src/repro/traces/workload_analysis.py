"""Per-function workload characterisation of a trace.

Supports the §5 actionables ("conduct trace-based analysis to pick an
appropriate platform") and the keep-alive analysis: per-function request
counts, duration/utilisation statistics, inter-arrival and idle-gap
distributions, and a classification into the traffic archetypes that drive
platform choice (steady, bursty, sporadic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.traces.schema import Trace

__all__ = ["FunctionWorkloadStats", "characterize_functions", "idle_gap_distribution", "classify_traffic"]


@dataclass(frozen=True)
class FunctionWorkloadStats:
    """Summary statistics of one function's requests within a trace."""

    function_id: str
    num_requests: int
    mean_duration_s: float
    p95_duration_s: float
    mean_cpu_utilization: float
    mean_memory_utilization: float
    mean_interarrival_s: float
    interarrival_cv: float
    mean_idle_gap_s: float
    traffic_class: str

    def as_row(self) -> Dict[str, float]:
        return {
            "function_id": self.function_id,  # type: ignore[dict-item]
            "num_requests": float(self.num_requests),
            "mean_duration_ms": self.mean_duration_s * 1e3,
            "p95_duration_ms": self.p95_duration_s * 1e3,
            "mean_cpu_utilization": self.mean_cpu_utilization,
            "mean_memory_utilization": self.mean_memory_utilization,
            "mean_interarrival_s": self.mean_interarrival_s,
            "interarrival_cv": self.interarrival_cv,
            "mean_idle_gap_s": self.mean_idle_gap_s,
            "traffic_class": self.traffic_class,  # type: ignore[dict-item]
        }


def classify_traffic(mean_interarrival_s: float, interarrival_cv: float) -> str:
    """Classify a function's traffic into steady / bursty / sporadic.

    - *steady*: frequent arrivals with low variability (keep-alive almost always hits),
    - *bursty*: frequent on average but highly variable (cold starts cluster at burst edges),
    - *sporadic*: long idle gaps; keep-alive windows expire and most requests are cold.
    """
    if not np.isfinite(mean_interarrival_s):
        return "sporadic"
    if mean_interarrival_s > 300.0:
        return "sporadic"
    if interarrival_cv > 1.5:
        return "bursty"
    return "steady"


def idle_gap_distribution(trace: Trace, function_id: Optional[str] = None) -> List[float]:
    """Idle gaps (end of one request to arrival of the next) per function.

    These gaps are what the keep-alive policies of §3.3 act on; feeding them to
    :func:`repro.platform.keepalive_cost.estimate_keepalive_cost` estimates the
    provider-side keep-alive footprint for real traffic.
    """
    gaps: List[float] = []
    function_ids = [function_id] if function_id else list({r.function_id for r in trace.requests})
    for fid in function_ids:
        requests = sorted(trace.requests_for_function(fid), key=lambda r: r.arrival_s)
        for previous, current in zip(requests, requests[1:]):
            gap = current.arrival_s - (previous.arrival_s + previous.duration_s)
            if gap >= 0:
                gaps.append(gap)
    return gaps


def characterize_functions(trace: Trace, min_requests: int = 2) -> List[FunctionWorkloadStats]:
    """Per-function workload statistics for every function with at least ``min_requests``."""
    if min_requests < 1:
        raise ValueError("min_requests must be >= 1")
    stats: List[FunctionWorkloadStats] = []
    by_function: Dict[str, List] = {}
    for record in trace.requests:
        by_function.setdefault(record.function_id, []).append(record)
    for function_id, records in sorted(by_function.items()):
        if len(records) < min_requests:
            continue
        records = sorted(records, key=lambda r: r.arrival_s)
        durations = np.array([r.duration_s for r in records])
        arrivals = np.array([r.arrival_s for r in records])
        interarrivals = np.diff(arrivals)
        idle_gaps = np.maximum(
            arrivals[1:] - (arrivals[:-1] + durations[:-1]), 0.0
        ) if len(records) > 1 else np.array([])
        mean_interarrival = float(np.mean(interarrivals)) if interarrivals.size else float("inf")
        interarrival_cv = (
            float(np.std(interarrivals) / np.mean(interarrivals))
            if interarrivals.size and np.mean(interarrivals) > 0
            else 0.0
        )
        stats.append(
            FunctionWorkloadStats(
                function_id=function_id,
                num_requests=len(records),
                mean_duration_s=float(np.mean(durations)),
                p95_duration_s=float(np.quantile(durations, 0.95)),
                mean_cpu_utilization=float(np.mean([r.cpu_utilization for r in records])),
                mean_memory_utilization=float(np.mean([r.memory_utilization for r in records])),
                mean_interarrival_s=mean_interarrival,
                interarrival_cv=interarrival_cv,
                mean_idle_gap_s=float(np.mean(idle_gaps)) if idle_gaps.size else float("inf"),
                traffic_class=classify_traffic(mean_interarrival, interarrival_cv),
            )
        )
    return stats
