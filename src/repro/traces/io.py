"""Trace serialisation: CSV and JSONL round-tripping of request records.

Production traces arrive as flat tables; these helpers let examples and users
persist synthetic traces and re-load them for analysis without regenerating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.traces.schema import RequestRecord, ResourceUsage

__all__ = [
    "write_requests_csv",
    "read_requests_csv",
    "write_requests_jsonl",
    "read_requests_jsonl",
]

_CSV_FIELDS = [
    "request_id",
    "function_id",
    "pod_id",
    "arrival_s",
    "duration_s",
    "cpu_seconds",
    "memory_gb",
    "alloc_vcpus",
    "alloc_memory_gb",
    "cold_start",
    "init_duration_s",
]


def _record_to_row(record: RequestRecord) -> dict:
    return {
        "request_id": record.request_id,
        "function_id": record.function_id,
        "pod_id": record.pod_id,
        "arrival_s": record.arrival_s,
        "duration_s": record.duration_s,
        "cpu_seconds": record.usage.cpu_seconds,
        "memory_gb": record.usage.memory_gb,
        "alloc_vcpus": record.alloc_vcpus,
        "alloc_memory_gb": record.alloc_memory_gb,
        "cold_start": record.cold_start,
        "init_duration_s": record.init_duration_s,
    }


def _row_to_record(row: dict) -> RequestRecord:
    cold_raw = row["cold_start"]
    if isinstance(cold_raw, str):
        cold = cold_raw.strip().lower() in ("true", "1", "yes")
    else:
        cold = bool(cold_raw)
    return RequestRecord(
        request_id=str(row["request_id"]),
        function_id=str(row["function_id"]),
        pod_id=str(row["pod_id"]),
        arrival_s=float(row["arrival_s"]),
        duration_s=float(row["duration_s"]),
        usage=ResourceUsage(
            cpu_seconds=float(row["cpu_seconds"]),
            memory_gb=float(row["memory_gb"]),
        ),
        alloc_vcpus=float(row["alloc_vcpus"]),
        alloc_memory_gb=float(row["alloc_memory_gb"]),
        cold_start=cold,
        init_duration_s=float(row["init_duration_s"]) if cold else 0.0,
    )


def write_requests_csv(path: Union[str, Path], requests: Iterable[RequestRecord]) -> int:
    """Write request records to a CSV file; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for record in requests:
            writer.writerow(_record_to_row(record))
            count += 1
    return count


def read_requests_csv(path: Union[str, Path]) -> List[RequestRecord]:
    """Read request records from a CSV file written by :func:`write_requests_csv`."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        return [_row_to_record(row) for row in reader]


def write_requests_jsonl(path: Union[str, Path], requests: Iterable[RequestRecord]) -> int:
    """Write request records to a JSON-lines file; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for record in requests:
            handle.write(json.dumps(_record_to_row(record)))
            handle.write("\n")
            count += 1
    return count


def read_requests_jsonl(path: Union[str, Path]) -> List[RequestRecord]:
    """Read request records from a JSON-lines file."""
    path = Path(path)
    records: List[RequestRecord] = []
    with path.open("r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(_row_to_record(json.loads(line)))
    return records
