"""Serverless request traces: schema, synthetic generation, IO, and statistics.

The paper's §2 analyses are driven by the Huawei Cloud production FaaS trace
(Huawei Public request tables).  That trace is not redistributable, so this
package provides a synthetic generator calibrated to the summary statistics
the paper reports (mean execution duration ~58.19 ms, mean CPU time ~51.8 ms,
low resource utilisation with a moderate CPU/memory utilisation correlation of
~0.55, and a cold-start population in which ~42% of cold starts consume more
billable resources than all subsequent requests in the sandbox combined).
"""

from repro.traces.schema import (
    ColdStartRecord,
    FunctionProfile,
    RequestRecord,
    ResourceUsage,
    Trace,
)
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.statistics import (
    cdf_points,
    describe,
    empirical_cdf,
    pearson_correlation,
    quantile,
    spearman_correlation,
)
from repro.traces.io import read_requests_csv, read_requests_jsonl, write_requests_csv, write_requests_jsonl

__all__ = [
    "ColdStartRecord",
    "FunctionProfile",
    "RequestRecord",
    "ResourceUsage",
    "Trace",
    "TraceGenerator",
    "TraceGeneratorConfig",
    "cdf_points",
    "describe",
    "empirical_cdf",
    "pearson_correlation",
    "quantile",
    "spearman_correlation",
    "read_requests_csv",
    "read_requests_jsonl",
    "write_requests_csv",
    "write_requests_jsonl",
]
