"""Trace schema: per-request and per-cold-start records.

The fields mirror the columns of the Huawei Cloud production FaaS trace used
by the paper (request tables and cold-start tables), restricted to the fields
the paper's analyses actually consume:

- wall-clock execution duration of the request,
- consumed CPU time and average memory working set during the request,
- the vCPU / memory allocation (the function "flavor") the request ran under,
- cold-start metadata (initialisation duration, the sandbox/pod the cold start
  created, and resource allocation during initialisation).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "ResourceUsage",
    "RequestRecord",
    "ColdStartRecord",
    "FunctionProfile",
    "Trace",
]


@dataclass(frozen=True)
class ResourceUsage:
    """Actual resources consumed by one request.

    Attributes:
        cpu_seconds: consumed CPU time in vCPU-seconds (user + system).
        memory_gb: average resident memory during the request, in GB.
    """

    cpu_seconds: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be >= 0, got {self.cpu_seconds}")
        if self.memory_gb < 0:
            raise ValueError(f"memory_gb must be >= 0, got {self.memory_gb}")


@dataclass(frozen=True)
class RequestRecord:
    """One serverless invocation as recorded by the platform.

    Attributes:
        request_id: unique identifier of the invocation.
        function_id: identifier of the function the request invoked.
        pod_id: identifier of the sandbox (pod / microVM) that served the request.
        arrival_s: arrival timestamp in seconds from the start of the trace.
        duration_s: wall-clock execution duration in seconds (excludes init).
        usage: actual CPU and memory consumption during execution.
        alloc_vcpus: vCPUs allocated to the sandbox (the flavor's CPU limit).
        alloc_memory_gb: memory allocated to the sandbox in GB.
        cold_start: True if this request triggered a sandbox initialisation.
        init_duration_s: initialisation (cold start) duration in seconds; zero
            for warm requests.
    """

    request_id: str
    function_id: str
    pod_id: str
    arrival_s: float
    duration_s: float
    usage: ResourceUsage
    alloc_vcpus: float
    alloc_memory_gb: float
    cold_start: bool = False
    init_duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")
        if self.alloc_vcpus <= 0:
            raise ValueError(f"alloc_vcpus must be > 0, got {self.alloc_vcpus}")
        if self.alloc_memory_gb <= 0:
            raise ValueError(f"alloc_memory_gb must be > 0, got {self.alloc_memory_gb}")
        if self.init_duration_s < 0:
            raise ValueError(f"init_duration_s must be >= 0, got {self.init_duration_s}")
        if not self.cold_start and self.init_duration_s > 0:
            raise ValueError("warm requests must have init_duration_s == 0")

    @property
    def turnaround_s(self) -> float:
        """Turnaround time: initialisation plus execution (paper §2.4)."""
        return self.init_duration_s + self.duration_s

    @property
    def cpu_utilization(self) -> float:
        """Consumed CPU time divided by the allocated CPU time over the execution window."""
        allotted = self.alloc_vcpus * self.duration_s
        if allotted <= 0:
            return 0.0
        return min(self.usage.cpu_seconds / allotted, 1.0)

    @property
    def memory_utilization(self) -> float:
        """Average consumed memory divided by the allocated memory."""
        if self.alloc_memory_gb <= 0:
            return 0.0
        return min(self.usage.memory_gb / self.alloc_memory_gb, 1.0)

    @property
    def actual_cpu_seconds(self) -> float:
        """Actual consumed vCPU-seconds (the paper's "actual usage" CPU baseline)."""
        return self.usage.cpu_seconds

    @property
    def actual_memory_gb_seconds(self) -> float:
        """Actual consumed GB-seconds (average memory times wall-clock duration)."""
        return self.usage.memory_gb * self.duration_s


@dataclass(frozen=True)
class ColdStartRecord:
    """A traceable cold start: one sandbox initialisation and the requests it served.

    The paper's Figure 4 compares the billable resources consumed during the
    initialisation phase against the sum of billable resources consumed by all
    subsequent requests served by the same sandbox.
    """

    pod_id: str
    function_id: str
    init_duration_s: float
    alloc_vcpus: float
    alloc_memory_gb: float
    subsequent_request_ids: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.init_duration_s < 0:
            raise ValueError(f"init_duration_s must be >= 0, got {self.init_duration_s}")
        if self.alloc_vcpus <= 0 or self.alloc_memory_gb <= 0:
            raise ValueError("allocations must be positive")

    @property
    def init_cpu_seconds(self) -> float:
        """Billable vCPU-seconds of the initialisation phase under wall-clock allocation billing."""
        return self.alloc_vcpus * self.init_duration_s

    @property
    def init_memory_gb_seconds(self) -> float:
        """Billable GB-seconds of the initialisation phase under wall-clock allocation billing."""
        return self.alloc_memory_gb * self.init_duration_s


@dataclass(frozen=True)
class FunctionProfile:
    """Static description of a deployed function (its "flavor" and workload class)."""

    function_id: str
    alloc_vcpus: float
    alloc_memory_gb: float
    mean_duration_s: float
    mean_cpu_utilization: float
    mean_memory_utilization: float
    workload_class: str = "generic"

    def __post_init__(self) -> None:
        if self.alloc_vcpus <= 0 or self.alloc_memory_gb <= 0:
            raise ValueError("allocations must be positive")
        if self.mean_duration_s <= 0:
            raise ValueError("mean_duration_s must be positive")
        if not 0 <= self.mean_cpu_utilization <= 1:
            raise ValueError("mean_cpu_utilization must be in [0, 1]")
        if not 0 <= self.mean_memory_utilization <= 1:
            raise ValueError("mean_memory_utilization must be in [0, 1]")


class Trace:
    """A collection of request and cold-start records with convenience accessors."""

    def __init__(
        self,
        requests: Iterable[RequestRecord],
        cold_starts: Optional[Iterable[ColdStartRecord]] = None,
        functions: Optional[Iterable[FunctionProfile]] = None,
    ) -> None:
        self._requests: List[RequestRecord] = list(requests)
        self._cold_starts: List[ColdStartRecord] = list(cold_starts or [])
        self._functions: Dict[str, FunctionProfile] = {
            profile.function_id: profile for profile in (functions or [])
        }
        self._requests_by_id: Dict[str, RequestRecord] = {
            record.request_id: record for record in self._requests
        }

    @property
    def requests(self) -> List[RequestRecord]:
        return list(self._requests)

    @property
    def cold_starts(self) -> List[ColdStartRecord]:
        return list(self._cold_starts)

    @property
    def functions(self) -> Dict[str, FunctionProfile]:
        return dict(self._functions)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[RequestRecord]:
        return iter(self._requests)

    def request(self, request_id: str) -> RequestRecord:
        """Look up a request by id, raising ``KeyError`` if absent."""
        return self._requests_by_id[request_id]

    def requests_for_function(self, function_id: str) -> List[RequestRecord]:
        return [r for r in self._requests if r.function_id == function_id]

    def requests_for_pod(self, pod_id: str) -> List[RequestRecord]:
        return [r for r in self._requests if r.pod_id == pod_id]

    def filter(self, predicate) -> "Trace":
        """Return a new trace containing only the requests matching ``predicate``."""
        kept = [r for r in self._requests if predicate(r)]
        kept_ids = {r.request_id for r in kept}
        kept_pods = {r.pod_id for r in kept}
        cold = [c for c in self._cold_starts if c.pod_id in kept_pods]
        return Trace(kept, cold, self._functions.values())

    def exclude_zero_cpu(self) -> "Trace":
        """Drop requests reporting zero CPU usage, as the paper does for its §2 analysis."""
        return self.filter(lambda r: r.usage.cpu_seconds > 0)

    def summary(self) -> Dict[str, float]:
        """High-level summary statistics of the trace (all durations in seconds)."""
        if not self._requests:
            return {
                "num_requests": 0,
                "num_cold_starts": 0,
                "mean_duration_s": math.nan,
                "mean_cpu_seconds": math.nan,
                "mean_memory_gb": math.nan,
            }
        n = len(self._requests)
        return {
            "num_requests": float(n),
            "num_cold_starts": float(len(self._cold_starts)),
            "mean_duration_s": sum(r.duration_s for r in self._requests) / n,
            "mean_cpu_seconds": sum(r.usage.cpu_seconds for r in self._requests) / n,
            "mean_memory_gb": sum(r.usage.memory_gb for r in self._requests) / n,
        }

    def to_dicts(self) -> List[Dict[str, object]]:
        """Flatten requests to plain dictionaries (used by the IO helpers)."""
        rows: List[Dict[str, object]] = []
        for record in self._requests:
            row = dataclasses.asdict(record)
            usage = row.pop("usage")
            row["cpu_seconds"] = usage["cpu_seconds"]
            row["memory_gb"] = usage["memory_gb"]
            rows.append(row)
        return rows
