"""Statistics helpers used throughout the analysis modules.

The paper reports CDFs, means, percentiles and Pearson / Spearman correlation
coefficients over hundreds of millions of requests.  These helpers operate on
plain sequences (or numpy arrays) so that the analysis code stays free of any
heavyweight dataframe dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "empirical_cdf",
    "cdf_points",
    "quantile",
    "describe",
    "pearson_correlation",
    "spearman_correlation",
    "histogram",
    "geometric_mean",
]


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)`` for the empirical CDF.

    Probabilities are ``i / n`` for the i-th smallest value (1-indexed), i.e.
    the right-continuous empirical distribution function evaluated at the data
    points.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return np.array([]), np.array([])
    sorted_values = np.sort(data)
    probabilities = np.arange(1, sorted_values.size + 1, dtype=float) / sorted_values.size
    return sorted_values, probabilities


def cdf_points(values: Sequence[float], num_points: int = 100) -> List[Tuple[float, float]]:
    """Down-sample an empirical CDF to ``num_points`` (value, probability) pairs.

    Useful for printing compact CDF series in benchmark reports that mirror the
    paper's CDF figures without emitting one row per request.
    """
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    sorted_values, probabilities = empirical_cdf(values)
    if sorted_values.size == 0:
        return []
    if sorted_values.size <= num_points:
        return list(zip(sorted_values.tolist(), probabilities.tolist()))
    indices = np.linspace(0, sorted_values.size - 1, num_points).round().astype(int)
    return [(float(sorted_values[i]), float(probabilities[i])) for i in indices]


def quantile(values: Sequence[float], q: float) -> float:
    """Return the q-quantile (q in [0, 1]) using linear interpolation."""
    if not 0 <= q <= 1:
        raise ValueError(f"q must be in [0, 1], got {q}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return math.nan
    return float(np.quantile(data, q))


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Return a summary dictionary: count, mean, std, min, p5, p50, p95, p99, max."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return {key: math.nan for key in ("count", "mean", "std", "min", "p5", "p50", "p95", "p99", "max")}
    return {
        "count": float(data.size),
        "mean": float(np.mean(data)),
        "std": float(np.std(data)),
        "min": float(np.min(data)),
        "p5": float(np.quantile(data, 0.05)),
        "p50": float(np.quantile(data, 0.50)),
        "p95": float(np.quantile(data, 0.95)),
        "p99": float(np.quantile(data, 0.99)),
        "max": float(np.max(data)),
    }


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson (linear) correlation coefficient between two samples."""
    a = np.asarray(list(x), dtype=float)
    b = np.asarray(list(y), dtype=float)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size < 2:
        return math.nan
    std_a = np.std(a)
    std_b = np.std(b)
    if std_a == 0 or std_b == 0:
        return math.nan
    return float(np.corrcoef(a, b)[0, 1])


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Assign average ranks, matching scipy.stats.rankdata(method='average')."""
    sorter = np.argsort(values, kind="mergesort")
    inv = np.empty_like(sorter)
    inv[sorter] = np.arange(values.size)
    sorted_values = values[sorter]
    # Identify runs of equal values and average their ranks.
    obs = np.r_[True, sorted_values[1:] != sorted_values[:-1]]
    dense = obs.cumsum()[inv]
    counts = np.r_[np.nonzero(obs)[0], values.size]
    return 0.5 * (counts[dense] + counts[dense - 1] + 1)


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation coefficient between two samples."""
    a = np.asarray(list(x), dtype=float)
    b = np.asarray(list(y), dtype=float)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size < 2:
        return math.nan
    return pearson_correlation(_rankdata(a), _rankdata(b))


def histogram(values: Sequence[float], bins: int = 20) -> List[Tuple[float, float, int]]:
    """Return a list of (bin_left, bin_right, count) tuples."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return []
    counts, edges = np.histogram(data, bins=bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return math.nan
    if np.any(data <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))
