"""Calibration targets and checks for the synthetic trace.

The paper reports aggregate statistics of the Huawei production trace that the
synthetic generator is calibrated against.  This module records those targets
and provides a validation routine so that tests (and users) can verify a
generated trace is statistically in range before drawing conclusions from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.traces.schema import Trace
from repro.traces.statistics import pearson_correlation, spearman_correlation

__all__ = ["CalibrationTarget", "PAPER_TARGETS", "check_calibration"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One calibration target: a named statistic with an acceptable range."""

    name: str
    paper_value: float
    lower: float
    upper: float
    description: str

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


#: Statistics of the Huawei trace quoted in the paper, with tolerance bands
#: wide enough for a synthetic reproduction (shape, not exact numbers).
PAPER_TARGETS: Dict[str, CalibrationTarget] = {
    "mean_duration_s": CalibrationTarget(
        name="mean_duration_s",
        paper_value=0.05819,
        lower=0.02,
        upper=0.20,
        description="Mean execution duration (paper: 58.19 ms)",
    ),
    "mean_cpu_time_s": CalibrationTarget(
        name="mean_cpu_time_s",
        paper_value=0.0518,
        lower=0.005,
        upper=0.20,
        description="Mean consumed CPU time across CPU-reporting requests (paper: 51.8 ms)",
    ),
    "cpu_util_below_half": CalibrationTarget(
        name="cpu_util_below_half",
        paper_value=0.65,
        lower=0.45,
        upper=0.90,
        description="Fraction of requests using < 50% of allotted CPU (paper: >65%)",
    ),
    "mem_util_below_half": CalibrationTarget(
        name="mem_util_below_half",
        paper_value=0.76,
        lower=0.50,
        upper=0.95,
        description="Fraction of requests using < 50% of allotted memory (paper: ~76%)",
    ),
    "util_pearson": CalibrationTarget(
        name="util_pearson",
        paper_value=0.552,
        lower=0.25,
        upper=0.80,
        description="Pearson correlation between CPU and memory utilisation (paper: 0.552)",
    ),
    "util_spearman": CalibrationTarget(
        name="util_spearman",
        paper_value=0.565,
        lower=0.25,
        upper=0.80,
        description="Spearman correlation between CPU and memory utilisation (paper: 0.565)",
    ),
}


def compute_calibration_statistics(trace: Trace) -> Dict[str, float]:
    """Compute the calibration statistics of a trace."""
    requests = trace.exclude_zero_cpu().requests
    if not requests:
        raise ValueError("trace has no CPU-reporting requests")
    n = len(requests)
    cpu_utils = [r.cpu_utilization for r in requests]
    mem_utils = [r.memory_utilization for r in requests]
    return {
        "mean_duration_s": sum(r.duration_s for r in requests) / n,
        "mean_cpu_time_s": sum(r.usage.cpu_seconds for r in requests) / n,
        "cpu_util_below_half": sum(1 for u in cpu_utils if u < 0.5) / n,
        "mem_util_below_half": sum(1 for u in mem_utils if u < 0.5) / n,
        "util_pearson": pearson_correlation(cpu_utils, mem_utils),
        "util_spearman": spearman_correlation(cpu_utils, mem_utils),
    }


def check_calibration(trace: Trace) -> Dict[str, Dict[str, object]]:
    """Check a trace against the paper's calibration targets.

    Returns a mapping from statistic name to a dictionary containing the
    measured value, the paper value, the acceptable range and a pass flag.
    """
    measured = compute_calibration_statistics(trace)
    report: Dict[str, Dict[str, object]] = {}
    for name, target in PAPER_TARGETS.items():
        value = measured[name]
        report[name] = {
            "measured": value,
            "paper": target.paper_value,
            "lower": target.lower,
            "upper": target.upper,
            "ok": target.contains(value),
            "description": target.description,
        }
    return report


def calibration_failures(trace: Trace) -> List[str]:
    """Return the names of calibration targets the trace fails (empty when calibrated)."""
    return [name for name, entry in check_calibration(trace).items() if not entry["ok"]]
