"""Figure 3: resource utilisation rate distributions and their correlation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.inflation import default_trace
from repro.traces.schema import Trace
from repro.traces.statistics import cdf_points, pearson_correlation, spearman_correlation

__all__ = ["figure3_summary", "figure3_cdf_series", "utilization_scatter"]

#: Paper-reported values for EXPERIMENTS.md.
PAPER_VALUES = {
    "cpu_below_half_fraction": 0.65,
    "memory_below_half_fraction": 0.76,
    "pearson": 0.552,
    "spearman": 0.565,
}


def figure3_summary(trace: Optional[Trace] = None) -> List[Dict[str, float]]:
    """Headline utilisation statistics: fractions below 50% and the two correlations."""
    trace = trace if trace is not None else default_trace()
    requests = trace.exclude_zero_cpu().requests
    cpu_utils = [r.cpu_utilization for r in requests]
    mem_utils = [r.memory_utilization for r in requests]
    n = len(requests)
    return [
        {
            "metric": "cpu_below_half_fraction",
            "measured": sum(1 for u in cpu_utils if u < 0.5) / n,
            "paper": PAPER_VALUES["cpu_below_half_fraction"],
        },
        {
            "metric": "memory_below_half_fraction",
            "measured": sum(1 for u in mem_utils if u < 0.5) / n,
            "paper": PAPER_VALUES["memory_below_half_fraction"],
        },
        {
            "metric": "pearson",
            "measured": pearson_correlation(cpu_utils, mem_utils),
            "paper": PAPER_VALUES["pearson"],
        },
        {
            "metric": "spearman",
            "measured": spearman_correlation(cpu_utils, mem_utils),
            "paper": PAPER_VALUES["spearman"],
        },
    ]


def figure3_cdf_series(trace: Optional[Trace] = None, num_points: int = 50) -> Dict[str, List]:
    """The utilisation-rate CDFs of Figure 3 (left panel)."""
    trace = trace if trace is not None else default_trace()
    requests = trace.exclude_zero_cpu().requests
    return {
        "cpu_utilization": cdf_points([r.cpu_utilization for r in requests], num_points),
        "memory_utilization": cdf_points([r.memory_utilization for r in requests], num_points),
    }


def utilization_scatter(trace: Optional[Trace] = None, sample: int = 2000) -> List[Dict[str, float]]:
    """A down-sampled CPU-versus-memory utilisation scatter (Figure 3 right panel)."""
    trace = trace if trace is not None else default_trace()
    requests = trace.exclude_zero_cpu().requests
    step = max(len(requests) // sample, 1)
    return [
        {"cpu_utilization": r.cpu_utilization, "memory_utilization": r.memory_utilization}
        for r in requests[::step]
    ]
