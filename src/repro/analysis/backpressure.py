"""Backpressure experiment: admission-queue depth x placement policy x heterogeneity.

PR 2's fleet dropped every sandbox it could not place.  This experiment
closes that loop and measures what the paper's provider-side arguments
(§2.2/§3.3) imply at the cluster boundary: when the fleet is capacity-bound,
how much of the offered load can a bounded admission queue absorb, how long
do queued sandboxes wait, and how do placement policy and host heterogeneity
move both the provider's spend and the user's bill?

Each grid point runs one full :class:`~repro.cluster.cosim.ClusterSimulator`
co-simulation on a deliberately *small* fleet (so cold starts outrun
capacity): every function's platform simulator, the multi-zone fleet with
admission backpressure, the live cost meter, and the CPU-bandwidth scheduler
engine (:class:`~repro.sched.engine.SchedulerSim`) all share one kernel.
Every scenario's seed derives from the base seed and the grid point
identity, so sequential and parallel sweeps produce identical rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.results import ResultStore
from repro.sim.rng import named_generator
from repro.sim.sweep import build_grid, run_sweep

__all__ = [
    "backpressure_point",
    "backpressure_sweep",
    "retry_amplification_sweep",
    "DEFAULT_AXES",
    "RETRY_AXES",
]

#: Default sweep axes: admission-queue bound x placement policy x fleet
#: heterogeneity ("homogeneous" = one zone, "two_tier" = a cheap economy
#: zone next to a pricier premium zone the COST_FIT policy can arbitrage).
DEFAULT_AXES: Dict[str, Sequence[object]] = {
    "queue_depth": (0, 4, 32),
    "placement_policy": ("best_fit", "cost_fit"),
    "heterogeneity": ("homogeneous", "two_tier"),
}

#: Retry-amplification axes: the same capacity-bound points with client
#: retries off vs on, so the ``retry_amplification`` column isolates how much
#: extra load failed-and-retried requests push back into the fleet at each
#: queue bound.  Meant to run with ``feedback="on"`` (see
#: :func:`retry_amplification_sweep`): without the closed loop nothing fails,
#: so nothing retries.
RETRY_AXES: Dict[str, Sequence[object]] = {
    "queue_depth": (0, 4),
    "placement_policy": ("best_fit",),
    "heterogeneity": ("homogeneous",),
    "retry": ("off", "on"),
}


def _zones(heterogeneity: str, host_vcpus: float, host_memory_gb: float, max_hosts: int):
    """The fleet partitions of one grid point (imports deferred for workers)."""
    from repro.cluster.fleet import ZoneConfig
    from repro.cluster.host import HostSpec

    if heterogeneity == "homogeneous":
        return (
            ZoneConfig(
                name="default",
                host_spec=HostSpec(vcpus=host_vcpus, memory_gb=host_memory_gb),
                max_hosts=max_hosts,
            ),
        )
    if heterogeneity == "two_tier":
        # An economy tier priced at the default unit rates next to a premium
        # tier with twice the shape at a 5x price: cost-aware placement
        # should fill economy hosts first and strand less premium capacity.
        # The two zones *split* the host cap (ceil to economy), so a two_tier
        # point never opens more hosts than the homogeneous one.
        economy = HostSpec(vcpus=host_vcpus, memory_gb=host_memory_gb, price_class="economy")
        premium = HostSpec(
            vcpus=host_vcpus * 2.0,
            memory_gb=host_memory_gb * 2.0,
            hourly_cost_usd=economy.hourly_cost_usd * 5.0,
            price_class="premium",
        )
        split = (max_hosts + 1) // 2
        return (
            ZoneConfig(name="economy", host_spec=economy, max_hosts=split),
            ZoneConfig(name="premium", host_spec=premium, max_hosts=max_hosts - split),
        )
    raise ValueError(f"unknown heterogeneity {heterogeneity!r}")


def _scheduler(seed: int, horizon_s: float):
    """A small deterministic CPU-bandwidth scheduling workload for the co-sim.

    Task arrivals and compute demands draw from a named stream, so they
    depend only on (seed, "sched") -- never on sweep ordering.
    """
    from repro.sched.engine import SchedulerSim
    from repro.sched.presets import scheduler_config_for
    from repro.sched.task import SimTask, TaskPhase

    rng = named_generator(seed, "sched")
    arrivals = sorted(float(t) for t in rng.uniform(0.0, horizon_s * 0.5, size=6))
    demands = rng.uniform(0.05, 0.4, size=6)
    tasks = [
        SimTask(
            phases=[TaskPhase.compute(float(demands[index]))],
            arrival_s=arrivals[index],
            name=f"sched-task-{index:02d}",
        )
        for index in range(6)
    ]
    config = scheduler_config_for("aws_lambda", vcpu_fraction=0.5, horizon_s=horizon_s)
    return SchedulerSim(config, tasks)


def _resolve_obs(params: Mapping[str, object]):
    """Observability for points that asked for artifacts (import deferred)."""
    from repro.obs import obs_from_params

    return obs_from_params(params)


def backpressure_point(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    """Sweep runner: one backpressure co-simulation grid point.

    Expected params: ``queue_depth``, ``placement_policy`` (any
    :class:`~repro.cluster.placement.PlacementPolicy` value, including
    ``cost_fit``), ``heterogeneity`` (``homogeneous`` | ``two_tier``), and
    optionally ``num_functions``, ``max_hosts`` (kept small so the fleet
    saturates), ``queue_discipline`` (``fifo`` | ``smallest_first``),
    ``platform`` (preset name), ``billing`` (billing-model name),
    ``workload``, ``rps_per_function``, ``duration_s``, ``keep_alive_s``
    (rescales the preset's keep-alive window; defaults to a third of the
    duration so evictions drain the queue mid-run), ``arrival_process``,
    ``host_vcpus``, ``host_memory_gb``, ``sample_interval_s``,
    ``with_scheduler`` (default true: co-simulate the sched engine), and
    ``feedback`` (``off`` | ``on``, default ``off``).  With feedback on the
    admission outcomes and scheduler throttling feed back into serving, so
    the ``failed_requests`` / ``latency_inflation`` columns report the
    user-visible cost of backpressure instead of zero.

    ``retry`` (``off`` | ``on``) adds the client retry loop on top of the
    closed feedback loop: failed requests are re-injected with exponential
    backoff (tunable via ``retry_max_attempts``, ``retry_base_backoff_s``,
    ``retry_backoff_multiplier``, ``retry_max_backoff_s``, ``retry_jitter``,
    ``retry_budget``) and the row gains the ``retried_requests`` /
    ``mean_attempts`` / ``gave_up_requests`` / ``retry_amplification``
    columns.  When the ``retry`` param is absent entirely the row is
    byte-identical to the pre-retry output.

    ``tenants`` (``off`` | an integer count, resolved through
    :func:`repro.tenancy.model.resolve_tenants` with the ``tenant_*``
    knobs) adds credit-metered multi-tenant admission over the same closed
    loop: rows gain the ``credit_denied_requests`` / ``jain_fairness`` /
    per-tenant columns, and when the param is absent entirely rows stay
    byte-identical to the pre-tenancy output.

    ``trace_out`` / ``telemetry_out`` / ``profile_out`` (file paths) attach
    the observability layer for this point and write its artifacts after the
    run: a Chrome-trace JSON (``.jsonl`` for raw span lines), the sampled
    telemetry series as CSV, and the kernel profile as JSON.  Observers only
    read the bus, so the returned row is byte-identical with or without them.

    Imports stay inside the function so the runner is resolvable by dotted
    path in sweep worker processes without import cycles.
    """
    from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
    from repro.cluster.fleet import FleetConfig
    from repro.cluster.placement import PlacementPolicy
    from repro.platform.presets import get_platform_preset
    from repro.sim.retry import resolve_retry
    from repro.traces.generator import HUAWEI_FLAVORS
    from repro.workloads.functions import get_workload

    queue_depth = int(params["queue_depth"])  # type: ignore[arg-type]
    policy = PlacementPolicy(str(params["placement_policy"]))
    heterogeneity = str(params["heterogeneity"])
    num_functions = int(params.get("num_functions", 6))  # type: ignore[arg-type]
    max_hosts = int(params.get("max_hosts", 2))  # type: ignore[arg-type]
    discipline = str(params.get("queue_discipline", "fifo"))
    platform = get_platform_preset(str(params.get("platform", "gcp_run_like")))
    billing = str(params.get("billing", "gcp_run_request"))
    workload = get_workload(str(params.get("workload", "pyaes")))
    rps = float(params.get("rps_per_function", 2.0))  # type: ignore[arg-type]
    duration_s = float(params.get("duration_s", 30.0))  # type: ignore[arg-type]
    keep_alive_s = float(params.get("keep_alive_s", duration_s / 3.0))  # type: ignore[arg-type]
    arrival_process = str(params.get("arrival_process", "constant"))
    host_vcpus = float(params.get("host_vcpus", 2.0))  # type: ignore[arg-type]
    host_memory_gb = float(params.get("host_memory_gb", 4.0))  # type: ignore[arg-type]
    with_scheduler = bool(params.get("with_scheduler", True))
    feedback = str(params.get("feedback", "off"))
    retry_mode, retry_policy = resolve_retry(params)
    from repro.tenancy import resolve_tenants

    tenants_mode, tenant_configs = resolve_tenants(params)
    obs = _resolve_obs(params)

    # Rescale the preset's keep-alive window so its max hits ``keep_alive_s``
    # (preserving the min/max ratio).  A window shorter than the traffic
    # duration is what makes backpressure *drain*: keep-alive expiries free
    # capacity mid-run and queued sandboxes get retried onto it.
    keep_alive = platform.keep_alive
    factor = keep_alive_s / keep_alive.max_keep_alive_s
    platform = dataclasses.replace(
        platform,
        keep_alive=dataclasses.replace(
            keep_alive,
            min_keep_alive_s=keep_alive.min_keep_alive_s * factor,
            max_keep_alive_s=keep_alive_s,
        ),
    )

    # Functions draw discrete Huawei-like flavors from a named stream, so the
    # population depends only on (seed, "flavors") -- not on sweep ordering.
    flavor_rng = named_generator(seed, "flavors")
    flavor_indices = flavor_rng.integers(0, len(HUAWEI_FLAVORS), size=num_functions)
    deployments: List[FunctionDeployment] = []
    for index in range(num_functions):
        vcpus, memory_gb = HUAWEI_FLAVORS[int(flavor_indices[index])]
        function = workload.to_function_config(vcpus, memory_gb, init_duration_s=1.0)
        function = dataclasses.replace(function, name=f"fn-{index:03d}")
        deployments.append(
            FunctionDeployment(
                function=function,
                platform=platform,
                rps=rps,
                duration_s=duration_s,
                arrival_process=arrival_process,
            )
        )

    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            policy=policy,
            zones=_zones(heterogeneity, host_vcpus, host_memory_gb, max_hosts),
            queue_depth=queue_depth,
            queue_discipline=discipline,
            sample_interval_s=float(params.get("sample_interval_s", 10.0)),  # type: ignore[arg-type]
        ),
        billing_platform=billing,
        scheduler=_scheduler(seed, duration_s) if with_scheduler else None,
        seed=seed,
        feedback=feedback,
        retry=retry_policy,
        obs=obs,
        tenants=tenant_configs,
    )
    result = simulator.run()
    if obs is not None:
        from repro.obs import write_obs_artifacts

        write_obs_artifacts(obs, params)

    row: Dict[str, object] = {
        "queue_depth_bound": queue_depth,
        "placement_policy": policy.value,
        "heterogeneity": heterogeneity,
        "queue_discipline": discipline,
        "keep_alive_s": keep_alive_s,
        "platform": platform.name,
        "feedback": feedback,
        "seed": seed,
    }
    if retry_mode is not None:
        row["retry"] = retry_mode
    if tenants_mode is not None:
        row["tenants"] = tenants_mode
    summary = result.summary()
    summary.pop("policy", None)
    row.update(summary)
    return row


def backpressure_sweep(
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    common: Optional[Mapping[str, object]] = None,
    base_seed: int = 2026,
    processes: Optional[int] = None,
    ordered: bool = True,
    first_point_extra: Optional[Mapping[str, object]] = None,
    backend: Optional[object] = None,
    checkpoint: Optional[str] = None,
) -> ResultStore:
    """Run the backpressure grid through the sweep orchestrator.

    ``ordered=False`` enables work-stealing execution: co-simulation grid
    points vary widely in cost (queue depth and heterogeneity change event
    counts), which is exactly where unordered pools beat fixed chunking.  The
    collected rows are identical either way.

    ``backend`` / ``checkpoint`` pass through to
    :func:`repro.sim.sweep.run_sweep`: any execution backend (including the
    multi-node ``socket-queue`` server) and an optional JSONL journal that
    makes the sweep kill/resume-safe.  Rows are byte-identical across all of
    them.

    ``first_point_extra`` merges extra params into the *first* grid point
    only -- how the CLI attaches ``trace_out``/``telemetry_out`` artifact
    paths to a single representative point without every worker racing to
    write the same files.  Scenario seeds derive from grid identity, not
    params, so the extra keys leave every row byte-identical.
    """
    scenarios = build_grid(
        runner="repro.analysis.backpressure:backpressure_point",
        axes=dict(axes or DEFAULT_AXES),
        common=common,
        base_seed=base_seed,
    )
    if first_point_extra:
        scenarios[0] = dataclasses.replace(
            scenarios[0], params={**scenarios[0].params, **first_point_extra}
        )
    return run_sweep(
        scenarios, processes=processes, ordered=ordered, backend=backend, checkpoint=checkpoint
    )


def retry_amplification_sweep(
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    common: Optional[Mapping[str, object]] = None,
    base_seed: int = 2026,
    processes: Optional[int] = None,
    ordered: bool = True,
    backend: Optional[object] = None,
    checkpoint: Optional[str] = None,
) -> ResultStore:
    """The retry-amplification axis: retries off vs on over a saturated fleet.

    A thin preset over :func:`backpressure_sweep`: feedback defaults to
    ``"on"`` (requests must *fail* for clients to retry) on a
    single-concurrency platform (every excess request cold-starts its own
    sandbox, so fleet rejections deterministically fail requests).  Compare
    the ``retry == "on"`` rows' ``retry_amplification`` /
    ``gave_up_requests`` columns against their ``retry == "off"`` twins to
    read off the load amplification failed-and-retried requests cause.
    """
    merged: Dict[str, object] = {
        "feedback": "on",
        "platform": "aws_lambda_like",
        "billing": "aws_lambda",
    }
    merged.update(common or {})
    return backpressure_sweep(
        axes=dict(axes or RETRY_AXES),
        common=merged,
        base_seed=base_seed,
        processes=processes,
        ordered=ordered,
        backend=backend,
        checkpoint=checkpoint,
    )


def backpressure_experiment() -> List[Dict[str, object]]:
    """The registry entry point: a small default grid, sequential."""
    axes = {
        "queue_depth": (0, 16),
        "placement_policy": ("best_fit", "cost_fit"),
        "heterogeneity": ("homogeneous", "two_tier"),
    }
    store = backpressure_sweep(axes=axes, common={"duration_s": 20.0})
    return store.rows
