"""Figure 11: theoretical execution durations under different bandwidth-control periods."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.sched.analytical import theoretical_duration_series

__all__ = ["figure11_series", "figure11_summary", "HUAWEI_MEAN_CPU_TIME_S", "DEFAULT_PERIODS_MS"]

#: The Huawei-trace mean CPU time the paper plugs into Equation (2) (51.8 ms).
HUAWEI_MEAN_CPU_TIME_S = 0.0518

#: Bandwidth-control periods plotted in Figure 11 (5 ms to 100 ms).
DEFAULT_PERIODS_MS: Sequence[float] = (5.0, 10.0, 20.0, 40.0, 80.0, 100.0)


def figure11_series(
    cpu_time_s: float = HUAWEI_MEAN_CPU_TIME_S,
    periods_ms: Sequence[float] = DEFAULT_PERIODS_MS,
    vcpu_fractions: Sequence[float] = tuple(np.round(np.arange(0.05, 1.0001, 0.01), 4)),
) -> List[Dict[str, float]]:
    """The Figure 11 series: duration versus allocation for every studied period."""
    rows: List[Dict[str, float]] = []
    for period_ms in periods_ms:
        rows.extend(theoretical_duration_series(cpu_time_s, period_ms * 1e-3, vcpu_fractions))
    return rows


def figure11_summary(rows: List[Dict[str, float]]) -> List[Dict[str, float]]:
    """Per-period summary: deviation from the ideal reciprocal duration.

    Equation (2) never exceeds the ideal reciprocal duration (the remainder of
    the last period runs at full speed), so the deviation is reported as an
    absolute value: shorter periods track the ideal curve closely while longer
    periods show the pronounced quantization the figure illustrates.
    """
    out: List[Dict[str, float]] = []
    periods = sorted({row["period_ms"] for row in rows})
    for period_ms in periods:
        period_rows = [r for r in rows if r["period_ms"] == period_ms]
        deviation = [abs(r["duration_ms"] - r["ideal_duration_ms"]) for r in period_rows]
        ratio = [
            r["duration_ms"] / r["ideal_duration_ms"]
            for r in period_rows
            if r["ideal_duration_ms"] > 0
        ]
        out.append(
            {
                "period_ms": period_ms,
                "mean_abs_deviation_ms": float(np.mean(deviation)),
                "max_abs_deviation_ms": float(np.max(deviation)),
                "mean_duration_ratio": float(np.mean(ratio)),
            }
        )
    return out
