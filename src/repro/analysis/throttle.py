"""Figure 12 and Table 3: scheduler profiling and scheduling-parameter inference.

The paper runs the Algorithm-1 profiler on AWS, GCP and IBM functions and on
local VMs with known settings, compares the distributions of throttle
intervals, throttle durations and obtained CPU time, and infers each
provider's bandwidth-control period and timer frequency (Table 3).  Here the
"cloud" runs are simulations with the provider presets and the "local" runs
are simulations with explicitly chosen periods/quotas/timer frequencies; the
inference procedure then recovers the parameters from the observed
distributions, closing the same loop the paper closes against real clouds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim
from repro.sched.policies import PolicyParameters, SchedulingPolicy
from repro.sched.presets import PROVIDER_SCHED_PRESETS
from repro.sched.profiler import ThrottleProfile, ThrottleProfileSet, profile_task_result
from repro.sched.task import SimTask

__all__ = [
    "profile_configuration",
    "figure12_provider_profiles",
    "figure12_cfs_vs_eevdf",
    "infer_scheduling_parameters",
    "infer_scheduling_parameters_by_matching",
    "table3_inference",
    "PAPER_TABLE3",
]

#: Table 3 as reported by the paper.
PAPER_TABLE3 = {
    "aws_lambda": {"period_ms": 20.0, "tick_hz": 250},
    "gcp_run_functions": {"period_ms": 100.0, "tick_hz": 1000},
    "ibm_code_engine": {"period_ms": 10.0, "tick_hz": 250},
}


def profile_configuration(
    vcpu_fraction: float,
    period_s: float,
    tick_hz: int,
    policy: SchedulingPolicy = SchedulingPolicy.CFS,
    exec_duration_s: float = 5.0,
    invocations: int = 10,
    seed: int = 0,
) -> ThrottleProfileSet:
    """Run the Algorithm-1 profiler against one scheduling configuration.

    Each invocation spins for ``exec_duration_s`` of wall-clock time (the CPU
    demand is set high enough that the task never finishes early); the
    per-invocation profiles are pooled, mirroring the paper's aggregation of
    300 invocations per configuration.
    """
    rng = np.random.default_rng(seed)
    profile_set = ThrottleProfileSet()
    bandwidth = BandwidthConfig.for_vcpu_fraction(vcpu_fraction, period_s=period_s)
    for _ in range(invocations):
        config = SchedulerConfig(
            bandwidth=bandwidth,
            tick_hz=tick_hz,
            policy=PolicyParameters(policy=policy),
            tick_phase_s=float(rng.uniform(0.0, 1.0 / tick_hz)),
            period_phase_s=float(rng.uniform(0.0, period_s)),
            horizon_s=exec_duration_s,
        )
        task = SimTask.cpu_bound(exec_duration_s * 2.0, name="spin")
        result = SchedulerSim(config, [task]).run().single
        profile_set.add(profile_task_result(result))
    return profile_set


def _profile_rows(
    label: str, profile: "ThrottleProfile | ThrottleProfileSet", extra: Dict[str, float]
) -> Dict[str, float]:
    intervals = profile.throttle_intervals_s()
    durations = profile.throttle_durations_s()
    obtained = profile.obtained_cpu_times_s()

    def _stats(values: Sequence[float], prefix: str) -> Dict[str, float]:
        if not values:
            return {f"{prefix}_mean_ms": float("nan"), f"{prefix}_p50_ms": float("nan")}
        arr = np.asarray(values)
        return {
            f"{prefix}_mean_ms": float(np.mean(arr)) * 1e3,
            f"{prefix}_p50_ms": float(np.median(arr)) * 1e3,
        }

    row: Dict[str, float] = {"configuration": label}  # type: ignore[dict-item]
    row.update(_stats(intervals, "throttle_interval"))
    row.update(_stats(obtained, "obtained_cpu"))
    row.update(_stats(durations, "throttle_duration"))
    row["num_throttles"] = float(profile.num_throttles)
    row.update(extra)
    return row


def figure12_provider_profiles(
    configurations: Optional[Sequence[Tuple[str, str, float]]] = None,
    exec_duration_s: float = 5.0,
    invocations: int = 10,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Figure 12(a)-(c): profiles of AWS-, GCP- and IBM-like scheduling settings.

    ``configurations`` is a sequence of (label, provider key, vCPU fraction);
    the default covers the allocations shown in the figure.
    """
    if configurations is None:
        configurations = (
            ("aws_128mb_0.072vcpu", "aws_lambda", 0.072),
            ("aws_442mb_0.25vcpu", "aws_lambda", 0.25),
            ("aws_884mb_0.5vcpu", "aws_lambda", 0.5),
            ("gcp_0.08vcpu", "gcp_run_functions", 0.08),
            ("gcp_0.25vcpu", "gcp_run_functions", 0.25),
            ("gcp_0.5vcpu", "gcp_run_functions", 0.5),
            ("ibm_0.25vcpu", "ibm_code_engine", 0.25),
            ("ibm_0.5vcpu", "ibm_code_engine", 0.5),
        )
    rows: List[Dict[str, float]] = []
    for index, (label, provider, fraction) in enumerate(configurations):
        preset = PROVIDER_SCHED_PRESETS[provider]
        profile = profile_configuration(
            vcpu_fraction=fraction,
            period_s=preset.period_s,
            tick_hz=preset.tick_hz,
            exec_duration_s=exec_duration_s,
            invocations=invocations,
            seed=seed + index,
        )
        rows.append(
            _profile_rows(
                label,
                profile,
                {
                    "provider": provider,  # type: ignore[dict-item]
                    "vcpu_fraction": fraction,
                    "period_ms": preset.period_s * 1e3,
                    "tick_hz": float(preset.tick_hz),
                },
            )
        )
    return rows


def figure12_cfs_vs_eevdf(
    vcpu_fraction: float = 0.072,
    period_s: float = 0.020,
    tick_frequencies: Sequence[int] = (250, 1000),
    exec_duration_s: float = 5.0,
    invocations: int = 10,
    seed: int = 40,
) -> List[Dict[str, float]]:
    """Figure 12(d): CFS versus EEVDF at different timer frequencies (P20 Q1.45)."""
    rows: List[Dict[str, float]] = []
    index = 0
    for policy in (SchedulingPolicy.CFS, SchedulingPolicy.EEVDF):
        for tick_hz in tick_frequencies:
            profile = profile_configuration(
                vcpu_fraction=vcpu_fraction,
                period_s=period_s,
                tick_hz=tick_hz,
                policy=policy,
                exec_duration_s=exec_duration_s,
                invocations=invocations,
                seed=seed + index,
            )
            quota_ms = vcpu_fraction * period_s * 1e3
            obtained = profile.obtained_cpu_times_s()
            # Mean relative overrun: how far the obtained CPU time between
            # throttles exceeds the configured quota, averaged over bursts.
            overruns = [max(0.0, o * 1e3 - quota_ms) / quota_ms for o in obtained]
            mean_overrun_ratio = float(np.mean(overruns)) if overruns else float("nan")
            rows.append(
                _profile_rows(
                    f"{policy.value}_{tick_hz}hz",
                    profile,
                    {
                        "policy": policy.value,  # type: ignore[dict-item]
                        "tick_hz": float(tick_hz),
                        "quota_ms": quota_ms,
                        "mean_overrun_ratio": mean_overrun_ratio,
                    },
                )
            )
            index += 1
    return rows


# ----------------------------------------------------------------------
# Table 3: parameter inference from observed profiles
# ----------------------------------------------------------------------


def _infer_base_interval_ms(
    values_ms: Sequence[float],
    candidates_ms: Sequence[float],
    tolerance: float = 0.08,
    min_value_ms: float = 0.5,
) -> float:
    """Infer the base interval whose integer multiples best explain the observations.

    Among candidates whose mean relative deviation from integer multiples is
    within ``tolerance``, the *largest* one is returned, so a 20 ms pattern is
    not explained away as 20 x 1 ms.  When none fits, the candidate with the
    smallest deviation wins.
    """
    observations = np.asarray([v for v in values_ms if v > min_value_ms])
    if observations.size == 0:
        return float("nan")
    errors: Dict[float, float] = {}
    for candidate in candidates_ms:
        multiples = np.round(observations / candidate)
        multiples[multiples < 1] = 1
        errors[candidate] = float(np.mean(np.abs(observations - multiples * candidate) / candidate))
    fitting = [candidate for candidate, error in errors.items() if error <= tolerance]
    if fitting:
        return max(fitting)
    return min(errors, key=lambda candidate: errors[candidate])


def infer_scheduling_parameters(
    profile: "ThrottleProfile | ThrottleProfileSet",
    period_candidates_ms: Sequence[float] = (5.0, 10.0, 20.0, 25.0, 50.0, 100.0),
    tick_candidates_hz: Sequence[int] = (100, 250, 1000),
) -> Dict[str, float]:
    """Infer the bandwidth-control period and timer frequency from a throttle profile.

    The throttle *intervals* are integer multiples of the enforcement period
    (runtime is only refilled at period boundaries).  The *differences* between
    consecutive obtained-CPU values within an invocation are multiples of the
    scheduler tick, because runtime accounting (and therefore the point at
    which a task is cut off) only happens at ticks.
    """
    intervals_ms = [v * 1e3 for v in profile.throttle_intervals_s()]
    period_ms = _infer_base_interval_ms(intervals_ms, period_candidates_ms)
    if hasattr(profile, "obtained_cpu_diffs_s"):
        tick_signal_ms = [v * 1e3 for v in profile.obtained_cpu_diffs_s()]
    else:
        tick_signal_ms = [v * 1e3 for v in profile.obtained_cpu_times_s()]
    tick_candidates_ms = [1e3 / hz for hz in tick_candidates_hz]
    tick_ms = _infer_base_interval_ms(tick_signal_ms, tick_candidates_ms, min_value_ms=0.25)
    tick_hz = float(round(1e3 / tick_ms)) if tick_ms == tick_ms and tick_ms > 0 else float("nan")
    return {"period_ms": period_ms, "tick_hz": tick_hz}


def _ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no scipy dependency)."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    if a.size == 0 or b.size == 0:
        return float("inf")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def infer_scheduling_parameters_by_matching(
    profile: "ThrottleProfile | ThrottleProfileSet",
    vcpu_fraction: float,
    period_candidates_ms: Sequence[float] = (5.0, 10.0, 20.0, 25.0, 50.0, 100.0),
    tick_candidates_hz: Sequence[int] = (100, 250, 1000),
    reference_exec_duration_s: float = 2.0,
    reference_invocations: int = 4,
    seed: int = 97,
) -> Dict[str, float]:
    """Infer scheduling parameters by matching distributions against reference runs.

    This mirrors the paper's methodology: the observed throttle-interval and
    obtained-CPU distributions are compared (KS distance) against local runs
    with known (period, CONFIG_HZ) settings, and the best-matching setting is
    reported.  The period is first narrowed with the closed-form multiple-fit,
    then every (period, tick) candidate pair is simulated as a reference.
    """
    period_ms = _infer_base_interval_ms(
        [v * 1e3 for v in profile.throttle_intervals_s()], period_candidates_ms
    )
    if period_ms != period_ms:  # NaN: no throttles observed
        return {"period_ms": float("nan"), "tick_hz": float("nan")}
    observed_obtained = profile.obtained_cpu_times_s()
    observed_intervals = profile.throttle_intervals_s()
    observed_diffs = (
        profile.obtained_cpu_diffs_s() if hasattr(profile, "obtained_cpu_diffs_s") else []
    )
    best_tick = float("nan")
    best_distance = float("inf")
    for index, tick_hz in enumerate(tick_candidates_hz):
        reference = profile_configuration(
            vcpu_fraction=vcpu_fraction,
            period_s=period_ms * 1e-3,
            tick_hz=tick_hz,
            exec_duration_s=reference_exec_duration_s,
            invocations=reference_invocations,
            seed=seed + index,
        )
        distance = _ks_distance(observed_obtained, reference.obtained_cpu_times_s()) + 0.5 * _ks_distance(
            observed_intervals, reference.throttle_intervals_s()
        )
        if observed_diffs:
            # The step pattern of obtained CPU time is the sharpest CONFIG_HZ
            # signature, so weight it when the observed profile provides it.
            distance += _ks_distance(observed_diffs, reference.obtained_cpu_diffs_s())
        if distance < best_distance:
            best_distance = distance
            best_tick = float(tick_hz)
    return {"period_ms": period_ms, "tick_hz": best_tick, "match_distance": best_distance}


def table3_inference(
    exec_duration_s: float = 5.0,
    invocations: int = 10,
    vcpu_fraction: float = 0.25,
    seed: int = 17,
) -> List[Dict[str, float]]:
    """Table 3: infer each provider's scheduling parameters from simulated profiles."""
    rows: List[Dict[str, float]] = []
    for index, (provider, preset) in enumerate(PROVIDER_SCHED_PRESETS.items()):
        profile = profile_configuration(
            vcpu_fraction=vcpu_fraction,
            period_s=preset.period_s,
            tick_hz=preset.tick_hz,
            exec_duration_s=exec_duration_s,
            invocations=invocations,
            seed=seed + index,
        )
        inferred = infer_scheduling_parameters_by_matching(
            profile,
            vcpu_fraction=vcpu_fraction,
            reference_exec_duration_s=exec_duration_s,
            reference_invocations=max(invocations, 4),
        )
        paper = PAPER_TABLE3[provider]
        rows.append(
            {
                "provider": provider,  # type: ignore[dict-item]
                "inferred_period_ms": inferred["period_ms"],
                "inferred_tick_hz": inferred["tick_hz"],
                "paper_period_ms": paper["period_ms"],
                "paper_tick_hz": float(paper["tick_hz"]),
                "configured_period_ms": preset.period_s * 1e3,
                "configured_tick_hz": float(preset.tick_hz),
            }
        )
    return rows
