"""Per-experiment analyses: one module per paper figure or table.

Every module exposes functions returning lists of row dictionaries (the same
rows the paper's figure/table reports), so benchmarks and the CLI can print
them and EXPERIMENTS.md can record paper-versus-measured values.
"""

from repro.analysis.experiments import EXPERIMENTS, run_experiment, list_experiments

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]
