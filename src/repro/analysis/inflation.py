"""Figure 2: billable resources versus actual consumption under different billing models."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.billing.catalog import PlatformName
from repro.billing.inflation import FIGURE2_PLATFORMS, InflationAnalyzer
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.schema import Trace
from repro.traces.statistics import cdf_points

__all__ = ["figure2_summary", "figure2_cdf_series", "default_trace"]

#: Paper-reported mean inflation factors (billable / actual), for EXPERIMENTS.md.
PAPER_INFLATION = {
    "cloudflare_workers": {"cpu": 1.01},
    "gcp_run_request": {"cpu": 3.63, "memory": 4.35},
    "azure_consumption": {"memory": 1.57},
    "aws_lambda": {"cpu": 2.49, "memory": 2.72},
}


def default_trace(num_requests: int = 20_000, seed: int = 2026) -> Trace:
    """The synthetic Huawei-like trace every §2 analysis uses by default."""
    config = TraceGeneratorConfig(num_requests=num_requests, num_functions=200, seed=seed)
    return TraceGenerator(config).generate()


def figure2_summary(
    trace: Optional[Trace] = None,
    platforms: Sequence[PlatformName] = FIGURE2_PLATFORMS,
) -> List[Dict[str, float]]:
    """Mean billable-over-actual inflation per platform (the Figure 2 headline numbers)."""
    trace = trace if trace is not None else default_trace()
    analyzer = InflationAnalyzer(platforms)
    rows: List[Dict[str, float]] = []
    for platform, result in analyzer.analyze(trace).items():
        paper = PAPER_INFLATION.get(platform.value, {})
        rows.append(
            {
                "platform": platform.value,
                "cpu_inflation": result.aggregate_cpu_inflation,
                "memory_inflation": result.aggregate_memory_inflation,
                "paper_cpu_inflation": paper.get("cpu", float("nan")),
                "paper_memory_inflation": paper.get("memory", float("nan")),
                "num_requests": float(len(result.billable_cpu_seconds)),
            }
        )
    return rows


def figure2_cdf_series(
    trace: Optional[Trace] = None,
    platforms: Sequence[PlatformName] = FIGURE2_PLATFORMS,
    num_points: int = 50,
) -> Dict[str, Dict[str, List]]:
    """The CDF series of Figure 2: billable vCPU-seconds and GB-seconds per platform.

    Returns ``{"cpu": {label: [(value, prob), ...]}, "memory": {...}}`` with an
    extra ``actual_usage`` series in each group, matching the figure's legend.
    """
    trace = trace if trace is not None else default_trace()
    analyzer = InflationAnalyzer(platforms)
    results = analyzer.analyze(trace)
    cpu_series: Dict[str, List] = {}
    memory_series: Dict[str, List] = {}
    first = next(iter(results.values()))
    cpu_series["actual_usage"] = cdf_points(first.actual_cpu_seconds, num_points)
    memory_series["actual_usage"] = cdf_points(first.actual_memory_gb_seconds, num_points)
    for platform, result in results.items():
        if any(v > 0 for v in result.billable_cpu_seconds):
            cpu_series[platform.value] = cdf_points(result.billable_cpu_seconds, num_points)
        if any(v > 0 for v in result.billable_memory_gb_seconds):
            memory_series[platform.value] = cdf_points(result.billable_memory_gb_seconds, num_points)
    return {"cpu": cpu_series, "memory": memory_series}
