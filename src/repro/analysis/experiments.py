"""Registry of every reproduced experiment: table/figure id -> callable producing rows.

This is the per-experiment index DESIGN.md refers to: each entry knows which
paper artefact it regenerates, which modules implement it, and how to produce
the result rows.  The CLI (``repro-serverless-costs run <experiment>``) and the
benchmark harness both resolve experiments through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One reproduced table or figure."""

    experiment_id: str
    title: str
    modules: str
    runner: Callable[[], List[Mapping[str, object]]]
    notes: str = ""


def _table1() -> List[Mapping[str, object]]:
    from repro.billing.catalog import PLATFORM_BILLING_MODELS

    return [model.describe() for model in PLATFORM_BILLING_MODELS.values()]


def _figure1() -> List[Mapping[str, object]]:
    from repro.billing.pricing import figure1_series, price_comparison_vs_vm

    rows: List[Mapping[str, object]] = list(figure1_series())
    comparison = price_comparison_vs_vm()
    rows.append({"platform": "ec2_vs_lambda_fraction", "cpu_per_vcpu_second": comparison["ec2_fraction_of_lambda"]})
    rows.append(
        {"platform": "fargate_vs_lambda_fraction", "cpu_per_vcpu_second": comparison["fargate_fraction_of_lambda"]}
    )
    return rows


def _figure2() -> List[Mapping[str, object]]:
    from repro.analysis.inflation import figure2_summary

    return figure2_summary()


def _figure3() -> List[Mapping[str, object]]:
    from repro.analysis.utilization import figure3_summary

    return figure3_summary()


def _figure4() -> List[Mapping[str, object]]:
    from repro.analysis.coldstart import figure4_summary

    return figure4_summary()


def _figure5() -> List[Mapping[str, object]]:
    from repro.analysis.rounding import figure5_invocation_fee_equivalents, figure5_rounding_summary

    rows: List[Mapping[str, object]] = list(figure5_rounding_summary())
    fee_rows = figure5_invocation_fee_equivalents(vcpu_sweep=(0.072, 0.25, 0.5, 1.0))
    rows.extend(fee_rows)
    return rows


def _figure6() -> List[Mapping[str, object]]:
    from repro.analysis.concurrency import figure6_burst_sweep, figure6_slowdown_summary

    rows = figure6_burst_sweep(rps_sweep=(1, 6, 15, 30), burst_duration_s=60.0)
    return list(rows) + list(figure6_slowdown_summary(rows))


def _figure8() -> List[Mapping[str, object]]:
    from repro.analysis.overhead import figure8_overhead

    return figure8_overhead(num_requests=200)


def _figure9() -> List[Mapping[str, object]]:
    from repro.analysis.keepalive import figure9_cold_start_probabilities

    return figure9_cold_start_probabilities(idle_times_s=(60, 180, 300, 330, 360, 600, 720, 900, 1020))


def _table2() -> List[Mapping[str, object]]:
    from repro.analysis.keepalive import table2_keepalive_behavior

    return table2_keepalive_behavior()


def _figure10() -> List[Mapping[str, object]]:
    from repro.analysis.overallocation import figure10_allocation_sweep

    return figure10_allocation_sweep(samples_per_point=5)


def _figure11() -> List[Mapping[str, object]]:
    from repro.analysis.quantization import figure11_series, figure11_summary

    return figure11_summary(figure11_series())


def _figure12() -> List[Mapping[str, object]]:
    from repro.analysis.throttle import figure12_cfs_vs_eevdf, figure12_provider_profiles

    rows = figure12_provider_profiles(exec_duration_s=2.0, invocations=4)
    rows.extend(figure12_cfs_vs_eevdf(exec_duration_s=2.0, invocations=4))
    return rows


def _table3() -> List[Mapping[str, object]]:
    from repro.analysis.throttle import table3_inference

    return table3_inference(exec_duration_s=2.0, invocations=4)


def _exploit() -> List[Mapping[str, object]]:
    from repro.analysis.exploit import exploit_summary

    return exploit_summary()


def _cluster_costs() -> List[Mapping[str, object]]:
    from repro.analysis.cluster_costs import cluster_costs_experiment

    return cluster_costs_experiment()


def _backpressure() -> List[Mapping[str, object]]:
    from repro.analysis.backpressure import backpressure_experiment

    return backpressure_experiment()


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment(
        "table1", "Billing models of major serverless platforms", "repro.billing.catalog", _table1
    ),
    "figure1": Experiment(
        "figure1", "vCPU and memory unit prices; serverless vs VM comparison", "repro.billing.pricing", _figure1
    ),
    "figure2": Experiment(
        "figure2", "Billable resources under different billing models", "repro.analysis.inflation", _figure2
    ),
    "figure3": Experiment(
        "figure3", "Resource utilisation distributions and correlation", "repro.analysis.utilization", _figure3
    ),
    "figure4": Experiment(
        "figure4", "Cold-start vs execution billable-resource differences", "repro.analysis.coldstart", _figure4
    ),
    "figure5": Experiment(
        "figure5", "Invocation fee equivalents and rounded-up usage", "repro.analysis.rounding", _figure5
    ),
    "figure6": Experiment(
        "figure6", "Execution duration under varying request rates", "repro.analysis.concurrency", _figure6
    ),
    "figure8": Experiment(
        "figure8", "Serving-architecture overhead of a minimal function", "repro.analysis.overhead", _figure8
    ),
    "figure9": Experiment(
        "figure9", "Cold-start probability versus idle time", "repro.analysis.keepalive", _figure9
    ),
    "table2": Experiment(
        "table2", "Resource allocation behaviour during keep-alive", "repro.analysis.keepalive", _table2
    ),
    "figure10": Experiment(
        "figure10", "Execution duration versus fractional CPU allocation", "repro.analysis.overallocation", _figure10
    ),
    "figure11": Experiment(
        "figure11", "Theoretical durations under bandwidth-control periods", "repro.analysis.quantization", _figure11
    ),
    "figure12": Experiment(
        "figure12", "Throttle interval/duration/obtained-CPU distributions", "repro.analysis.throttle", _figure12
    ),
    "table3": Experiment(
        "table3", "Inferred provider scheduling parameters", "repro.analysis.throttle", _table3
    ),
    "exploit": Experiment(
        "exploit", "Intermittent-execution and keep-alive exploits", "repro.analysis.exploit", _exploit
    ),
    "cluster_costs": Experiment(
        "cluster_costs",
        "Cluster co-simulation: fleet density and live-metered cost",
        "repro.analysis.cluster_costs",
        _cluster_costs,
    ),
    "backpressure": Experiment(
        "backpressure",
        "Admission backpressure: queue depth x placement policy x heterogeneity",
        "repro.analysis.backpressure",
        _backpressure,
    ),
}


def list_experiments() -> List[str]:
    """All experiment ids in paper order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> List[Mapping[str, object]]:
    """Run one experiment by id and return its result rows."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(f"unknown experiment {experiment_id!r}; valid: {list(EXPERIMENTS)}") from None
    return experiment.runner()
