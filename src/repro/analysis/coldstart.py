"""Figure 4: billable resources of cold starts versus subsequent requests in the same sandbox.

For every traceable cold start the paper computes the difference between the
billable resources consumed by all requests subsequently served by the sandbox
and the billable resources consumed by the initialisation itself (wall-clock
allocation during init).  A zero-or-negative difference means the cold start
alone cost the provider at least as much as everything the sandbox later
earned under execution-duration billing -- the paper finds this for ~42.1% of
cold starts, which explains the industry shift to turnaround-time billing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.inflation import default_trace
from repro.traces.schema import Trace
from repro.traces.statistics import cdf_points

__all__ = ["figure4_differences", "figure4_summary", "PAPER_NEGATIVE_OR_ZERO_FRACTION"]

#: Paper-reported fraction of cold starts with zero or negative difference.
PAPER_NEGATIVE_OR_ZERO_FRACTION = 0.421


def figure4_differences(trace: Optional[Trace] = None) -> Dict[str, List[float]]:
    """Per-cold-start differences (execution billables minus init billables).

    Returns two lists, one for CPU (vCPU-seconds) and one for memory
    (GB-seconds), matching the two CDFs overlaid in Figure 4.
    """
    trace = trace if trace is not None else default_trace()
    requests_by_pod: Dict[str, List] = {}
    for record in trace.requests:
        requests_by_pod.setdefault(record.pod_id, []).append(record)
    cpu_diffs: List[float] = []
    memory_diffs: List[float] = []
    for cold_start in trace.cold_starts:
        pod_requests = requests_by_pod.get(cold_start.pod_id, [])
        exec_cpu = sum(r.alloc_vcpus * r.duration_s for r in pod_requests)
        exec_memory = sum(r.alloc_memory_gb * r.duration_s for r in pod_requests)
        cpu_diffs.append(exec_cpu - cold_start.init_cpu_seconds)
        memory_diffs.append(exec_memory - cold_start.init_memory_gb_seconds)
    return {"cpu": cpu_diffs, "memory": memory_diffs}


def figure4_summary(trace: Optional[Trace] = None) -> List[Dict[str, float]]:
    """Fractions of cold starts whose execution-phase billables do not cover the init cost."""
    diffs = figure4_differences(trace)
    rows: List[Dict[str, float]] = []
    for resource, values in diffs.items():
        if not values:
            continue
        negative_or_zero = sum(1 for v in values if v <= 0) / len(values)
        rows.append(
            {
                "resource": resource,
                "num_cold_starts": float(len(values)),
                "negative_or_zero_fraction": negative_or_zero,
                "paper_negative_or_zero_fraction": PAPER_NEGATIVE_OR_ZERO_FRACTION,
            }
        )
    return rows


def figure4_cdf_series(trace: Optional[Trace] = None, num_points: int = 50) -> Dict[str, List]:
    """The CDF series plotted in Figure 4."""
    diffs = figure4_differences(trace)
    return {resource: cdf_points(values, num_points) for resource, values in diffs.items()}
