"""Figure 6: execution duration under varying request rates and the scaling-lag timeline."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.platform.config import PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.sim.sweep import Scenario, platform_point, run_sweep
from repro.workloads.functions import PYAES_FUNCTION, WorkloadSpec
from repro.workloads.traffic import constant_rate_arrivals, poisson_arrivals

__all__ = ["figure6_burst_sweep", "figure6_long_run_timeline", "run_burst_point", "PAPER_FIG6"]

#: Paper-reported reference points for EXPERIMENTS.md.
PAPER_FIG6 = {
    "gcp_max_slowdown": 9.65,  # mean duration rise at high RPS vs low RPS
    "gcp_steady_state_slowdown": 1.43,  # 239.29 ms vs 166.78 ms at 15 RPS steady state
    "scaling_start_s": 40.0,
    "stabilization_s": 90.0,
}

DEFAULT_RPS_SWEEP: Sequence[float] = (1, 2, 4, 6, 8, 10, 15, 20, 25, 30)


def run_burst_point(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Sweep runner: one (platform, rps) burst simulation of Figure 6 (left).

    Delegates the simulation to the generic :func:`repro.sim.sweep.platform_point`
    runner and projects its row down to the figure's legacy column set.
    """
    full = platform_point(
        {
            "platform": params["platform"],
            "workload": params["workload"],
            "label": params["label"],
            "rps": params["rps"],
            "duration_s": params["burst_duration_s"],
            "alloc_vcpus": params.get("alloc_vcpus", 1.0),
            "alloc_memory_gb": params.get("alloc_memory_gb", 2.0),
            "init_duration_s": 1.5,
        },
        seed,
    )
    columns = (
        "platform",
        "rps",
        "mean_duration_ms",
        "median_duration_ms",
        "p95_duration_ms",
        "max_instances",
        "num_requests",
    )
    return {key: full[key] for key in columns}


def figure6_burst_sweep(
    workload: WorkloadSpec = PYAES_FUNCTION,
    platforms: Optional[Dict[str, PlatformConfig]] = None,
    rps_sweep: Sequence[float] = DEFAULT_RPS_SWEEP,
    burst_duration_s: float = 120.0,
    alloc_vcpus: float = 1.0,
    alloc_memory_gb: float = 2.0,
    seed: int = 1,
    processes: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 6 (left): mean/median execution duration versus request rate per platform.

    The (platform x rps) grid runs through the :mod:`repro.sim.sweep`
    orchestrator; pass ``processes`` to fan the points out across cores
    (results are identical to the sequential run).
    """
    if platforms is None:
        platforms = {
            "aws": get_platform_preset("aws_lambda_like"),
            "gcp": get_platform_preset("gcp_run_like"),
        }
    scenarios = [
        Scenario(
            scenario_id=f"fig6/platform={label}/rps={rps}",
            runner="repro.analysis.concurrency:run_burst_point",
            params={
                "label": label,
                "platform": preset,
                "workload": workload,
                "rps": float(rps),
                "burst_duration_s": burst_duration_s,
                "alloc_vcpus": alloc_vcpus,
                "alloc_memory_gb": alloc_memory_gb,
            },
            seed=seed,
        )
        for label, preset in platforms.items()
        for rps in rps_sweep
    ]
    return [dict(row) for row in run_sweep(scenarios, processes=processes)]


def figure6_slowdown_summary(rows: List[Dict[str, float]]) -> List[Dict[str, float]]:
    """Per-platform max slowdown of the mean duration relative to the lowest request rate."""
    out: List[Dict[str, float]] = []
    platforms = sorted({row["platform"] for row in rows})
    for platform in platforms:
        platform_rows = sorted((r for r in rows if r["platform"] == platform), key=lambda r: r["rps"])
        baseline = platform_rows[0]["mean_duration_ms"]
        max_mean = max(r["mean_duration_ms"] for r in platform_rows)
        out.append(
            {
                "platform": platform,
                "baseline_mean_ms": baseline,
                "max_mean_ms": max_mean,
                "max_slowdown": max_mean / baseline if baseline > 0 else float("nan"),
            }
        )
    return out


def figure6_long_run_timeline(
    workload: WorkloadSpec = PYAES_FUNCTION,
    platform: Optional[PlatformConfig] = None,
    rps: float = 15.0,
    duration_s: float = 300.0,
    bucket_s: float = 10.0,
    alloc_vcpus: float = 1.0,
    alloc_memory_gb: float = 2.0,
    seed: int = 2,
    poisson: bool = True,
) -> List[Dict[str, float]]:
    """Figure 6 (right): mean/median/p95 duration and instance count over time at steady traffic."""
    platform = platform or get_platform_preset("gcp_run_like")
    function = workload.to_function_config(alloc_vcpus, alloc_memory_gb, init_duration_s=1.5)
    simulator = PlatformSimulator(platform, function, seed=seed)
    if poisson:
        arrivals = poisson_arrivals(rps, duration_s, seed=seed)
    else:
        arrivals = constant_rate_arrivals(rps, duration_s)
    metrics = simulator.run(arrivals)
    return metrics.duration_timeline(bucket_s=bucket_s)


def figure6_long_run_summary(timeline: List[Dict[str, float]], tail_start_s: float = 120.0) -> Dict[str, float]:
    """Scaling-lag metrics from the long-run timeline: when scaling starts and the steady state."""
    if not timeline:
        return {}
    initial_instances = timeline[0]["instances"]
    scaling_start = float("nan")
    for row in timeline:
        if not np.isnan(row["instances"]) and row["instances"] > initial_instances + 0.5:
            scaling_start = row["time_s"]
            break
    steady_rows = [r for r in timeline if r["time_s"] >= tail_start_s]
    steady_mean = float(np.mean([r["mean_duration_s"] for r in steady_rows])) if steady_rows else float("nan")
    return {
        "scaling_start_s": scaling_start,
        "steady_state_mean_duration_s": steady_mean,
        "peak_mean_duration_s": max(r["mean_duration_s"] for r in timeline),
        "max_instances": max(r["instances"] for r in timeline if not np.isnan(r["instances"])),
    }
