"""Figure 5: invocation-fee equivalents and rounded-up billable time / memory.

Left panel: the fixed invocation fee expressed as equivalent billable
wall-clock milliseconds at different vCPU/memory allocations (96 ms for a
128 MB AWS Lambda function).  Right panels: the distribution of rounded-up
wall-clock time and billable memory for requests with at least 1 ms of
execution, under 100 ms granularity, 1 ms granularity with a 100 ms minimum
cutoff, and 128 MB memory granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.inflation import default_trace
from repro.billing.calculator import BillingCalculator
from repro.billing.catalog import PlatformName
from repro.billing.units import MB, round_up
from repro.traces.schema import Trace
from repro.traces.statistics import cdf_points

__all__ = [
    "figure5_invocation_fee_equivalents",
    "figure5_rounding_summary",
    "figure5_rounding_cdf_series",
    "PAPER_ROUNDING_MEANS",
]

#: Paper-reported means for the rounding analysis.
PAPER_ROUNDING_MEANS = {
    "rounded_time_100ms_gran_ms": 77.12,
    "rounded_time_1ms_gran_100ms_cutoff_ms": 61.35,
    "rounded_memory_128mb_gran_gb_s": 2.67e-2,
    "mean_execution_ms": 58.19,
    "mean_billable_memory_gb_s": 2.75e-2,
}

#: The allocation sweep of the left panel, expressed in vCPUs (AWS maps memory
#: to vCPUs proportionally; other platforms use their own mapping).
DEFAULT_VCPU_SWEEP: Sequence[float] = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)

#: Platforms shown in the left panel of Figure 5.
FEE_PLATFORMS: Sequence[PlatformName] = (
    PlatformName.AWS_LAMBDA,
    PlatformName.GCP_RUN_REQUEST,
    PlatformName.AZURE_CONSUMPTION,
    PlatformName.IBM_CODE_ENGINE,
    PlatformName.CLOUDFLARE_WORKERS,
    PlatformName.HUAWEI_FUNCTIONGRAPH,
)


def figure5_invocation_fee_equivalents(
    vcpu_sweep: Sequence[float] = DEFAULT_VCPU_SWEEP,
    platforms: Sequence[PlatformName] = FEE_PLATFORMS,
) -> List[Dict[str, float]]:
    """Invocation fee expressed as equivalent billable wall-clock time (Figure 5, left)."""
    rows: List[Dict[str, float]] = []
    for platform in platforms:
        calculator = BillingCalculator(platform)
        for vcpus in vcpu_sweep:
            memory_gb = vcpus * (1769.0 / 1024.0)
            equivalent_ms = calculator.invocation_fee_equivalent_ms(vcpus, memory_gb)
            rows.append(
                {
                    "platform": platform.value,
                    "vcpu_allocation": vcpus,
                    "memory_gb": memory_gb,
                    "fee_equivalent_ms": equivalent_ms,
                }
            )
    return rows


def _rounding_values(trace: Trace) -> Dict[str, List[float]]:
    """Per-request rounded-up billable time and memory under the studied granularities."""
    requests = [r for r in trace.exclude_zero_cpu().requests if r.duration_s >= 1e-3]
    time_100ms: List[float] = []
    time_1ms_cutoff: List[float] = []
    memory_128mb: List[float] = []
    for record in requests:
        time_100ms.append(round_up(record.duration_s, 0.1))
        time_1ms_cutoff.append(max(round_up(record.duration_s, 1e-3), 0.1))
        billable_time = max(round_up(record.duration_s, 1e-3), 0.1)
        memory_128mb.append(round_up(record.usage.memory_gb, 128 * MB) * billable_time)
    return {
        "rounded_time_100ms_gran_s": time_100ms,
        "rounded_time_1ms_gran_100ms_cutoff_s": time_1ms_cutoff,
        "rounded_memory_128mb_gran_gb_s": memory_128mb,
        "raw_execution_s": [r.duration_s for r in requests],
        "raw_memory_gb_s": [r.usage.memory_gb * r.duration_s for r in requests],
    }


def figure5_rounding_summary(trace: Optional[Trace] = None) -> List[Dict[str, float]]:
    """Mean rounded-up billable time and memory (the Figure 5 headline numbers)."""
    trace = trace if trace is not None else default_trace()
    values = _rounding_values(trace)

    def mean(xs: List[float]) -> float:
        return sum(xs) / len(xs) if xs else float("nan")

    return [
        {
            "metric": "rounded_time_100ms_gran_ms",
            "measured": mean(values["rounded_time_100ms_gran_s"]) * 1e3,
            "paper": PAPER_ROUNDING_MEANS["rounded_time_100ms_gran_ms"],
        },
        {
            "metric": "rounded_time_1ms_gran_100ms_cutoff_ms",
            "measured": mean(values["rounded_time_1ms_gran_100ms_cutoff_s"]) * 1e3,
            "paper": PAPER_ROUNDING_MEANS["rounded_time_1ms_gran_100ms_cutoff_ms"],
        },
        {
            "metric": "rounded_memory_128mb_gran_gb_s",
            "measured": mean(values["rounded_memory_128mb_gran_gb_s"]),
            "paper": PAPER_ROUNDING_MEANS["rounded_memory_128mb_gran_gb_s"],
        },
        {
            "metric": "mean_execution_ms",
            "measured": mean(values["raw_execution_s"]) * 1e3,
            "paper": PAPER_ROUNDING_MEANS["mean_execution_ms"],
        },
        {
            "metric": "mean_billable_memory_gb_s",
            "measured": mean(values["raw_memory_gb_s"]),
            "paper": PAPER_ROUNDING_MEANS["mean_billable_memory_gb_s"],
        },
    ]


def figure5_rounding_cdf_series(trace: Optional[Trace] = None, num_points: int = 50) -> Dict[str, List]:
    """The CDF series of the right-hand panels of Figure 5."""
    trace = trace if trace is not None else default_trace()
    values = _rounding_values(trace)
    return {
        "rounded_time_100ms_gran_s": cdf_points(values["rounded_time_100ms_gran_s"], num_points),
        "rounded_time_1ms_gran_100ms_cutoff_s": cdf_points(
            values["rounded_time_1ms_gran_100ms_cutoff_s"], num_points
        ),
        "rounded_memory_128mb_gran_gb_s": cdf_points(
            values["rounded_memory_128mb_gran_gb_s"], num_points
        ),
    }
