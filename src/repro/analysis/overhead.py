"""Figure 8: serving-architecture overhead measured with a minimal function."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.platform.config import PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import get_platform_preset
from repro.workloads.functions import MINIMAL_FUNCTION, WorkloadSpec
from repro.workloads.traffic import constant_rate_arrivals

__all__ = ["figure8_overhead", "PAPER_FIG8"]

#: Paper-reported mean execution durations of the minimal function (ms).
PAPER_FIG8 = {
    "aws_128mb": 1.17,
    "aws_1769mb": 1.17,
    "gcp_0.08vcpu": 5.93,
    "gcp_1vcpu": 3.5,
    "azure_consumption": 5.0,
    "cloudflare_workers": 0.01,
}

#: The (label, preset name, vCPU allocation, memory GB) configurations of Figure 8.
DEFAULT_CONFIGS: Sequence[Tuple[str, str, float, float]] = (
    ("aws_128mb", "aws_lambda_like", 0.072, 0.125),
    ("aws_1769mb", "aws_lambda_like", 1.0, 1.769),
    ("gcp_0.08vcpu", "gcp_run_like", 0.08, 0.5),
    ("gcp_1vcpu", "gcp_run_like", 1.0, 0.5),
    ("azure_consumption", "azure_consumption_like", 1.0, 1.5),
    ("cloudflare_workers", "cloudflare_workers_like", 1.0, 0.125),
)


def figure8_overhead(
    workload: WorkloadSpec = MINIMAL_FUNCTION,
    configs: Sequence[Tuple[str, str, float, float]] = DEFAULT_CONFIGS,
    num_requests: int = 500,
    rps: float = 2.0,
    seed: int = 7,
    platform_overrides: Optional[Dict[str, PlatformConfig]] = None,
) -> List[Dict[str, float]]:
    """Mean and p95 execution duration of the minimal function per platform configuration."""
    rows: List[Dict[str, float]] = []
    for label, preset_name, vcpus, memory_gb in configs:
        preset = (platform_overrides or {}).get(preset_name) or get_platform_preset(preset_name)
        function = workload.to_function_config(vcpus, memory_gb, init_duration_s=0.5)
        simulator = PlatformSimulator(preset, function, seed=seed)
        arrivals = constant_rate_arrivals(rps, num_requests / rps)
        metrics = simulator.run(arrivals)
        # Warm requests only: the figure reports execution duration, which does
        # not include initialisation, and the paper sends steady probe traffic.
        durations = [r.execution_duration_s for r in metrics.requests if not r.cold_start]
        if not durations:
            durations = metrics.execution_durations_s()
        rows.append(
            {
                "configuration": label,
                "architecture": preset.architecture.value,
                "mean_duration_ms": float(np.mean(durations)) * 1e3,
                "p95_duration_ms": float(np.quantile(durations, 0.95)) * 1e3,
                "paper_mean_ms": PAPER_FIG8.get(label, float("nan")),
                "num_requests": float(len(durations)),
            }
        )
    return rows
