"""Figure 10: execution duration versus fractional CPU allocation (overallocation study)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.sched.analytical import expected_duration_reciprocal, quantization_jump_allocations
from repro.sched.cgroup import BandwidthConfig
from repro.sched.engine import SchedulerConfig, SchedulerSim
from repro.sched.policies import PolicyParameters, SchedulingPolicy
from repro.sched.presets import PROVIDER_SCHED_PRESETS
from repro.sched.task import SimTask
from repro.sim.sweep import Scenario, run_sweep

__all__ = [
    "figure10_allocation_sweep",
    "figure10_summary",
    "aws_memory_to_vcpus",
    "run_allocation_point",
    "DEFAULT_AWS_MEMORY_SWEEP_MB",
]

#: Memory sizes (MB) swept on AWS Lambda in Figure 10a.
DEFAULT_AWS_MEMORY_SWEEP_MB: Sequence[int] = (
    128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1536, 1664, 1769,
)

#: vCPU allocations swept on GCP in Figure 10b.
DEFAULT_GCP_VCPU_SWEEP: Sequence[float] = (
    0.08, 0.12, 0.16, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


def aws_memory_to_vcpus(memory_mb: float) -> float:
    """AWS Lambda's proportional CPU allocation: 1,769 MB corresponds to 1 vCPU."""
    if memory_mb <= 0:
        raise ValueError("memory_mb must be positive")
    return min(memory_mb / 1769.0, 1.0)


def _simulate_duration(
    cpu_time_s: float,
    vcpu_fraction: float,
    period_s: float,
    tick_hz: int,
    samples: int,
    seed: int,
    policy: SchedulingPolicy = SchedulingPolicy.CFS,
) -> List[float]:
    """Simulate one CPU-bound request ``samples`` times with random phase offsets."""
    rng = np.random.default_rng(seed)
    durations: List[float] = []
    bandwidth = BandwidthConfig.for_vcpu_fraction(vcpu_fraction, period_s=period_s)
    horizon = max(expected_duration_reciprocal(cpu_time_s, vcpu_fraction) * 4 + 1.0, 2.0)
    for _ in range(samples):
        config = SchedulerConfig(
            bandwidth=bandwidth,
            tick_hz=tick_hz,
            policy=PolicyParameters(policy=policy),
            tick_phase_s=float(rng.uniform(0.0, 1.0 / tick_hz)),
            period_phase_s=float(rng.uniform(0.0, period_s)),
            horizon_s=horizon,
        )
        task = SimTask.cpu_bound(cpu_time_s, name="probe")
        result = SchedulerSim(config, [task]).run().single
        if result.finished:
            durations.append(result.duration_s)
    return durations


def run_allocation_point(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Sweep runner: one fractional-allocation point of Figure 10."""
    provider = str(params["provider"])
    cpu_time_s = float(params["cpu_time_s"])  # type: ignore[arg-type]
    fraction = float(params["vcpu_fraction"])  # type: ignore[arg-type]
    preset = PROVIDER_SCHED_PRESETS[provider]
    durations = _simulate_duration(
        cpu_time_s=cpu_time_s,
        vcpu_fraction=fraction,
        period_s=preset.period_s,
        tick_hz=preset.tick_hz,
        samples=int(params.get("samples_per_point", 20)),  # type: ignore[arg-type]
        seed=seed,
    )
    expected = expected_duration_reciprocal(cpu_time_s, fraction)
    return {
        "provider": provider,
        "vcpu_fraction": fraction,
        "memory_mb": float(fraction * 1769.0) if provider == "aws_lambda" else float("nan"),
        "empirical_mean_duration_ms": float(np.mean(durations)) * 1e3,
        "empirical_p5_duration_ms": float(np.quantile(durations, 0.05)) * 1e3,
        "expected_duration_ms": expected * 1e3,
        "overallocation_ratio": expected / float(np.mean(durations)) if durations else float("nan"),
        "samples": float(len(durations)),
    }


def figure10_allocation_sweep(
    provider: str = "aws_lambda",
    cpu_time_s: float = 0.016,
    vcpu_fractions: Optional[Sequence[float]] = None,
    samples_per_point: int = 20,
    seed: int = 3,
    processes: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Figure 10: empirical versus expected duration across fractional allocations.

    ``provider`` selects the bandwidth period and timer frequency (Table 3).
    The default CPU time of ~16 ms reproduces the harmonic jump positions the
    paper observes on AWS (~1,400 MB x {1, 1/2, 1/3, ...}).  Each allocation
    is one scenario of a :mod:`repro.sim.sweep` run (seeded ``seed + index``
    as before); pass ``processes`` to fan the points out across cores.
    """
    if vcpu_fractions is None:
        if provider == "aws_lambda":
            vcpu_fractions = [aws_memory_to_vcpus(m) for m in DEFAULT_AWS_MEMORY_SWEEP_MB]
        else:
            vcpu_fractions = list(DEFAULT_GCP_VCPU_SWEEP)
    scenarios = [
        Scenario(
            scenario_id=f"fig10/provider={provider}/fraction={fraction}",
            runner="repro.analysis.overallocation:run_allocation_point",
            params={
                "provider": provider,
                "cpu_time_s": cpu_time_s,
                "vcpu_fraction": float(fraction),
                "samples_per_point": samples_per_point,
            },
            seed=seed + index,
        )
        for index, fraction in enumerate(vcpu_fractions)
    ]
    return [dict(row) for row in run_sweep(scenarios, processes=processes)]


def figure10_summary(rows: List[Dict[str, float]]) -> Dict[str, float]:
    """Headline statistics: how often the empirical mean beats the reciprocal expectation."""
    below = [r for r in rows if r["empirical_mean_duration_ms"] <= r["expected_duration_ms"] * 1.02]
    sub_core = [r for r in rows if r["vcpu_fraction"] < 1.0]
    return {
        "num_points": float(len(rows)),
        "points_at_or_below_expected": float(len(below)),
        "fraction_at_or_below_expected": len(below) / len(rows) if rows else float("nan"),
        "mean_overallocation_ratio_subcore": float(
            np.mean([r["overallocation_ratio"] for r in sub_core])
        )
        if sub_core
        else float("nan"),
    }


def figure10_jump_positions(
    provider: str = "aws_lambda", cpu_time_s: float = 0.016, max_jumps: int = 6
) -> List[Dict[str, float]]:
    """Predicted quantization-jump allocations (the harmonic sequence of §4.1)."""
    preset = PROVIDER_SCHED_PRESETS[provider]
    fractions = quantization_jump_allocations(cpu_time_s, preset.period_s, max_jumps=max_jumps)
    return [
        {
            "provider": provider,
            "jump_index": float(i + 1),
            "vcpu_fraction": fraction,
            "memory_mb": fraction * 1769.0 if provider == "aws_lambda" else float("nan"),
        }
        for i, fraction in enumerate(fractions)
    ]
