"""Figure 9 and Table 2: keep-alive durations, cold-start probabilities, and idle-resource behaviour."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.platform.config import PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.presets import PLATFORM_PRESETS, get_platform_preset
from repro.sim.sweep import Scenario, resolve_workload, run_sweep
from repro.workloads.functions import MINIMAL_FUNCTION, WorkloadSpec

__all__ = [
    "figure9_cold_start_probabilities",
    "figure9_probe_simulation",
    "run_probe_point",
    "table2_keepalive_behavior",
    "PAPER_KEEP_ALIVE_WINDOWS",
]

#: Paper-reported keep-alive windows (seconds) for EXPERIMENTS.md.
PAPER_KEEP_ALIVE_WINDOWS = {
    "aws_lambda_like": (300.0, 360.0),
    "azure_consumption_like": (120.0, 360.0),
    "gcp_run_like": (600.0, 900.0),
}

#: The idle-time grid of Figure 9 (60 s to 1020 s in 60 s steps).
DEFAULT_IDLE_TIMES_S: Sequence[float] = tuple(float(x) for x in range(60, 1021, 60))


def figure9_cold_start_probabilities(
    platforms: Optional[Dict[str, PlatformConfig]] = None,
    idle_times_s: Sequence[float] = DEFAULT_IDLE_TIMES_S,
) -> List[Dict[str, float]]:
    """Cold-start probability versus idle time per platform, from the keep-alive policies."""
    if platforms is None:
        platforms = {
            name: preset
            for name, preset in PLATFORM_PRESETS.items()
            if name in ("aws_lambda_like", "azure_consumption_like", "gcp_run_like")
        }
    rows: List[Dict[str, float]] = []
    for label, preset in platforms.items():
        for idle in idle_times_s:
            rows.append(
                {
                    "platform": label,
                    "idle_time_s": float(idle),
                    "cold_start_probability": preset.keep_alive.cold_start_probability(idle),
                }
            )
    return rows


def run_probe_point(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Sweep runner: probe one (platform, idle-time) point of Figure 9.

    One long simulation per idle interval: probe requests spaced by the idle
    gap; the measured cold fraction (first always-cold probe excluded) is
    compared against the keep-alive policy's analytic probability.
    """
    platform_name = str(params["platform"])
    idle = float(params["idle_time_s"])  # type: ignore[arg-type]
    probes = int(params.get("probes_per_idle_time", 30))  # type: ignore[arg-type]
    workload = resolve_workload(params["workload"])
    preset = get_platform_preset(platform_name)
    function = workload.to_function_config(1.0, 0.5, init_duration_s=1.0)
    arrivals = [i * (idle + function.service_time_s + 2.0) for i in range(probes)]
    simulator = PlatformSimulator(preset, function, seed=seed)
    metrics = simulator.run(arrivals)
    outcomes = sorted(metrics.requests, key=lambda r: r.arrival_s)
    # Skip the first probe: it is always cold (no sandbox exists yet).
    later = outcomes[1:]
    cold = sum(1 for r in later if r.cold_start)
    return {
        "platform": platform_name,
        "idle_time_s": idle,
        "measured_cold_start_probability": cold / len(later) if later else float("nan"),
        "policy_cold_start_probability": preset.keep_alive.cold_start_probability(idle),
        "num_probes": float(len(later)),
    }


def figure9_probe_simulation(
    platform_name: str = "aws_lambda_like",
    idle_times_s: Sequence[float] = (60.0, 180.0, 300.0, 330.0, 420.0, 600.0),
    probes_per_idle_time: int = 30,
    workload: WorkloadSpec = MINIMAL_FUNCTION,
    seed: int = 11,
    processes: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Empirically measure cold-start probability by probing the platform simulator.

    This mirrors the paper's methodology (send requests separated by controlled
    idle intervals, count how many are cold) rather than reading the policy
    directly, and therefore validates that the simulator's keep-alive expiry
    produces the configured probability curve.  Each idle time is one scenario
    of a :mod:`repro.sim.sweep` run; pass ``processes`` to parallelise.
    """
    scenarios = [
        Scenario(
            scenario_id=f"fig9/platform={platform_name}/idle={idle}",
            runner="repro.analysis.keepalive:run_probe_point",
            params={
                "platform": platform_name,
                "idle_time_s": float(idle),
                "probes_per_idle_time": probes_per_idle_time,
                "workload": workload,
            },
            seed=seed,
        )
        for idle in idle_times_s
    ]
    return [dict(row) for row in run_sweep(scenarios, processes=processes)]


def table2_keepalive_behavior(
    platforms: Optional[Dict[str, PlatformConfig]] = None,
) -> List[Dict[str, object]]:
    """Table 2: resource allocation behaviour during keep-alive per platform."""
    if platforms is None:
        platforms = {
            name: PLATFORM_PRESETS[name]
            for name in (
                "aws_lambda_like",
                "gcp_run_like",
                "azure_consumption_like",
                "cloudflare_workers_like",
            )
        }
    rows: List[Dict[str, object]] = []
    for label, preset in platforms.items():
        idle_cpu, idle_memory = preset.keep_alive.idle_resources(1.0, 1.0)
        row: Dict[str, object] = {"platform": label}
        row.update(preset.keep_alive.describe())
        row["idle_vcpus_per_1vcpu_sandbox"] = idle_cpu
        row["idle_memory_fraction"] = idle_memory
        rows.append(row)
    return rows
