"""Cluster-cost experiment: fleet size x placement policy x keep-alive, co-simulated.

The paper's provider-side cost arguments (§2.2, §3.3) connect three knobs the
earlier per-layer experiments could only study in isolation: how many
functions share the cluster, how their sandboxes are packed onto hosts, and
how long keep-alive pins idle capacity.  This experiment sweeps all three
through the :mod:`repro.sim.sweep` orchestrator; each grid point runs a full
:class:`~repro.cluster.cosim.ClusterSimulator` co-simulation (every function's
platform simulator, the event-driven fleet, and the live cost meter in one
event loop) and reports fleet utilisation next to the user-side invoice.

Every scenario's seed derives from the base seed and the grid point identity,
so sequential and parallel sweeps produce identical rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.rng import named_generator
from repro.sim.results import ResultStore
from repro.sim.sweep import build_grid, run_sweep

__all__ = ["cluster_point", "cluster_cost_sweep", "DEFAULT_AXES"]

#: Default sweep axes: fleet size (deployed functions) x placement policy x
#: keep-alive window (seconds, scales the platform preset's window).
DEFAULT_AXES: Dict[str, Sequence[object]] = {
    "num_functions": (4, 8),
    "placement_policy": ("first_fit", "best_fit", "worst_fit"),
    "keep_alive_s": (60.0, 300.0),
}


def cluster_point(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    """Sweep runner: one cluster co-simulation grid point.

    Expected params: ``num_functions``, ``placement_policy``
    (``first_fit`` | ``best_fit`` | ``worst_fit``), ``keep_alive_s`` (the
    swept keep-alive window; the preset's window is rescaled so its max
    equals this value), and optionally ``platform`` (preset name, default
    ``gcp_run_like``), ``billing`` (billing-model name, default
    ``gcp_run_request``), ``workload`` (catalog name, default ``pyaes``),
    ``rps_per_function``, ``duration_s``, ``arrival_process``,
    ``host_vcpus``, ``host_memory_gb``, ``sample_interval_s``,
    ``feedback`` (``off`` | ``on``, default ``off``: close the state loop so
    admission outcomes and scheduler throttling shape the
    ``failed_requests`` / ``latency_inflation`` columns), and ``retry``
    (``off`` | ``on``: re-inject failed requests through the client retry
    loop, tunable via the ``retry_*`` params of
    :meth:`repro.sim.retry.RetryPolicy.from_params`; rows then gain the
    retry columns, and when the param is absent entirely rows stay
    byte-identical to the pre-retry output).

    Tenancy params (:func:`repro.tenancy.model.resolve_tenants`):
    ``tenants`` (``off`` | an integer tenant count) plus the
    ``tenant_credit_capacity`` / ``tenant_credit_refill_per_s`` /
    ``tenant_request_cost`` / ``tenant_on_exhausted`` /
    ``tenant_max_queued`` / ``tenant_slo_latency_s`` knobs.  An integer
    turns on credit-metered admission (deployments assigned round-robin)
    and adds the per-tenant fairness/SLO columns; when the param is absent
    entirely rows stay byte-identical to the pre-tenancy output.

    Observability params (all optional, all passive): ``trace_out``
    (request-span export path; ``.jsonl`` for span lines, anything else for
    Chrome ``trace_event`` JSON), ``telemetry_out`` (sampled time-series
    CSV), ``profile_out`` (kernel profile JSON).  Any of them attaches a
    :class:`repro.obs.Observability` to the run; rows stay byte-identical
    either way.

    Imports stay inside the function so the runner is resolvable by dotted
    path in sweep worker processes without import cycles.
    """
    from repro.cluster.cosim import ClusterSimulator, FunctionDeployment
    from repro.cluster.fleet import FleetConfig
    from repro.cluster.host import HostSpec
    from repro.cluster.placement import PlacementPolicy
    from repro.platform.presets import get_platform_preset
    from repro.sim.retry import resolve_retry
    from repro.traces.generator import HUAWEI_FLAVORS
    from repro.workloads.functions import get_workload

    num_functions = int(params["num_functions"])  # type: ignore[arg-type]
    policy = PlacementPolicy(str(params["placement_policy"]))
    keep_alive_s = float(params["keep_alive_s"])  # type: ignore[arg-type]
    platform = get_platform_preset(str(params.get("platform", "gcp_run_like")))
    billing = str(params.get("billing", "gcp_run_request"))
    workload = get_workload(str(params.get("workload", "pyaes")))
    rps = float(params.get("rps_per_function", 2.0))  # type: ignore[arg-type]
    duration_s = float(params.get("duration_s", 60.0))  # type: ignore[arg-type]
    arrival_process = str(params.get("arrival_process", "constant"))
    host_spec = HostSpec(
        vcpus=float(params.get("host_vcpus", 16.0)),  # type: ignore[arg-type]
        memory_gb=float(params.get("host_memory_gb", 64.0)),  # type: ignore[arg-type]
    )

    # Rescale the preset's keep-alive window so its max hits the swept value
    # (preserving the min/max ratio keeps the opportunistic ramp shape).
    keep_alive = platform.keep_alive
    factor = keep_alive_s / keep_alive.max_keep_alive_s
    platform = dataclasses.replace(
        platform,
        keep_alive=dataclasses.replace(
            keep_alive,
            min_keep_alive_s=keep_alive.min_keep_alive_s * factor,
            max_keep_alive_s=keep_alive_s,
        ),
    )

    # Functions draw discrete Huawei-like flavors from a named stream, so the
    # population depends only on (seed, "flavors") -- not on sweep ordering.
    flavor_rng = named_generator(seed, "flavors")
    flavor_indices = flavor_rng.integers(0, len(HUAWEI_FLAVORS), size=num_functions)
    deployments: List[FunctionDeployment] = []
    for index in range(num_functions):
        vcpus, memory_gb = HUAWEI_FLAVORS[int(flavor_indices[index])]
        function = workload.to_function_config(vcpus, memory_gb, init_duration_s=1.0)
        function = dataclasses.replace(function, name=f"fn-{index:03d}")
        deployments.append(
            FunctionDeployment(
                function=function,
                platform=platform,
                rps=rps,
                duration_s=duration_s,
                arrival_process=arrival_process,
            )
        )

    feedback = str(params.get("feedback", "off"))
    retry_mode, retry_policy = resolve_retry(params)
    from repro.obs import obs_from_params, write_obs_artifacts
    from repro.tenancy import resolve_tenants

    tenants_mode, tenant_configs = resolve_tenants(params)
    obs = obs_from_params(params)
    simulator = ClusterSimulator(
        deployments,
        fleet_config=FleetConfig(
            host_spec=host_spec,
            policy=policy,
            sample_interval_s=float(params.get("sample_interval_s", 10.0)),  # type: ignore[arg-type]
        ),
        billing_platform=billing,
        seed=seed,
        feedback=feedback,
        retry=retry_policy,
        obs=obs,
        tenants=tenant_configs,
    )
    result = simulator.run()
    write_obs_artifacts(obs, params)

    row: Dict[str, object] = {
        "num_functions": num_functions,
        "placement_policy": policy.value,
        "keep_alive_s": keep_alive_s,
        "platform": platform.name,
        "feedback": feedback,
        "seed": seed,
    }
    if retry_mode is not None:
        row["retry"] = retry_mode
    if tenants_mode is not None:
        row["tenants"] = tenants_mode
    summary = result.summary()
    summary.pop("num_functions", None)
    summary.pop("policy", None)
    row.update(summary)
    return row


def cluster_cost_sweep(
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    common: Optional[Mapping[str, object]] = None,
    base_seed: int = 2026,
    processes: Optional[int] = None,
    ordered: bool = True,
    first_point_extra: Optional[Mapping[str, object]] = None,
    backend: Optional[object] = None,
    checkpoint: Optional[str] = None,
) -> ResultStore:
    """Run the cluster-cost grid through the sweep orchestrator.

    ``ordered=False`` uses work-stealing pool execution (identical rows,
    better worker utilisation on heterogeneous grids).

    ``backend`` / ``checkpoint`` pass through to
    :func:`repro.sim.sweep.run_sweep`: any execution backend (including the
    multi-node ``socket-queue`` server) and an optional JSONL journal that
    makes the sweep kill/resume-safe.  Rows are byte-identical across all.

    ``first_point_extra`` merges extra params into the *first* grid point
    only -- how the CLI attaches ``trace_out``/``telemetry_out`` artifact
    paths to a single representative point.  Seeds derive from grid
    identity, not params, so the rows are unchanged.
    """
    scenarios = build_grid(
        runner="repro.analysis.cluster_costs:cluster_point",
        axes=dict(axes or DEFAULT_AXES),
        common=common,
        base_seed=base_seed,
    )
    if first_point_extra:
        scenarios[0] = dataclasses.replace(
            scenarios[0], params={**scenarios[0].params, **first_point_extra}
        )
    return run_sweep(
        scenarios, processes=processes, ordered=ordered, backend=backend, checkpoint=checkpoint
    )


def cluster_costs_experiment() -> List[Dict[str, object]]:
    """The registry entry point: a small default grid, sequential."""
    axes = {
        "num_functions": (4, 8),
        "placement_policy": ("first_fit", "best_fit", "worst_fit"),
        "keep_alive_s": (60.0,),
    }
    store = cluster_cost_sweep(axes=axes, common={"duration_s": 30.0})
    return store.rows
