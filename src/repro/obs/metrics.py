"""Metric primitives for the observability layer: counters, gauges, histograms.

These are deliberately tiny ``__slots__`` classes: every simulator event may
touch one, so construction and update must cost a couple of attribute writes
and nothing more.  A :class:`MetricsRegistry` names them; the polled
:class:`~repro.obs.telemetry.TelemetryProcess` samples the registry on a
fixed grid and turns point-in-time values into ring-buffered series.

Nothing in this module touches simulation state: counters and histograms are
written by bus subscribers, gauges *read* live state through a callback the
owning layer registered (fleet queue depth, live metered cost, scheduler
throttle set).  Sampling a gauge therefore never mutates the thing it
observes -- the property the byte-invisibility guarantee of ``repro.obs``
rests on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile"]


def percentile(values: Iterable[float], q: float) -> float:
    """A percentile that is defined for *every* input.

    The edge cases ``np.quantile`` raises on (empty series, out-of-range
    ``q``) come up constantly in telemetry -- a histogram sampled before the
    first request, a summary column asked for ``q=95`` instead of ``0.95``.
    This helper never raises:

    - empty input returns ``nan`` (the repo-wide "no data" marker),
    - a single sample is every percentile of itself,
    - ``q`` above 1 is interpreted as a percent (``95`` -> ``0.95``),
    - ``q`` is clamped into ``[0, 1]`` after normalisation,
    - otherwise the result matches ``np.quantile``'s linear interpolation.
    """
    seq = [float(v) for v in values]
    if not seq:
        return float("nan")
    qn = float(q)
    if qn > 1.0:
        qn /= 100.0
    qn = min(max(qn, 0.0), 1.0)
    if len(seq) == 1:
        return seq[0]
    return float(np.quantile(seq, qn))


class Counter:
    """A monotonically increasing count (arrivals, retries, cold starts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value: set directly or backed by a read callback.

    Callback-backed gauges are how domain layers expose live state (fleet
    queue depth, metered cost) without the telemetry layer importing them:
    the layer registers ``lambda: <read some attribute>`` and the sampler
    calls it on its grid.  Callbacks must be pure reads.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """A streaming distribution: exact count/sum, bounded sample window.

    Keeps running ``count``/``total``/``min``/``max`` exactly and the most
    recent ``capacity`` observations in a ring buffer for percentiles --
    bounded memory no matter how many requests a run completes.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_window")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window: Deque[float] = deque(maxlen=capacity)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Percentile over the retained window (never raises; see module helper)."""
        return percentile(self._window, q)

    def read(self) -> float:
        """Samplable view of a histogram: its observation count."""
        return float(self.count)

    def summary(self, percentiles: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        row: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }
        for q in percentiles:
            label = q * 100.0 if q <= 1.0 else q
            row[f"p{label:g}"] = self.percentile(q)
        return row


class MetricsRegistry:
    """Named metric instruments, get-or-create, insertion-ordered.

    ``counter``/``gauge``/``histogram`` are idempotent: asking twice for the
    same name returns the same instrument (so several layers can share one
    counter), while asking for an existing name with a *different* kind is a
    wiring bug and raises.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], object]) -> object:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {type(existing).__name__}, "
                    f"not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))  # type: ignore[return-value]

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is None:  # rebind a plain gauge to a reader
            gauge._fn = fn  # type: ignore[union-attr]
        return gauge  # type: ignore[return-value]

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            name, Histogram, lambda: Histogram(name, capacity)
        )

    def names(self) -> List[str]:
        return list(self._metrics)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def sample(self) -> Dict[str, float]:
        """Point-in-time values of every instrument (histograms as counts)."""
        return {name: metric.read() for name, metric in self._metrics.items()}  # type: ignore[attr-defined]

    def histograms(self) -> Dict[str, Histogram]:
        return {n: m for n, m in self._metrics.items() if isinstance(m, Histogram)}

    def snapshot(self) -> Dict[str, object]:
        """Full structured dump: scalars for counters/gauges, summaries for histograms."""
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            out[name] = metric.summary() if isinstance(metric, Histogram) else metric.read()  # type: ignore[attr-defined]
        return out
