"""`repro.obs`: passive, bus-fed observability for the simulation stack.

Three windows into a run, all attached *beside* the simulators rather than
inside them:

- **request tracing** (:mod:`repro.obs.trace`): a bus subscriber stitching
  per-attempt spans -- arrival, cold start / admission, execution,
  completion / failure / retry re-injection -- exportable as JSONL and as
  Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``);
- **time-series telemetry** (:mod:`repro.obs.metrics` +
  :mod:`repro.obs.telemetry`): counter/gauge/histogram primitives sampled on
  a kernel time grid into ring-buffered series with CSV export;
- **kernel profiling** (:mod:`repro.obs.profile`): opt-in hooks on
  ``SimulationKernel.step()`` / ``EventBus.publish()`` tallying events,
  wall-time, heap depth and dispatch fan-out per kind.

The contract that makes all of this safe to attach anywhere: **observers
only read**.  No component here mutates simulator state, draws randomness,
or schedules heap events; the one kernel interaction (the telemetry tick) is
a periodic polled process whose handler reads gauges.  A run with an
:class:`Observability` attached is therefore byte-identical -- same CSVs,
same golden invoices, same replay fingerprints -- to the same seed without
one, and ``obs=None`` (every entry point's default) does not even subscribe.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from repro.obs.profile import KernelProfile, KernelProfiler
from repro.obs.telemetry import TelemetryProcess
from repro.obs.trace import RequestSpan, SandboxSpan, TraceCollector, validate_chrome_trace
from repro.sim.events import (
    EventBus,
    RequestArrived,
    RequestCompleted,
    RequestExecuting,
    RequestFailed,
    RetryScheduled,
    SandboxAdmitted,
    SandboxColdStart,
    SandboxQueued,
    SandboxRejected,
)
from repro.sim.kernel import SimulationKernel

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfile",
    "KernelProfiler",
    "MetricsRegistry",
    "Observability",
    "RequestSpan",
    "SandboxSpan",
    "TelemetryProcess",
    "TraceCollector",
    "obs_from_params",
    "percentile",
    "validate_chrome_trace",
    "write_obs_artifacts",
]

#: Sweep-param keys that request observability artifacts from a runner.
_OBS_PARAM_KEYS = ("trace_out", "telemetry_out", "profile_out")


def obs_from_params(params) -> Optional["Observability"]:
    """An :class:`Observability` when a grid point asked for artifacts.

    Shared by the analysis sweep runners: a point carrying any of
    ``trace_out`` / ``telemetry_out`` / ``profile_out`` gets the layer
    attached; all other points (and every pre-obs grid) return ``None`` and
    take the untouched path.
    """
    if any(params.get(key) for key in _OBS_PARAM_KEYS):
        return Observability()
    return None


def write_obs_artifacts(obs: Optional["Observability"], params) -> None:
    """Write whichever artifacts the point's params asked for (post-run)."""
    if obs is None:
        return
    trace_out = params.get("trace_out")
    if trace_out:
        obs.write_trace(str(trace_out))
    telemetry_out = params.get("telemetry_out")
    if telemetry_out:
        obs.write_telemetry_csv(str(telemetry_out))
    profile_out = params.get("profile_out")
    if profile_out:
        import json

        with open(str(profile_out), "w") as handle:
            json.dump(obs.kernel_profile().to_dict(), handle, indent=2, sort_keys=True)


class Observability:
    """One run's observability bundle: trace + telemetry + kernel profile.

    Construct, pass as ``obs=`` to a :class:`~repro.cluster.cosim.ClusterSimulator`
    (or :class:`~repro.platform.invoker.PlatformSimulator`), run, then export::

        obs = Observability()
        result = ClusterSimulator(deployments, ..., obs=obs).run()
        obs.write_trace("run.json")          # Chrome trace (.jsonl for spans)
        obs.write_telemetry_csv("run.csv")   # sampled series
        print("\\n".join(obs.kernel_profile().table()))

    Components are individually optional (``trace=False`` /
    ``profile=False`` / ``telemetry_interval_s=None``).  One instance serves
    one run: :meth:`attach` is called by the simulator and refuses reuse.
    """

    def __init__(
        self,
        telemetry_interval_s: Optional[float] = 1.0,
        telemetry_capacity: int = 4096,
        trace: bool = True,
        profile: bool = True,
        histogram_capacity: int = 4096,
    ) -> None:
        self.registry = MetricsRegistry()
        self.trace: Optional[TraceCollector] = TraceCollector() if trace else None
        self.profiler: Optional[KernelProfiler] = KernelProfiler() if profile else None
        self.telemetry: Optional[TelemetryProcess] = (
            TelemetryProcess(self.registry, telemetry_interval_s, telemetry_capacity)
            if telemetry_interval_s is not None
            else None
        )
        self._histogram_capacity = histogram_capacity
        self._attached = False
        self._finalized_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Wiring (called by the owning simulator)
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self, kernel: SimulationKernel, bus: EventBus) -> "Observability":
        """Subscribe collectors on ``bus`` and hook the kernel.  Once only."""
        if self._attached:
            raise RuntimeError("an Observability instance serves exactly one run")
        self._attached = True
        if self.trace is not None:
            self.trace.attach(bus)
        self._subscribe_metrics(bus)
        if self.telemetry is not None:
            kernel.add_process(self.telemetry)
        if self.profiler is not None:
            self.profiler.install(kernel, bus)
        return self

    def _subscribe_metrics(self, bus: EventBus) -> None:
        """Event-driven counters/histograms every traced run gets for free."""
        reg = self.registry
        arrivals = reg.counter("arrivals")
        retries = reg.counter("retry_arrivals")
        completions = reg.counter("completions")
        failures = reg.counter("failures")
        retry_scheduled = reg.counter("retries_scheduled")
        cold_starts = reg.counter("cold_starts")
        queued = reg.counter("sandboxes_queued")
        admitted = reg.counter("sandboxes_admitted")
        rejected = reg.counter("sandboxes_rejected")
        latency = reg.histogram("latency_s", self._histogram_capacity)
        execution = reg.histogram("execution_s", self._histogram_capacity)
        queue_wait = reg.histogram("admission_wait_s", self._histogram_capacity)

        def on_arrived(event: RequestArrived) -> None:
            arrivals.inc()
            if event.attempts > 1:
                retries.inc()

        def on_completed(event: RequestCompleted) -> None:
            completions.inc()
            outcome = event.outcome
            latency.observe(float(getattr(outcome, "end_to_end_latency_s", 0.0)))
            execution.observe(float(getattr(outcome, "execution_duration_s", 0.0)))

        def on_admitted(event: SandboxAdmitted) -> None:
            admitted.inc()
            queue_wait.observe(event.queue_wait_s)

        bus.subscribe(RequestArrived, on_arrived)
        bus.subscribe(RequestCompleted, on_completed)
        bus.subscribe(RequestFailed, lambda event: failures.inc())
        bus.subscribe(RetryScheduled, lambda event: retry_scheduled.inc())
        bus.subscribe(SandboxColdStart, lambda event: cold_starts.inc())
        bus.subscribe(SandboxQueued, lambda event: queued.inc())
        bus.subscribe(SandboxAdmitted, on_admitted)
        bus.subscribe(SandboxRejected, lambda event: rejected.inc())

    def finalize(self, horizon_s: float) -> None:
        """Close the books at the run horizon (censors still-open spans)."""
        if self._finalized_at is not None:
            return
        self._finalized_at = horizon_s
        if self.trace is not None:
            self.trace.finalize(horizon_s)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def kernel_profile(self) -> KernelProfile:
        if self.profiler is None:
            raise RuntimeError("profiling was disabled for this Observability")
        return self.profiler.snapshot()

    def write_trace(self, path: str) -> None:
        """Spans to ``path``: ``.jsonl`` -> span lines, else Chrome trace JSON."""
        if self.trace is None:
            raise RuntimeError("tracing was disabled for this Observability")
        if path.endswith(".jsonl"):
            self.trace.to_jsonl(path)
            return
        counters = self.telemetry.chrome_counters() if self.telemetry is not None else None
        self.trace.to_chrome_trace(path, counters)

    def write_telemetry_csv(self, path: str) -> None:
        if self.telemetry is None:
            raise RuntimeError("telemetry was disabled for this Observability")
        self.telemetry.to_csv(path)

    def summary(self) -> Dict[str, Any]:
        """Structured end-of-run digest (registry snapshot + span counts)."""
        out: Dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.trace is not None:
            spans = self.trace.spans
            out["spans"] = {
                "total": len(spans),
                "roots": sum(1 for s in spans if s.is_root),
                "completed": sum(1 for s in spans if s.outcome == "completed"),
                "failed": sum(1 for s in spans if s.outcome == "failed"),
                "censored": sum(1 for s in spans if s.outcome == "censored"),
            }
        if self.profiler is not None:
            out["kernel"] = self.kernel_profile().to_dict()
        return out
