"""Time-series telemetry: a polled kernel process sampling the metrics registry.

The :class:`TelemetryProcess` is a periodic polled process (the same
mechanism as the autoscaler's evaluation tick and the fleet's utilisation
sampler): on a fixed time grid it reads every counter and gauge in its
:class:`~repro.obs.metrics.MetricsRegistry` and appends one row to a ring
buffer.  Sampling only *reads* -- gauge callbacks are pure accessors into
live layer state -- so attaching telemetry leaves simulation results
byte-identical.

The ring buffer (``capacity`` rows) bounds memory on long runs: a
million-second run at a 1 s interval keeps only the trailing window, which
is what live dashboards and post-hoc tail analysis actually read.

Exports: :meth:`TelemetryProcess.to_csv` (one row per tick, union of metric
columns), :meth:`TelemetryProcess.summary` (per-metric mean/min/max plus
optional percentiles over the retained window), and
:meth:`TelemetryProcess.chrome_counters` (Chrome ``C`` counter events that
plot under the request lanes of a :class:`~repro.obs.trace.TraceCollector`
export).
"""

from __future__ import annotations

import csv
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, percentile
from repro.sim.kernel import PeriodicProcess

__all__ = ["TelemetryProcess"]


class TelemetryProcess:
    """Samples a registry on a time grid into ring-buffered series."""

    #: like every other grid sampler: an unbounded ``kernel.run()`` must not
    #: spin forever on telemetry ticks once real work has drained.
    periodic = True

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.capacity = capacity
        self.rows: Deque[Dict[str, float]] = deque(maxlen=capacity)
        #: ticks taken (may exceed ``len(rows)`` once the ring wraps).
        self.samples_taken = 0
        self._grid = PeriodicProcess(interval_s, self._tick)

    # ------------------------------------------------------------------
    # Polled kernel process protocol (delegates grid bookkeeping)
    # ------------------------------------------------------------------

    def next_event_time(self, now: float) -> Optional[float]:
        return self._grid.next_event_time(now)

    def handle(self, now: float) -> None:
        self._grid.handle(now)

    def _tick(self, now: float) -> None:
        row: Dict[str, float] = {"time_s": now}
        row.update(self.registry.sample())
        self.rows.append(row)
        self.samples_taken += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """One metric's retained (times, values); missing ticks are skipped."""
        times: List[float] = []
        values: List[float] = []
        for row in self.rows:
            if name in row:
                times.append(row["time_s"])
                values.append(row[name])
        return times, values

    def columns(self) -> List[str]:
        """Union of sampled columns in first-seen order, ``time_s`` first."""
        seen: Dict[str, None] = {"time_s": None}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def summary(self, percentiles: Iterable[float] = ()) -> Dict[str, Dict[str, float]]:
        """Per-metric stats over the retained window (optional percentiles).

        Histograms registered alongside the sampled series contribute their
        own observation-window summaries, so one call describes both the
        polled gauges and the event-driven distributions.
        """
        out: Dict[str, Dict[str, float]] = {}
        qs = tuple(percentiles)
        for name in self.columns():
            if name == "time_s":
                continue
            _, values = self.series(name)
            if not values:
                continue
            stats = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "last": values[-1],
            }
            for q in qs:
                label = q * 100.0 if q <= 1.0 else q
                stats[f"p{label:g}"] = percentile(values, q)
            out[name] = stats
        for name, histogram in self.registry.histograms().items():
            out[f"{name}:histogram"] = histogram.summary(qs or (0.5, 0.95, 0.99))
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_csv(self, path: str) -> None:
        """The retained window as CSV: one row per tick, union columns."""
        columns = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def chrome_counters(self, pid: int = 0) -> List[Dict[str, Any]]:
        """The retained series as Chrome ``C`` counter events (one lane each)."""
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
            "args": {"name": "telemetry"},
        }]
        for row in self.rows:
            ts = row["time_s"] * 1e6
            for name, value in row.items():
                if name == "time_s":
                    continue
                events.append({
                    "name": name, "ph": "C", "ts": ts, "pid": pid, "tid": 0,
                    "args": {"value": value},
                })
        return events
