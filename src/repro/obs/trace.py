"""Cross-layer request tracing: stitch bus events into per-request spans.

The :class:`TraceCollector` is a pure bus subscriber.  It watches the typed
events the platform and fleet layers already publish -- plus the
obs-specific :class:`~repro.sim.events.RequestArrived` /
:class:`~repro.sim.events.RequestExecuting` markers emitted when tracing is
on -- and stitches them into one :class:`RequestSpan` per *attempt*:

    arrival -> (cold start / admission queue / ingress queue) -> executing
            -> completed | failed | censored-at-horizon

Attempts are linked: a retry re-injected by the
:class:`~repro.sim.retry.RetryLoop` carries its failed parent's request id,
so a retried request reads as a chain of spans (attempt 1 failed -> attempt
2 failed -> attempt 3 completed).  Sandbox lifecycles (cold start ->
admitted/queued/rejected -> terminated) are tracked alongside on their own
lane.

Export targets:

- :meth:`TraceCollector.to_jsonl` -- one span dict per line, grep-friendly;
- :meth:`TraceCollector.chrome_trace` -- Chrome ``trace_event`` JSON (the
  array form), viewable in Perfetto / ``chrome://tracing``: one *process*
  row per function, one *thread* per request, ``X`` complete events for
  span phases, flow arrows from each failed attempt to its retry.

The collector never mutates simulation state, draws randomness, or schedules
kernel events -- attaching it leaves every simulated byte identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.sim.events import (
    EventBus,
    RequestArrived,
    RequestCompleted,
    RequestExecuting,
    RequestFailed,
    SandboxAdmitted,
    SandboxColdStart,
    SandboxQueued,
    SandboxRejected,
    SandboxTerminated,
)

__all__ = ["RequestSpan", "SandboxSpan", "TraceCollector", "validate_chrome_trace"]

#: Span outcomes. ``censored`` = still open when the run's horizon ended.
COMPLETED, FAILED, CENSORED, OPEN = "completed", "failed", "censored", "open"

#: Sandbox lanes sit above request lanes inside a function's trace process.
_SANDBOX_TID_BASE = 1_000_000


class RequestSpan:
    """One request attempt's lifetime across the layers."""

    __slots__ = (
        "request_id", "function", "attempt", "parent_id", "arrival_s",
        "exec_start_s", "end_s", "outcome", "sandbox_name", "cold_start",
        "retry_wait_s", "fail_reason", "gave_up",
    )

    def __init__(self, request_id: str, function: str, attempt: int,
                 parent_id: str, arrival_s: float, retry_wait_s: float) -> None:
        self.request_id = request_id
        self.function = function
        self.attempt = attempt
        self.parent_id = parent_id
        self.arrival_s = arrival_s
        self.exec_start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self.outcome = OPEN
        self.sandbox_name = ""
        self.cold_start = False
        self.retry_wait_s = retry_wait_s
        self.fail_reason = ""
        self.gave_up = False

    @property
    def is_root(self) -> bool:
        return self.attempt == 1

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.arrival_s) if self.end_s is not None else float("nan")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "function": self.function,
            "attempt": self.attempt,
            "parent_id": self.parent_id,
            "arrival_s": self.arrival_s,
            "exec_start_s": self.exec_start_s,
            "end_s": self.end_s,
            "outcome": self.outcome,
            "sandbox": self.sandbox_name,
            "cold_start": self.cold_start,
            "retry_wait_s": self.retry_wait_s,
            "fail_reason": self.fail_reason,
            "gave_up": self.gave_up,
        }


class SandboxSpan:
    """One sandbox's lifetime: cold start -> admission -> teardown."""

    __slots__ = ("sandbox_name", "function", "cold_start_s", "admitted_s",
                 "queue_wait_s", "rejected", "end_s", "end_reason")

    def __init__(self, sandbox_name: str, function: str, cold_start_s: float) -> None:
        self.sandbox_name = sandbox_name
        self.function = function
        self.cold_start_s = cold_start_s
        self.admitted_s: Optional[float] = None
        self.queue_wait_s = 0.0
        self.rejected = False
        self.end_s: Optional[float] = None
        self.end_reason = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sandbox": self.sandbox_name,
            "function": self.function,
            "cold_start_s": self.cold_start_s,
            "admitted_s": self.admitted_s,
            "queue_wait_s": self.queue_wait_s,
            "rejected": self.rejected,
            "end_s": self.end_s,
            "end_reason": self.end_reason,
        }


def _owner_of(namespaced: str) -> str:
    """The simulator name prefix of a namespaced request/sandbox id."""
    return namespaced.split("/", 1)[0] if "/" in namespaced else ""


def _trailing_int(identifier: str) -> int:
    """The numeric suffix of ids like ``fn-00/req-0000042`` (stable lane ids)."""
    digits = ""
    for ch in reversed(identifier):
        if ch.isdigit():
            digits = ch + digits
        elif digits:
            break
    return int(digits) if digits else 0


class TraceCollector:
    """Stitches bus events into request + sandbox spans.  Read-only observer."""

    def __init__(self) -> None:
        self.spans: List[RequestSpan] = []
        self._by_request: Dict[str, RequestSpan] = {}
        self.sandbox_spans: List[SandboxSpan] = []
        self._by_sandbox: Dict[str, SandboxSpan] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "TraceCollector":
        bus.subscribe(RequestArrived, self._on_arrived)
        bus.subscribe(RequestExecuting, self._on_executing)
        bus.subscribe(RequestCompleted, self._on_completed)
        bus.subscribe(RequestFailed, self._on_failed)
        bus.subscribe(SandboxColdStart, self._on_cold_start)
        bus.subscribe(SandboxQueued, self._on_sandbox_queued)
        bus.subscribe(SandboxAdmitted, self._on_sandbox_admitted)
        bus.subscribe(SandboxRejected, self._on_sandbox_rejected)
        bus.subscribe(SandboxTerminated, self._on_sandbox_terminated)
        return self

    # ------------------------------------------------------------------
    # Subscribers
    # ------------------------------------------------------------------

    def _on_arrived(self, event: RequestArrived) -> None:
        span = RequestSpan(
            request_id=event.request_id,
            function=event.function_name or _owner_of(event.request_id),
            attempt=event.attempts,
            parent_id=event.parent_id,
            arrival_s=event.time_s,
            retry_wait_s=event.retry_wait_s,
        )
        self.spans.append(span)
        self._by_request[event.request_id] = span

    def _on_executing(self, event: RequestExecuting) -> None:
        span = self._by_request.get(event.request_id)
        if span is None:
            return
        span.exec_start_s = event.time_s
        span.sandbox_name = event.sandbox_name
        span.cold_start = event.cold_start

    def _on_completed(self, event: RequestCompleted) -> None:
        outcome = event.outcome
        span = self._by_request.get(str(getattr(outcome, "request_id", "")))
        if span is None:
            return
        span.outcome = COMPLETED
        span.end_s = event.time_s
        # The outcome record is authoritative for where execution started
        # (a queued multi-concurrency request starts later than its admit).
        span.exec_start_s = float(getattr(outcome, "start_s", span.exec_start_s or event.time_s))
        if not span.sandbox_name:
            span.sandbox_name = str(getattr(outcome, "sandbox_name", ""))

    def _on_failed(self, event: RequestFailed) -> None:
        failure = event.outcome
        span = self._by_request.get(str(getattr(failure, "request_id", "")))
        if span is None:
            return
        span.outcome = FAILED
        span.end_s = event.time_s
        span.fail_reason = str(getattr(failure, "reason", ""))
        span.gave_up = bool(getattr(failure, "gave_up", False))
        if not span.sandbox_name:
            span.sandbox_name = str(getattr(failure, "sandbox_name", ""))

    def _on_cold_start(self, event: SandboxColdStart) -> None:
        span = SandboxSpan(
            sandbox_name=event.sandbox_name,
            function=event.function_name or _owner_of(event.sandbox_name),
            cold_start_s=event.time_s,
        )
        self.sandbox_spans.append(span)
        self._by_sandbox[event.sandbox_name] = span

    def _on_sandbox_queued(self, event: SandboxQueued) -> None:
        # Queue entry is implied by a later admission's queue_wait_s; nothing
        # to record here beyond the span already opened by the cold start.
        pass

    def _on_sandbox_admitted(self, event: SandboxAdmitted) -> None:
        span = self._by_sandbox.get(event.sandbox_name)
        if span is None:
            return
        span.admitted_s = event.time_s
        span.queue_wait_s = event.queue_wait_s

    def _on_sandbox_rejected(self, event: SandboxRejected) -> None:
        span = self._by_sandbox.get(event.sandbox_name)
        if span is None:
            return
        span.rejected = True
        span.end_reason = event.reason

    def _on_sandbox_terminated(self, event: SandboxTerminated) -> None:
        span = self._by_sandbox.get(event.sandbox_name)
        if span is None or span.end_s is not None:
            return
        span.end_s = event.time_s
        if not span.end_reason:
            span.end_reason = str(getattr(event, "reason", "")) or "terminated"

    # ------------------------------------------------------------------
    # Finalisation and queries
    # ------------------------------------------------------------------

    def finalize(self, horizon_s: float) -> None:
        """Censor every span still open when the run's horizon ended."""
        if self._finalized:
            return
        self._finalized = True
        for span in self.spans:
            if span.end_s is None:
                span.outcome = CENSORED
                span.end_s = max(horizon_s, span.arrival_s, span.exec_start_s or 0.0)
        for sandbox in self.sandbox_spans:
            if sandbox.end_s is None:
                sandbox.end_s = max(horizon_s, sandbox.cold_start_s)
                sandbox.end_reason = sandbox.end_reason or "alive_at_horizon"

    def root_spans(self) -> List[RequestSpan]:
        return [s for s in self.spans if s.is_root]

    def children_of(self, request_id: str) -> List[RequestSpan]:
        return [s for s in self.spans if s.parent_id == request_id]

    def chain_of(self, request_id: str) -> List[RequestSpan]:
        """The full retry chain containing ``request_id``, attempt order."""
        span = self._by_request.get(request_id)
        if span is None:
            return []
        while span.parent_id and span.parent_id in self._by_request:
            span = self._by_request[span.parent_id]
        chain = [span]
        while True:
            children = self.children_of(chain[-1].request_id)
            if not children:
                return chain
            chain.extend(children)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str) -> None:
        """One span per line: request spans first, then sandbox spans."""
        with open(path, "w") as handle:
            for span in self.spans:
                handle.write(json.dumps({"kind": "request", **span.to_dict()}) + "\n")
            for sandbox in self.sandbox_spans:
                handle.write(json.dumps({"kind": "sandbox", **sandbox.to_dict()}) + "\n")

    def _pids(self) -> Dict[str, int]:
        """Stable function -> trace pid mapping (first-seen order, 1-based)."""
        pids: Dict[str, int] = {}
        for span in self.spans:
            pids.setdefault(span.function, len(pids) + 1)
        for sandbox in self.sandbox_spans:
            pids.setdefault(sandbox.function, len(pids) + 1)
        return pids

    def chrome_trace(self, counters: Optional[Iterable[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
        """The run as a Chrome ``trace_event`` array (Perfetto-loadable).

        ``counters`` optionally appends pre-built counter (``ph == "C"``)
        events -- the telemetry layer passes its sampled series through here
        so queue depth and live cost plot under the request lanes.
        """
        events: List[Dict[str, Any]] = []
        pids = self._pids()
        for function, pid in pids.items():
            events.append({
                "name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
                "args": {"name": f"function {function}" if function else "function"},
            })
        flow_seq = 0
        for span in self.spans:
            if span.end_s is None:
                continue  # unfinalised open span; finalize() prevents this
            pid = pids[span.function]
            tid = _trailing_int(span.request_id)
            args = {
                "request_id": span.request_id, "attempt": span.attempt,
                "outcome": span.outcome, "sandbox": span.sandbox_name,
                "cold_start": span.cold_start, "retry_wait_s": span.retry_wait_s,
            }
            if span.parent_id:
                args["parent_id"] = span.parent_id
            if span.fail_reason:
                args["fail_reason"] = span.fail_reason
            events.append({
                "name": f"request (attempt {span.attempt}, {span.outcome})",
                "cat": "request", "ph": "X",
                "ts": span.arrival_s * 1e6,
                "dur": max(span.end_s - span.arrival_s, 0.0) * 1e6,
                "pid": pid, "tid": tid, "args": args,
            })
            if span.exec_start_s is not None and span.end_s >= span.exec_start_s:
                events.append({
                    "name": "execute", "cat": "request", "ph": "X",
                    "ts": span.exec_start_s * 1e6,
                    "dur": (span.end_s - span.exec_start_s) * 1e6,
                    "pid": pid, "tid": tid,
                    "args": {"request_id": span.request_id, "sandbox": span.sandbox_name},
                })
            if span.parent_id and span.parent_id in self._by_request:
                parent = self._by_request[span.parent_id]
                if parent.end_s is not None:
                    flow_seq += 1
                    parent_pid = pids[parent.function]
                    parent_tid = _trailing_int(parent.request_id)
                    events.append({
                        "name": "retry", "cat": "retry", "ph": "s", "id": flow_seq,
                        "ts": parent.end_s * 1e6, "pid": parent_pid, "tid": parent_tid,
                    })
                    events.append({
                        "name": "retry", "cat": "retry", "ph": "f", "bp": "e", "id": flow_seq,
                        "ts": span.arrival_s * 1e6, "pid": pid, "tid": tid,
                    })
        for sandbox in self.sandbox_spans:
            if sandbox.end_s is None:
                continue
            pid = pids[sandbox.function]
            tid = _SANDBOX_TID_BASE + _trailing_int(sandbox.sandbox_name)
            state = "rejected" if sandbox.rejected else (sandbox.end_reason or "sandbox")
            events.append({
                "name": f"sandbox ({state})", "cat": "sandbox", "ph": "X",
                "ts": sandbox.cold_start_s * 1e6,
                "dur": max(sandbox.end_s - sandbox.cold_start_s, 0.0) * 1e6,
                "pid": pid, "tid": tid,
                "args": sandbox.to_dict(),
            })
        if counters is not None:
            events.extend(counters)
        return events

    def to_chrome_trace(self, path: str, counters: Optional[Iterable[Dict[str, Any]]] = None) -> None:
        """JSON Object Format (``{"traceEvents": [...]}``) -- the
        self-describing variant both ``chrome://tracing`` and Perfetto load."""
        payload = {"traceEvents": self.chrome_trace(counters), "displayTimeUnit": "ms"}
        with open(path, "w") as handle:
            json.dump(payload, handle)


def validate_chrome_trace(events: Iterable[Dict[str, Any]]) -> int:
    """Assert Chrome-trace well-formedness; returns the event count.

    Every event must carry ``ph``/``ts``/``pid``/``tid``; complete (``X``)
    events must have a non-negative ``dur``.  Shared by the test suite and
    the CI smoke step so both validate the same contract.
    """
    count = 0
    for event in events:
        count += 1
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event!r}")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"trace event ts must be numeric: {event!r}")
        if event["ph"] == "X":
            if "dur" not in event or float(event["dur"]) < 0:
                raise ValueError(f"complete event needs non-negative dur: {event!r}")
    return count
