"""Opt-in kernel profiling: where do a run's events and wall-time go?

The :class:`~repro.sim.kernel.SimulationKernel` and
:class:`~repro.sim.events.EventBus` each carry a dormant profiler slot
(``set_profiler``).  With no profiler installed -- the default everywhere --
their hot paths take the exact pre-profiling branch: no ``perf_counter``
call, no dict lookup, nothing.  With a :class:`KernelProfiler` installed the
kernel reports every dispatched event (kind, post-pop heap depth, handler
wall-time), every cancel and every prune, and the bus reports every publish
(event type, subscriber fan-out, dispatch wall-time).

:meth:`KernelProfiler.snapshot` freezes the tallies into a
:class:`KernelProfile` -- the record ``benchmarks/bench_kernel.py`` uses to
verify its measured event counts and the ``trace`` CLI prints per-kind
tables from.

Profiling measures *host* wall-time, so it is the one obs component whose
output is not seed-reproducible; the simulation results it observes still
are (the profiler only reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["KernelProfile", "KernelProfiler"]


# Mutable tallies are bare lists, not stat objects: list item updates are the
# cheapest mutation CPython offers, and record_event runs once per dispatched
# kernel event.  Layout: [count, wall_s] per kind; [count, fanout, wall_s]
# per published type.


@dataclass(frozen=True)
class KernelProfile:
    """An immutable snapshot of one profiled run."""

    #: total heap + polled events dispatched by the kernel.
    events_total: int
    #: of those, polled-process handler invocations.
    process_events: int
    #: events cancelled before firing.
    cancels: int
    #: cancelled events popped (pruned) off the heap without dispatch.
    prunes: int
    #: deepest heap observed at dispatch time.
    max_heap_depth: int
    #: per event kind: {"count": n, "wall_s": t} (polled processes appear
    #: under ``process:<TypeName>``).
    by_kind: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: per published bus event type: {"count", "fanout", "wall_s"}.
    publishes: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def publish_total(self) -> int:
        return int(sum(stats["count"] for stats in self.publishes.values()))

    def count_of(self, kind: str) -> int:
        """Dispatched-event count of one kernel event kind (0 if never seen)."""
        stats = self.by_kind.get(kind)
        return int(stats["count"]) if stats else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "events_total": self.events_total,
            "process_events": self.process_events,
            "cancels": self.cancels,
            "prunes": self.prunes,
            "max_heap_depth": self.max_heap_depth,
            "by_kind": self.by_kind,
            "publishes": self.publishes,
        }

    def table(self) -> List[str]:
        """Human-readable per-kind lines, busiest kind first."""
        lines = [
            f"events={self.events_total} (process={self.process_events}) "
            f"cancels={self.cancels} prunes={self.prunes} "
            f"max_heap_depth={self.max_heap_depth} publishes={self.publish_total}"
        ]
        ranked = sorted(self.by_kind.items(), key=lambda kv: -kv[1]["count"])
        for kind, stats in ranked:
            lines.append(
                f"  {kind:<40s} {int(stats['count']):>9d} events  {stats['wall_s'] * 1e3:10.3f} ms"
            )
        ranked_pub = sorted(self.publishes.items(), key=lambda kv: -kv[1]["count"])
        for name, stats in ranked_pub:
            lines.append(
                f"  publish:{name:<32s} {int(stats['count']):>9d} x{stats['fanout'] / stats['count']:.1f}"
                f" fan-out  {stats['wall_s'] * 1e3:10.3f} ms"
            )
        return lines


class KernelProfiler:
    """Mutable tally sink the kernel and bus report into when installed."""

    __slots__ = ("_by_kind", "_publishes", "process_events",
                 "cancels", "prunes", "max_heap_depth")

    def __init__(self) -> None:
        self._by_kind: Dict[str, List[float]] = {}
        self._publishes: Dict[str, List[float]] = {}
        self.process_events = 0
        self.cancels = 0
        self.prunes = 0
        self.max_heap_depth = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def install(self, kernel, bus=None) -> "KernelProfiler":
        """Install on a kernel (and optionally its bus) via their opt-in slots."""
        kernel.set_profiler(self)
        if bus is not None:
            bus.set_profiler(self)
        return self

    # ------------------------------------------------------------------
    # Hooks called from the kernel / bus hot paths (profiler installed only)
    # ------------------------------------------------------------------

    def record_event(self, kind: str, heap_depth: int, wall_s: float) -> None:
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        stats = self._by_kind.get(kind)
        if stats is None:
            self._by_kind[kind] = [1, wall_s]
        else:
            stats[0] += 1
            stats[1] += wall_s

    def record_process(self, type_name: str, wall_s: float) -> None:
        self.process_events += 1
        kind = f"process:{type_name}"
        stats = self._by_kind.get(kind)
        if stats is None:
            self._by_kind[kind] = [1, wall_s]
        else:
            stats[0] += 1
            stats[1] += wall_s

    def record_cancel(self) -> None:
        self.cancels += 1

    def record_prunes(self, count: int) -> None:
        self.prunes += count

    def record_publish(self, type_name: str, fanout: int, wall_s: float) -> None:
        stats = self._publishes.get(type_name)
        if stats is None:
            self._publishes[type_name] = [1, fanout, wall_s]
        else:
            stats[0] += 1
            stats[1] += fanout
            stats[2] += wall_s

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def events_total(self) -> int:
        # Derived at read time (sum over per-kind counts, which include the
        # process:* kinds) so the per-event hooks never touch a second counter.
        return sum(s[0] for s in self._by_kind.values())

    def snapshot(self) -> KernelProfile:
        return KernelProfile(
            events_total=self.events_total,
            process_events=self.process_events,
            cancels=self.cancels,
            prunes=self.prunes,
            max_heap_depth=self.max_heap_depth,
            by_kind={
                kind: {"count": float(s[0]), "wall_s": s[1]}
                for kind, s in self._by_kind.items()
            },
            publishes={
                name: {"count": float(s[0]), "fanout": float(s[1]), "wall_s": s[2]}
                for name, s in self._publishes.items()
            },
        )
