"""Reproduction of *Demystifying Serverless Costs on Public Platforms* (EuroSys 2026).

The package is organised as a stack of substrates mirroring the paper's
top-down methodology:

- :mod:`repro.billing` -- user-facing billing models and the pricing catalog (paper §2).
- :mod:`repro.traces` -- serverless request traces (synthetic Huawei-like generator) and
  streaming statistics used by the billing analysis.
- :mod:`repro.platform` -- a discrete-event serverless platform simulator covering sandbox
  lifecycle, concurrency models, autoscaling, serving architectures and keep-alive (paper §3).
- :mod:`repro.sched` -- an OS CPU-bandwidth-control scheduling simulator (CFS/EEVDF) used to
  study quantized scheduling and overallocation (paper §4).
- :mod:`repro.workloads` -- synthetic function workloads and traffic generators.
- :mod:`repro.core` -- the top-down cost decomposition framework tying the layers together.
- :mod:`repro.analysis` -- one module per paper experiment (figures 2-12, tables 1-3).
"""

from repro._version import __version__

__all__ = ["__version__"]
