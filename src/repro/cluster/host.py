"""Hosts: fixed-capacity servers that sandboxes are packed onto."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["HostSpec", "Host", "DEFAULT_VCPU_HOUR_USD", "DEFAULT_GB_HOUR_USD"]

_host_counter = itertools.count()

#: Default provider-side capacity prices used when a spec does not set its own
#: hourly cost: roughly the on-demand VM decomposition the paper's Figure 1
#: compares serverless prices against (a 2 vCPU / 8 GB server at ~$0.096/h).
DEFAULT_VCPU_HOUR_USD = 0.024
DEFAULT_GB_HOUR_USD = 0.006


@dataclass(frozen=True)
class HostSpec:
    """Capacity and price class of one host server shape.

    The default matches a common cloud server shape used for FaaS fleets:
    64 vCPUs and 256 GB of memory (a 1:4 vCPU:GB ratio).  ``hourly_cost_usd``
    is the provider-side cost of keeping one such host open; when left at
    ``None`` it is derived from capacity at the default unit prices, so
    homogeneous fleets keep working unchanged while heterogeneous fleets can
    declare distinct price classes (e.g. a cheap high-density shape next to a
    premium low-latency one) that the ``COST_FIT`` placement policy reads.
    """

    vcpus: float = 64.0
    memory_gb: float = 256.0
    hourly_cost_usd: float = None  # type: ignore[assignment]
    price_class: str = "standard"

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gb <= 0:
            raise ValueError("host capacities must be positive")
        if self.hourly_cost_usd is None:
            object.__setattr__(
                self,
                "hourly_cost_usd",
                self.vcpus * DEFAULT_VCPU_HOUR_USD + self.memory_gb * DEFAULT_GB_HOUR_USD,
            )
        if self.hourly_cost_usd < 0:
            raise ValueError("hourly_cost_usd must be >= 0")


@dataclass
class Host:
    """One host with its current allocations."""

    spec: HostSpec
    name: str = ""
    #: Fleet partition this host belongs to ("" for single-zone fleets).
    zone: str = ""
    allocated_vcpus: float = field(default=0.0, init=False)
    allocated_memory_gb: float = field(default=0.0, init=False)
    sandboxes: List[str] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"host-{next(_host_counter)}"

    @property
    def free_vcpus(self) -> float:
        return self.spec.vcpus - self.allocated_vcpus

    @property
    def free_memory_gb(self) -> float:
        return self.spec.memory_gb - self.allocated_memory_gb

    @property
    def cpu_utilization(self) -> float:
        return self.allocated_vcpus / self.spec.vcpus

    @property
    def memory_utilization(self) -> float:
        return self.allocated_memory_gb / self.spec.memory_gb

    def fits(self, vcpus: float, memory_gb: float) -> bool:
        """Whether a sandbox with the given allocation fits on this host."""
        return vcpus <= self.free_vcpus + 1e-9 and memory_gb <= self.free_memory_gb + 1e-9

    def place(self, sandbox_id: str, vcpus: float, memory_gb: float) -> None:
        """Allocate a sandbox on this host (caller must have checked :meth:`fits`)."""
        if not self.fits(vcpus, memory_gb):
            raise ValueError(f"sandbox {sandbox_id} does not fit on {self.name}")
        self.allocated_vcpus += vcpus
        self.allocated_memory_gb += memory_gb
        self.sandboxes.append(sandbox_id)

    def remove(self, sandbox_id: str, vcpus: float, memory_gb: float) -> None:
        """Release a sandbox's allocation (the fleet layer's eviction path)."""
        if sandbox_id not in self.sandboxes:
            raise KeyError(f"sandbox {sandbox_id} is not placed on {self.name}")
        self.sandboxes.remove(sandbox_id)
        self.allocated_vcpus = max(self.allocated_vcpus - vcpus, 0.0)
        self.allocated_memory_gb = max(self.allocated_memory_gb - memory_gb, 0.0)

    def stranded_capacity(self) -> Dict[str, float]:
        """Capacity that cannot be used because the *other* resource is exhausted.

        If memory is (nearly) full but vCPUs remain, those vCPUs are stranded,
        and vice versa -- the fragmentation effect §2.2 attributes to
        unbalanced CPU:memory allocations.
        """
        stranded_cpu = 0.0
        stranded_memory = 0.0
        if self.memory_utilization >= 0.97 and self.cpu_utilization < 0.97:
            stranded_cpu = self.free_vcpus
        if self.cpu_utilization >= 0.97 and self.memory_utilization < 0.97:
            stranded_memory = self.free_memory_gb
        return {"vcpus": stranded_cpu, "memory_gb": stranded_memory}
