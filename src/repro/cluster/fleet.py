"""Event-driven fleet placement: the provider's host pool over simulated time.

:func:`repro.cluster.placement.place_sandboxes` packs a *static* sandbox
population once.  The :class:`Fleet` is its event-driven counterpart: it
subscribes to the typed sandbox-lifecycle events platform simulators publish
on the shared :class:`~repro.sim.events.EventBus` and maintains the host pool
continuously -- admitting each cold-started sandbox onto a host under a
placement policy, releasing capacity when the sandbox is evicted, and opening
hosts on demand up to per-zone caps.

Three cluster-level mechanisms live here:

- **Multi-zone heterogeneity**: a fleet is partitioned into zones
  (:class:`ZoneConfig`), each with its own host shape and price class
  (:class:`~repro.cluster.host.HostSpec`) and host cap.  The ``COST_FIT``
  policy exploits the price classes; the default single-zone configuration
  reproduces the homogeneous PR-2 fleet exactly.
- **Admission backpressure**: with ``queue_depth > 0`` an unplaceable sandbox
  is *queued* (:class:`~repro.sim.events.SandboxQueued`) instead of dropped,
  and retried whenever capacity is released -- eviction or termination --
  in FIFO or smallest-first order.  Beyond the bound it is rejected
  (:class:`~repro.sim.events.SandboxRejected`); each successful placement
  publishes :class:`~repro.sim.events.SandboxAdmitted` with its queue wait.
- **Live cost accounting**: the fleet integrates the provider-side spend of
  its open hosts (price class x open time) and, when a
  :class:`~repro.billing.meter.CostMeter` is attached via
  :meth:`Fleet.attach_meter`, samples the user-side billed cost next to it --
  the provider-vs-user cost comparison of §2.2/§3.3 read off one timeline.

The fleet is also a polled kernel process (:class:`repro.sim.kernel.SimProcess`):
registered on the co-simulation kernel, it samples fleet-level utilisation on
a fixed interval, producing the deployment-density timeline that the static
packer cannot express (density under keep-alive churn, autoscaler growth, and
placement-policy interaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import PlacementPolicy, SandboxRequirement, choose_host
from repro.sim.events import (
    EventBus,
    SandboxAdmitted,
    SandboxColdStart,
    SandboxQueued,
    SandboxRejected,
    SandboxTerminated,
)
from repro.sim.kernel import PeriodicProcess

__all__ = ["FleetConfig", "Fleet", "ZoneConfig"]


@dataclass(frozen=True)
class ZoneConfig:
    """One fleet partition: a host shape/price class plus a host cap."""

    name: str
    host_spec: HostSpec = field(default_factory=HostSpec)
    max_hosts: int = 100_000

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("zone name must be non-empty")
        if self.max_hosts < 0:
            raise ValueError("max_hosts must be >= 0")


@dataclass(frozen=True)
class FleetConfig:
    """Host pool parameters of one fleet.

    Attributes:
        host_spec: capacity of each host in the default single zone (ignored
            when ``zones`` is given).
        policy: bin-packing policy used to admit sandboxes.
        max_hosts: host cap of the default single zone (ignored with ``zones``).
        zones: heterogeneous fleet partitions; each zone has its own host
            shape, price class and cap.  ``None`` means one homogeneous zone
            built from ``host_spec``/``max_hosts`` (the PR-2 behaviour).
        queue_depth: bound of the admission queue.  ``0`` disables
            backpressure: unplaceable sandboxes are rejected immediately.
        queue_discipline: ``"fifo"`` retries queued sandboxes in arrival
            order; ``"smallest_first"`` retries the smallest resource demand
            first (ties broken by arrival order -- deterministic either way).
        sample_interval_s: period of the utilisation timeline samples taken
            when the fleet is registered as a kernel process; ``None``
            disables periodic sampling.
        retry_after_hint_s: when set, every rejection carries a retry-after
            hint on its :class:`~repro.sim.events.SandboxRejected` event:
            the base hint scaled by the current admission-queue congestion
            (``hint * (1 + queue depth)``), so a deeply backed-up fleet tells
            clients to back off proportionally longer.  The retry loop floors
            its backoff at the hint.  ``None`` (the default) issues no hints
            -- the pre-tenancy behaviour, byte-identical events.
    """

    host_spec: HostSpec = field(default_factory=HostSpec)
    policy: PlacementPolicy = PlacementPolicy.BEST_FIT
    max_hosts: int = 100_000
    zones: Optional[Tuple[ZoneConfig, ...]] = None
    queue_depth: int = 0
    queue_discipline: str = "fifo"
    sample_interval_s: Optional[float] = 10.0
    retry_after_hint_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_hosts < 0:
            raise ValueError("max_hosts must be >= 0")
        if self.zones is not None:
            names = [zone.name for zone in self.zones]
            if not names:
                raise ValueError("zones must be non-empty when given")
            if len(set(names)) != len(names):
                raise ValueError(f"zone names must be unique, got {names}")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.queue_discipline not in ("fifo", "smallest_first"):
            raise ValueError(f"unknown queue discipline {self.queue_discipline!r}")
        if self.sample_interval_s is not None and self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive (or None)")
        if self.retry_after_hint_s is not None and self.retry_after_hint_s <= 0:
            raise ValueError("retry_after_hint_s must be positive (or None)")

    def effective_zones(self) -> Tuple[ZoneConfig, ...]:
        """The declared zones, or the implicit single homogeneous zone."""
        if self.zones is not None:
            return self.zones
        return (ZoneConfig(name="default", host_spec=self.host_spec, max_hosts=self.max_hosts),)


@dataclass
class _QueuedSandbox:
    """One admission-queue entry, ordered by enqueue sequence."""

    seq: int
    enqueued_s: float
    sandbox_name: str
    vcpus: float
    memory_gb: float


class Fleet:
    """The host pool as a live co-simulation participant.

    Event-driven: :meth:`admit` on every :class:`SandboxColdStart`,
    :meth:`release` on every :class:`SandboxTerminated` (evictions are a
    subclass, so both teardown paths release capacity and drain the admission
    queue).  Polled: when added to the kernel via ``kernel.add_process(fleet)``,
    it records one utilisation sample per ``sample_interval_s``.
    """

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self.zones: Tuple[ZoneConfig, ...] = self.config.effective_zones()
        self._single_unnamed_zone = self.config.zones is None
        self.hosts: List[Host] = []
        #: per-zone open-host counts (naming and cap enforcement).
        self._zone_counts: Dict[str, int] = {zone.name: 0 for zone in self.zones}
        #: host name -> simulated time the host was opened (cost accounting).
        self._opened_at: Dict[str, float] = {}
        #: sandbox name -> (host, vcpus, memory_gb) for everything placed.
        self._placements: Dict[str, Tuple[Host, float, float]] = {}
        #: bounded admission queue (backpressure), in enqueue order.
        self.queue: List[_QueuedSandbox] = []
        self._queue_seq = 0
        #: (time, sandbox name) of admissions that were rejected for good.
        self.unplaceable: List[Tuple[float, str]] = []
        #: rejection reason -> count (oversized / queue_full / no_capacity).
        self.reject_reasons: Dict[str, int] = {}
        #: latest admission/release/sample time seen (cost-accounting end time).
        self.last_event_s = 0.0
        #: periodic utilisation samples (see :meth:`sample`).
        self.timeline: List[Dict[str, float]] = []
        self.admitted = 0
        self.released = 0
        self.queued_total = 0
        self.admitted_from_queue = 0
        self.queue_abandoned = 0
        self.peak_queue_depth = 0
        self.queue_wait_total_s = 0.0
        self.peak_hosts_open = 0
        self.peak_placed = 0
        self._bus: Optional[EventBus] = None
        self._meter = None  # Optional[repro.billing.meter.CostMeter] (duck-typed)
        self._sampler: Optional[PeriodicProcess] = (
            PeriodicProcess(self.config.sample_interval_s, self._record_sample)
            if self.config.sample_interval_s is not None
            else None
        )

    # ------------------------------------------------------------------
    # Event-driven admission / eviction
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "Fleet":
        """Subscribe to sandbox lifecycle events on a (shared) bus.

        The fleet also publishes its admission outcomes
        (``SandboxQueued``/``SandboxAdmitted``/``SandboxRejected``) back onto
        the same bus, so downstream subscribers observe the full loop.
        """
        self._bus = bus
        bus.subscribe(SandboxColdStart, self._on_cold_start)
        bus.subscribe(SandboxTerminated, self._on_terminated)
        return self

    def attach_meter(self, meter) -> "Fleet":
        """Read a live :class:`~repro.billing.meter.CostMeter` into the timeline.

        The meter's running user-side invoice (``cost_usd``) is sampled next
        to the fleet's own provider-side spend, making the two cost views
        directly comparable on one clock.
        """
        self._meter = meter
        return self

    def register_metrics(self, registry) -> "Fleet":
        """Expose live fleet state as observability gauges (pure reads).

        The gauges read the same accessors :meth:`sample` does, so a
        telemetry tick observes exactly the state the periodic timeline
        records -- without appending to it.
        """
        registry.gauge("fleet_queue_depth", fn=lambda: float(len(self.queue)))
        registry.gauge("fleet_hosts_open", fn=lambda: float(len(self.hosts)))
        registry.gauge("fleet_sandboxes_placed", fn=lambda: float(self.num_placed))
        registry.gauge(
            "fleet_mean_cpu_utilization",
            fn=lambda: (
                sum(h.cpu_utilization for h in self.hosts) / len(self.hosts)
                if self.hosts
                else 0.0
            ),
        )
        registry.gauge("fleet_hourly_cost_usd", fn=lambda: float(self.hourly_cost_usd))
        return self

    def _publish(self, event) -> None:
        if self._bus is not None:
            self._bus.publish(event)

    def _on_cold_start(self, event: SandboxColdStart) -> None:
        self.admit(event.time_s, event.sandbox_name, event.alloc_vcpus, event.alloc_memory_gb)

    def _on_terminated(self, event: SandboxTerminated) -> None:
        self.release(event.time_s, event.sandbox_name)

    def _fits_some_zone(self, vcpus: float, memory_gb: float) -> bool:
        return any(
            vcpus <= zone.host_spec.vcpus and memory_gb <= zone.host_spec.memory_gb
            for zone in self.zones
        )

    def _open_host(self, requirement: SandboxRequirement) -> Optional[Host]:
        """Open a host for ``requirement`` in the zone the policy prefers.

        Candidate zones are those with cap headroom whose host shape fits the
        requirement.  ``COST_FIT`` opens in the cheapest candidate zone
        (price ties broken by declaration order); every other policy opens in
        the first candidate zone by declaration order.  Host names encode the
        zone and a per-zone open counter, so packings stay deterministic
        across processes; the implicit single zone keeps the PR-2 bare
        ``host-00000`` names.
        """
        candidates = [
            (index, zone)
            for index, zone in enumerate(self.zones)
            if self._zone_counts[zone.name] < zone.max_hosts
            and requirement.vcpus <= zone.host_spec.vcpus
            and requirement.memory_gb <= zone.host_spec.memory_gb
        ]
        if not candidates:
            return None
        if self.config.policy is PlacementPolicy.COST_FIT:
            index, zone = min(
                candidates, key=lambda pair: (pair[1].host_spec.hourly_cost_usd, pair[0])
            )
        else:
            index, zone = candidates[0]
        count = self._zone_counts[zone.name]
        if self._single_unnamed_zone:
            name = f"host-{count:05d}"
            host = Host(spec=zone.host_spec, name=name)
        else:
            name = f"{zone.name}/host-{count:05d}"
            host = Host(spec=zone.host_spec, name=name, zone=zone.name)
        self._zone_counts[zone.name] = count + 1
        self.hosts.append(host)
        return host

    def _place_on(self, host: Host, requirement: SandboxRequirement) -> Host:
        """Record a placement on an already-chosen host."""
        host.place(requirement.sandbox_id, requirement.vcpus, requirement.memory_gb)
        self._placements[requirement.sandbox_id] = (host, requirement.vcpus, requirement.memory_gb)
        self.admitted += 1
        self.peak_hosts_open = max(self.peak_hosts_open, len(self.hosts))
        self.peak_placed = max(self.peak_placed, len(self._placements))
        return host

    def _place(self, time_s: float, requirement: SandboxRequirement) -> Optional[Host]:
        """Find (or open) a host and record the placement; ``None`` when full."""
        chosen = choose_host(self.hosts, requirement, self.config.policy)
        if chosen is None:
            chosen = self._open_host(requirement)
            if chosen is None:
                return None
            self._opened_at[chosen.name] = time_s
        return self._place_on(chosen, requirement)

    def admit(self, time_s: float, sandbox_name: str, vcpus: float, memory_gb: float) -> Optional[Host]:
        """Place one sandbox; queues or rejects it when nothing fits.

        Returns the chosen host for direct placements.  Returns ``None`` when
        the sandbox was queued (backpressure enabled, bound not reached) or
        rejected (oversized for every zone, queue full, or queueing disabled).
        """
        self.last_event_s = max(self.last_event_s, time_s)
        requirement = SandboxRequirement(sandbox_name, vcpus, memory_gb)
        if not self._fits_some_zone(vcpus, memory_gb):
            # Can never fit, so waiting for capacity release is pointless.
            self._reject(time_s, sandbox_name, "oversized")
            return None
        host = self._place(time_s, requirement)
        if host is not None:
            self._publish(SandboxAdmitted(time_s, sandbox_name, host_name=host.name))
            return host
        if self.config.queue_depth > 0:
            if len(self.queue) < self.config.queue_depth:
                self._enqueue(time_s, sandbox_name, vcpus, memory_gb)
            else:
                self._reject(time_s, sandbox_name, "queue_full")
        else:
            self._reject(time_s, sandbox_name, "no_capacity")
        return None

    def _enqueue(self, time_s: float, sandbox_name: str, vcpus: float, memory_gb: float) -> None:
        self.queue.append(_QueuedSandbox(self._queue_seq, time_s, sandbox_name, vcpus, memory_gb))
        self._queue_seq += 1
        self.queued_total += 1
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))
        self._publish(SandboxQueued(time_s, sandbox_name, queue_depth=len(self.queue)))

    def _reject(self, time_s: float, sandbox_name: str, reason: str) -> None:
        self.unplaceable.append((time_s, sandbox_name))
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        hint = self.config.retry_after_hint_s
        if hint is None:
            self._publish(SandboxRejected(time_s, sandbox_name, reason=reason))
            return
        # Congestion-scaled load shedding: the deeper the admission queue,
        # the longer rejected clients are told to stay away.  Deterministic
        # (pure function of queue depth at rejection time).
        retry_after = hint * (1.0 + len(self.queue))
        self._publish(
            SandboxRejected(time_s, sandbox_name, reason=reason, retry_after_s=retry_after)
        )

    def _drain_order(self) -> List[_QueuedSandbox]:
        if self.config.queue_discipline == "smallest_first":
            return sorted(self.queue, key=lambda e: (e.vcpus + e.memory_gb, e.seq))
        return list(self.queue)  # FIFO: enqueue order

    def _drain_queue(self, time_s: float) -> None:
        """Retry queued sandboxes against the freed capacity, in discipline order.

        Entries that still do not fit stay queued (no head-of-line blocking:
        a later, smaller entry may be admitted past a larger one even under
        FIFO -- admission *attempts* follow the discipline order).
        """
        if not self.queue:
            return
        for entry in self._drain_order():
            requirement = SandboxRequirement(entry.sandbox_name, entry.vcpus, entry.memory_gb)
            # Only existing hosts are considered on the retry path -- the drain
            # never *opens* hosts (admission already tried and failed to).
            chosen = choose_host(self.hosts, requirement, self.config.policy)
            if chosen is None:
                continue
            host = self._place_on(chosen, requirement)
            self.queue.remove(entry)
            self.admitted_from_queue += 1
            wait = max(time_s - entry.enqueued_s, 0.0)
            self.queue_wait_total_s += wait
            self._publish(
                SandboxAdmitted(time_s, entry.sandbox_name, host_name=host.name, queue_wait_s=wait)
            )

    def release(self, time_s: float, sandbox_name: str) -> None:
        """Free the capacity a sandbox held and retry the admission queue.

        A sandbox terminated while still *queued* is removed from the queue
        (it will never need placing).  Releasing an unknown sandbox is a
        no-op.
        """
        self.last_event_s = max(self.last_event_s, time_s)
        placement = self._placements.pop(sandbox_name, None)
        if placement is None:
            for entry in self.queue:
                if entry.sandbox_name == sandbox_name:
                    self.queue.remove(entry)
                    self.queue_abandoned += 1
                    break
            return
        host, vcpus, memory_gb = placement
        host.remove(sandbox_name, vcpus, memory_gb)
        self.released += 1
        self._drain_queue(time_s)

    def host_of(self, sandbox_name: str) -> Optional[Host]:
        """The host currently running a sandbox, if it is placed."""
        placement = self._placements.get(sandbox_name)
        return placement[0] if placement is not None else None

    def price_class_of(self, sandbox_name: str) -> Optional[str]:
        """The price class of the host a sandbox is placed on (zone-aware billing).

        ``None`` when the sandbox is not currently placed (queued, rejected,
        or already released) -- the cost meter then bills at base prices.
        """
        host = self.host_of(sandbox_name)
        return host.spec.price_class if host is not None else None

    @property
    def num_placed(self) -> int:
        return len(self._placements)

    @property
    def queue_depth(self) -> int:
        """Current admission-queue depth."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    @property
    def hourly_cost_usd(self) -> float:
        """Current provider-side spend rate: the price of every open host."""
        return sum(host.spec.hourly_cost_usd for host in self.hosts)

    def provider_cost_usd(self, now_s: float) -> float:
        """Provider spend accrued by ``now_s``: each host's price x open time."""
        return sum(
            host.spec.hourly_cost_usd * max(now_s - self._opened_at.get(host.name, 0.0), 0.0) / 3600.0
            for host in self.hosts
        )

    # ------------------------------------------------------------------
    # Polled kernel process: periodic utilisation sampling (delegated to a
    # shared PeriodicProcess so the tick-grid behaviour matches the autoscaler)
    # ------------------------------------------------------------------

    periodic = True  # an unbounded kernel.run() must not spin on sampler ticks

    def _record_sample(self, now: float) -> None:
        self.last_event_s = max(self.last_event_s, now)
        self.timeline.append(self.sample(now))

    def next_event_time(self, now: float) -> Optional[float]:
        return self._sampler.next_event_time(now) if self._sampler is not None else None

    def handle(self, now: float) -> None:
        if self._sampler is not None:
            self._sampler.handle(now)

    def sample(self, now_s: float) -> Dict[str, float]:
        """One fleet-utilisation sample at ``now_s``."""
        hosts = self.hosts
        num_hosts = len(hosts)
        placed = len(self._placements)
        stranded_vcpus = 0.0
        stranded_memory_gb = 0.0
        for host in hosts:
            stranded = host.stranded_capacity()
            stranded_vcpus += stranded["vcpus"]
            stranded_memory_gb += stranded["memory_gb"]
        return {
            "time_s": now_s,
            "hosts_open": float(num_hosts),
            "sandboxes_placed": float(placed),
            "queue_depth": float(len(self.queue)),
            "deployment_density": placed / num_hosts if num_hosts else 0.0,
            "mean_cpu_utilization": (
                sum(h.cpu_utilization for h in hosts) / num_hosts if num_hosts else 0.0
            ),
            "mean_memory_utilization": (
                sum(h.memory_utilization for h in hosts) / num_hosts if num_hosts else 0.0
            ),
            "stranded_vcpus": stranded_vcpus,
            "stranded_memory_gb": stranded_memory_gb,
            "fleet_hourly_cost_usd": self.hourly_cost_usd,
            "provider_cost_usd": self.provider_cost_usd(now_s),
            # The live user-side invoice, when a meter is attached: both cost
            # views on one clock.
            "billed_cost_usd": float(self._meter.cost_usd) if self._meter is not None else 0.0,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Whole-run fleet summary: peaks and timeline means over the run.

        Mean columns average the periodic timeline samples; with sampling
        disabled they fall back to a single end-state sample.
        """
        rows = self.timeline or [self.sample(0.0)]

        def _mean(key: str) -> float:
            return sum(row[key] for row in rows) / len(rows)

        # Provider spend accrues to the latest admission/release/sample time,
        # not just the last sampler tick -- with sampling disabled the
        # fallback sample sits at t=0 and would zero the whole-run cost.
        end_time = max(rows[-1]["time_s"], self.last_event_s)
        return {
            "policy": self.config.policy.value,
            "num_zones": float(len(self.zones)),
            "hosts_open": float(len(self.hosts)),
            "peak_hosts_open": float(self.peak_hosts_open),
            "peak_sandboxes_placed": float(self.peak_placed),
            "admitted": float(self.admitted),
            "released": float(self.released),
            "unplaceable": float(len(self.unplaceable)),
            "queued": float(self.queued_total),
            "admitted_from_queue": float(self.admitted_from_queue),
            "queue_abandoned": float(self.queue_abandoned),
            "rejected_oversized": float(self.reject_reasons.get("oversized", 0)),
            "rejected_queue_full": float(self.reject_reasons.get("queue_full", 0)),
            "rejected_no_capacity": float(self.reject_reasons.get("no_capacity", 0)),
            "peak_queue_depth": float(self.peak_queue_depth),
            "final_queue_depth": float(len(self.queue)),
            "mean_queue_wait_s": (
                self.queue_wait_total_s / self.admitted_from_queue
                if self.admitted_from_queue
                else 0.0
            ),
            "peak_deployment_density": max(row["deployment_density"] for row in rows),
            "mean_deployment_density": _mean("deployment_density"),
            "mean_cpu_utilization": _mean("mean_cpu_utilization"),
            "mean_memory_utilization": _mean("mean_memory_utilization"),
            "fleet_hourly_cost_usd": self.hourly_cost_usd,
            "provider_cost_usd": self.provider_cost_usd(end_time),
        }
