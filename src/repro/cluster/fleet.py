"""Event-driven fleet placement: the provider's host pool over simulated time.

:func:`repro.cluster.placement.place_sandboxes` packs a *static* sandbox
population once.  The :class:`Fleet` is its event-driven counterpart: it
subscribes to the typed sandbox-lifecycle events platform simulators publish
on the shared :class:`~repro.sim.events.EventBus` and maintains the host pool
continuously -- admitting each cold-started sandbox onto a host under a
FIRST/BEST/WORST-FIT policy, releasing capacity when the sandbox is evicted,
and opening hosts on demand up to a cap.

The fleet is also a polled kernel process (:class:`repro.sim.kernel.SimProcess`):
registered on the co-simulation kernel, it samples fleet-level utilisation on
a fixed interval, producing the deployment-density timeline that the static
packer cannot express (density under keep-alive churn, autoscaler growth, and
placement-policy interaction -- the provider-side cost story of §2.2/§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import PlacementPolicy, SandboxRequirement, choose_or_open_host
from repro.sim.events import EventBus, SandboxColdStart, SandboxTerminated
from repro.sim.kernel import PeriodicProcess

__all__ = ["FleetConfig", "Fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Host pool parameters of one fleet.

    Attributes:
        host_spec: capacity of each (homogeneous) host.
        policy: bin-packing policy used to admit sandboxes.
        max_hosts: hard cap on open hosts; admissions beyond it fail.
        sample_interval_s: period of the utilisation timeline samples taken
            when the fleet is registered as a kernel process; ``None``
            disables periodic sampling.
    """

    host_spec: HostSpec = field(default_factory=HostSpec)
    policy: PlacementPolicy = PlacementPolicy.BEST_FIT
    max_hosts: int = 100_000
    sample_interval_s: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if self.max_hosts < 0:
            raise ValueError("max_hosts must be >= 0")
        if self.sample_interval_s is not None and self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive (or None)")


class Fleet:
    """The host pool as a live co-simulation participant.

    Event-driven: :meth:`admit` on every :class:`SandboxColdStart`,
    :meth:`release` on every :class:`SandboxTerminated` (evictions are a
    subclass, so both teardown paths release capacity).  Polled: when added
    to the kernel via ``kernel.add_process(fleet)``, it records one
    utilisation sample per ``sample_interval_s``.
    """

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self.hosts: List[Host] = []
        #: sandbox name -> (host, vcpus, memory_gb) for everything placed.
        self._placements: Dict[str, Tuple[Host, float, float]] = {}
        #: (time, sandbox name) of admissions that found no host.
        self.unplaceable: List[Tuple[float, str]] = []
        #: periodic utilisation samples (see :meth:`sample`).
        self.timeline: List[Dict[str, float]] = []
        self.admitted = 0
        self.released = 0
        self.peak_hosts_open = 0
        self.peak_placed = 0
        self._sampler: Optional[PeriodicProcess] = (
            PeriodicProcess(self.config.sample_interval_s, self._record_sample)
            if self.config.sample_interval_s is not None
            else None
        )

    # ------------------------------------------------------------------
    # Event-driven admission / eviction
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "Fleet":
        """Subscribe to sandbox lifecycle events on a (shared) bus."""
        bus.subscribe(SandboxColdStart, self._on_cold_start)
        bus.subscribe(SandboxTerminated, self._on_terminated)
        return self

    def _on_cold_start(self, event: SandboxColdStart) -> None:
        self.admit(event.time_s, event.sandbox_name, event.alloc_vcpus, event.alloc_memory_gb)

    def _on_terminated(self, event: SandboxTerminated) -> None:
        self.release(event.time_s, event.sandbox_name)

    def admit(self, time_s: float, sandbox_name: str, vcpus: float, memory_gb: float) -> Optional[Host]:
        """Place one sandbox; opens a new host when nothing fits (up to the cap).

        Returns the chosen host, or ``None`` when the sandbox is unplaceable
        (oversized for a whole host, or the host cap is reached).
        """
        requirement = SandboxRequirement(sandbox_name, vcpus, memory_gb)
        chosen = choose_or_open_host(
            self.hosts, requirement, self.config.policy, self.config.host_spec, self.config.max_hosts
        )
        if chosen is None:
            self.unplaceable.append((time_s, sandbox_name))
            return None
        chosen.place(sandbox_name, vcpus, memory_gb)
        self._placements[sandbox_name] = (chosen, vcpus, memory_gb)
        self.admitted += 1
        self.peak_hosts_open = max(self.peak_hosts_open, len(self.hosts))
        self.peak_placed = max(self.peak_placed, len(self._placements))
        return chosen

    def release(self, time_s: float, sandbox_name: str) -> None:
        """Free the capacity a sandbox held (no-op for unplaced sandboxes)."""
        placement = self._placements.pop(sandbox_name, None)
        if placement is None:
            return
        host, vcpus, memory_gb = placement
        host.remove(sandbox_name, vcpus, memory_gb)
        self.released += 1

    def host_of(self, sandbox_name: str) -> Optional[Host]:
        """The host currently running a sandbox, if it is placed."""
        placement = self._placements.get(sandbox_name)
        return placement[0] if placement is not None else None

    @property
    def num_placed(self) -> int:
        return len(self._placements)

    # ------------------------------------------------------------------
    # Polled kernel process: periodic utilisation sampling (delegated to a
    # shared PeriodicProcess so the tick-grid behaviour matches the autoscaler)
    # ------------------------------------------------------------------

    periodic = True  # an unbounded kernel.run() must not spin on sampler ticks

    def _record_sample(self, now: float) -> None:
        self.timeline.append(self.sample(now))

    def next_event_time(self, now: float) -> Optional[float]:
        return self._sampler.next_event_time(now) if self._sampler is not None else None

    def handle(self, now: float) -> None:
        if self._sampler is not None:
            self._sampler.handle(now)

    def sample(self, now_s: float) -> Dict[str, float]:
        """One fleet-utilisation sample at ``now_s``."""
        hosts = self.hosts
        num_hosts = len(hosts)
        placed = len(self._placements)
        stranded_vcpus = 0.0
        stranded_memory_gb = 0.0
        for host in hosts:
            stranded = host.stranded_capacity()
            stranded_vcpus += stranded["vcpus"]
            stranded_memory_gb += stranded["memory_gb"]
        return {
            "time_s": now_s,
            "hosts_open": float(num_hosts),
            "sandboxes_placed": float(placed),
            "deployment_density": placed / num_hosts if num_hosts else 0.0,
            "mean_cpu_utilization": (
                sum(h.cpu_utilization for h in hosts) / num_hosts if num_hosts else 0.0
            ),
            "mean_memory_utilization": (
                sum(h.memory_utilization for h in hosts) / num_hosts if num_hosts else 0.0
            ),
            "stranded_vcpus": stranded_vcpus,
            "stranded_memory_gb": stranded_memory_gb,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Whole-run fleet summary: peaks and timeline means over the run.

        Mean columns average the periodic timeline samples; with sampling
        disabled they fall back to a single end-state sample.
        """
        rows = self.timeline or [self.sample(0.0)]

        def _mean(key: str) -> float:
            return sum(row[key] for row in rows) / len(rows)

        return {
            "policy": self.config.policy.value,
            "hosts_open": float(len(self.hosts)),
            "peak_hosts_open": float(self.peak_hosts_open),
            "peak_sandboxes_placed": float(self.peak_placed),
            "admitted": float(self.admitted),
            "released": float(self.released),
            "unplaceable": float(len(self.unplaceable)),
            "peak_deployment_density": max(row["deployment_density"] for row in rows),
            "mean_deployment_density": _mean("deployment_density"),
            "mean_cpu_utilization": _mean("mean_cpu_utilization"),
            "mean_memory_utilization": _mean("mean_memory_utilization"),
        }
