"""Sandbox placement: bin-packing policies over a host fleet."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.host import Host, HostSpec

__all__ = [
    "SandboxRequirement",
    "PlacementPolicy",
    "PlacementResult",
    "choose_host",
    "choose_or_open_host",
    "place_sandboxes",
]


@dataclass(frozen=True)
class SandboxRequirement:
    """Resource demand of one sandbox to place."""

    sandbox_id: str
    vcpus: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gb <= 0:
            raise ValueError("sandbox requirements must be positive")


class PlacementPolicy(str, enum.Enum):
    """Bin-packing heuristics for sandbox placement.

    ``COST_FIT`` is the cost-aware policy: among feasible hosts it minimises
    the host's price class (``HostSpec.hourly_cost_usd``) first, breaking
    price ties best-fit-style (smallest leftover) and breaking *those* ties
    by host open order -- a total, deterministic order, so equal-price hosts
    always resolve the same way across runs and processes.
    """

    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"
    COST_FIT = "cost_fit"


@dataclass
class PlacementResult:
    """Outcome of placing a sandbox population on a host fleet."""

    hosts: List[Host]
    unplaced: List[SandboxRequirement]

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_placed(self) -> int:
        return sum(len(host.sandboxes) for host in self.hosts)

    @property
    def deployment_density(self) -> float:
        """Sandboxes per host (the provider-cost metric §2.2 refers to)."""
        if not self.hosts:
            return 0.0
        return self.num_placed / len(self.hosts)

    @property
    def mean_cpu_utilization(self) -> float:
        if not self.hosts:
            return 0.0
        return sum(h.cpu_utilization for h in self.hosts) / len(self.hosts)

    @property
    def mean_memory_utilization(self) -> float:
        if not self.hosts:
            return 0.0
        return sum(h.memory_utilization for h in self.hosts) / len(self.hosts)

    @property
    def stranded_vcpus(self) -> float:
        return sum(h.stranded_capacity()["vcpus"] for h in self.hosts)

    @property
    def stranded_memory_gb(self) -> float:
        return sum(h.stranded_capacity()["memory_gb"] for h in self.hosts)

    def summary(self) -> dict:
        return {
            "num_hosts": self.num_hosts,
            "num_placed": self.num_placed,
            "deployment_density": self.deployment_density,
            "mean_cpu_utilization": self.mean_cpu_utilization,
            "mean_memory_utilization": self.mean_memory_utilization,
            "stranded_vcpus": self.stranded_vcpus,
            "stranded_memory_gb": self.stranded_memory_gb,
            "unplaced": len(self.unplaced),
        }


def _leftover(host: Host, requirement: SandboxRequirement) -> float:
    """Normalised capacity left on ``host`` after placing ``requirement``."""
    leftover_cpu = (host.free_vcpus - requirement.vcpus) / host.spec.vcpus
    leftover_memory = (host.free_memory_gb - requirement.memory_gb) / host.spec.memory_gb
    return leftover_cpu + leftover_memory


def _score(host: Host, requirement: SandboxRequirement, policy: PlacementPolicy) -> Tuple[float, ...]:
    """Lower score is preferred.  Scores measure leftover capacity after placement."""
    if policy is PlacementPolicy.BEST_FIT:
        return (_leftover(host, requirement),)
    if policy is PlacementPolicy.WORST_FIT:
        return (-_leftover(host, requirement),)
    if policy is PlacementPolicy.COST_FIT:
        # Cheapest feasible host first; price ties resolve best-fit so cheap
        # hosts fill up before another expensive one is touched.
        return (host.spec.hourly_cost_usd, _leftover(host, requirement))
    return (0.0,)  # FIRST_FIT: order of the host list decides


def choose_host(
    hosts: Sequence[Host],
    requirement: SandboxRequirement,
    policy: PlacementPolicy,
) -> Optional[Host]:
    """The host the policy places ``requirement`` on, or ``None`` if nothing fits.

    Deterministic across runs and policies: score ties are broken by position
    in ``hosts`` (the order hosts were opened), never by dict/hash order.
    Shared by the one-shot :func:`place_sandboxes` packer and the event-driven
    :class:`repro.cluster.fleet.Fleet`.
    """
    candidates = [
        (index, host)
        for index, host in enumerate(hosts)
        if host.fits(requirement.vcpus, requirement.memory_gb)
    ]
    if not candidates:
        return None
    if policy is PlacementPolicy.FIRST_FIT:
        return candidates[0][1]
    return min(candidates, key=lambda pair: (_score(pair[1], requirement, policy), pair[0]))[1]


def choose_or_open_host(
    hosts: List[Host],
    requirement: SandboxRequirement,
    policy: PlacementPolicy,
    host_spec: HostSpec,
    max_hosts: int,
) -> Optional[Host]:
    """The policy's host for ``requirement``, opening a new one when nothing fits.

    Returns ``None`` when the requirement is oversized for a whole host or
    the host cap is reached.  A newly opened host is appended to ``hosts``
    and named by open order (``host-00000``, ...), which keeps packings
    deterministic across processes -- both the one-shot packer and the
    event-driven fleet rely on this exact naming.
    """
    if requirement.vcpus > host_spec.vcpus or requirement.memory_gb > host_spec.memory_gb:
        return None
    chosen = choose_host(hosts, requirement, policy)
    if chosen is None:
        if len(hosts) >= max_hosts:
            return None
        chosen = Host(spec=host_spec, name=f"host-{len(hosts):05d}")
        hosts.append(chosen)
    return chosen


def place_sandboxes(
    requirements: Sequence[SandboxRequirement],
    host_spec: Optional[HostSpec] = None,
    policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
    max_hosts: int = 100_000,
) -> PlacementResult:
    """Pack sandboxes onto hosts, opening a new host whenever nothing fits.

    Hosts are homogeneous (``host_spec``); a sandbox larger than a whole host
    is reported as unplaced rather than raising.
    """
    host_spec = host_spec or HostSpec()
    hosts: List[Host] = []
    unplaced: List[SandboxRequirement] = []
    for requirement in requirements:
        chosen = choose_or_open_host(hosts, requirement, policy, host_spec, max_hosts)
        if chosen is None:
            unplaced.append(requirement)
            continue
        chosen.place(requirement.sandbox_id, requirement.vcpus, requirement.memory_gb)
    return PlacementResult(hosts=hosts, unplaced=unplaced)
