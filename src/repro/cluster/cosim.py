"""Cluster co-simulation: many functions, one kernel, live fleet + cost metering.

This module composes the layers the repo previously kept separate into one
event loop:

- one :class:`~repro.platform.invoker.PlatformSimulator` per deployed
  function, all sharing a single :class:`~repro.sim.kernel.SimulationKernel`
  (their autoscalers are polled kernel processes, their event kinds are
  namespaced by function name);
- a :class:`~repro.cluster.fleet.Fleet` subscribed to the shared bus, placing
  every cold-started sandbox onto (possibly heterogeneous, multi-zone) hosts
  under a placement policy, queueing unplaceable sandboxes when admission
  backpressure is enabled, and releasing capacity on eviction -- the
  provider-side view;
- a :class:`~repro.billing.meter.CostMeter` per function bus, invoicing each
  completed request incrementally through the Table-1 billing models -- the
  user-side view, metered live instead of post-hoc.  The meter is also
  attached to the fleet, so the ``COST_FIT``-relevant provider spend and the
  live user invoice are sampled on one timeline;
- optionally, a :class:`~repro.sched.engine.SchedulerSim` registered as a
  polled process on the same kernel, so CPU-bandwidth scheduling decisions
  (tick accounting, cgroup throttling, task placement) co-simulate with the
  serving, fleet and billing layers instead of running in a separate loop.

The result is the cross-layer instrument the paper's cost findings call for:
keep-alive policy, placement density, admission backpressure, scheduler
throttling and billing model interact inside one simulated timeline, with
costs and fleet utilisation read off as they accrue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.billing.meter import CostMeter, RequestResources
from repro.cluster.fleet import Fleet, FleetConfig
from repro.obs import Observability
from repro.platform.config import FunctionConfig, PlatformConfig
from repro.platform.invoker import PlatformSimulator
from repro.platform.metrics import SimulationMetrics
from repro.sched.engine import SchedulerSim, SimulationResult
from repro.sim.arrivals import ArrivalSource, ConstantRateSource, PoissonSource
from repro.sim.events import EventBus
from repro.sim.feedback import FeedbackChannel
from repro.sim.kernel import SimulationKernel
from repro.sim.retry import RetryLoop, RetryPolicy
from repro.sim.rng import derive_seed
from repro.tenancy import AdmissionController, TenancyReport, TenantConfig, TenantReport

__all__ = ["FunctionDeployment", "ClusterResult", "ClusterSimulator"]

_EPS = 1e-9


@dataclass(frozen=True)
class FunctionDeployment:
    """One function deployed into the cluster, with its traffic."""

    function: FunctionConfig
    platform: PlatformConfig
    rps: float = 1.0
    duration_s: float = 60.0
    arrival_process: str = "constant"  # "constant" | "poisson"
    #: Which tenant owns this deployment (multi-tenant runs only).  Empty =
    #: assign round-robin over the configured tenants; ignored entirely --
    #: and must stay empty -- when the simulator runs without tenants.
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.rps <= 0 or self.duration_s < 0:
            raise ValueError("rps must be positive and duration_s >= 0")
        if self.arrival_process not in ("constant", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrival_process!r}")

    def resources(self) -> RequestResources:
        """The per-request billing context of this deployment."""
        return RequestResources.from_function(self.function)


@dataclass
class ClusterResult:
    """Everything one cluster co-simulation produced."""

    horizon_s: float
    metrics: Dict[str, SimulationMetrics]
    fleet: Fleet
    meter: Optional[CostMeter]
    scheduler: Optional[SimulationResult] = None
    retry: Optional[RetryLoop] = None
    #: The observability bundle attached to the run (None when untraced).
    #: Deliberately not part of summary(): rows stay byte-identical with obs
    #: on or off, which is the layer's core guarantee.
    obs: Optional[Observability] = None
    #: Per-tenant fairness/SLO report (None without tenants, keeping
    #: tenant-less summary rows byte-identical to the pre-tenancy output).
    tenancy: Optional[TenancyReport] = None

    def summary(self) -> Dict[str, float]:
        """One flat row combining request-, fleet-, cost- and scheduler-level outcomes."""
        num_requests = sum(m.num_requests for m in self.metrics.values())
        cold_starts = sum(m.cold_starts for m in self.metrics.values())
        failed = sum(m.failed_requests for m in self.metrics.values())
        durations: List[float] = []
        latencies: List[float] = []
        floor_s = 0.0
        for m in self.metrics.values():
            durations.extend(m.execution_durations_s())
            latencies.extend(m.end_to_end_latencies_s())
            # Incremental per-function floor sums: each accumulates in the
            # same completion order the old per-request walk summed in, so
            # the combined value is bit-identical.
            floor_s += m.service_floor_sum_s
        latency_s = sum(latencies)
        row: Dict[str, float] = {
            "num_functions": float(len(self.metrics)),
            "num_requests": float(num_requests),
            "failed_requests": float(failed),
            "pending_requests": float(
                sum(m.pending_requests for m in self.metrics.values())
            ),
            "cold_start_rate": cold_starts / num_requests if num_requests else 0.0,
            "mean_duration_ms": (sum(durations) / len(durations) * 1e3) if durations else 0.0,
            "mean_latency_ms": (latency_s / len(latencies) * 1e3) if latencies else 0.0,
            # Aggregate end-to-end latency above the uncontended service
            # floor: 0 = every request at its floor, 1 = latency doubled.
            # Cold starts, admission queueing, contention and feedback-layer
            # throttling all show up here.
            "latency_inflation": (latency_s - floor_s) / floor_s if floor_s > 0 else 0.0,
        }
        if self.retry is not None:
            # Retry-layer columns exist only when a retry loop ran, so
            # retry=None rows -- and their CSVs -- stay byte-identical to the
            # pre-retry output.
            arrivals = sum(m.arrivals for m in self.metrics.values())
            retried = sum(m.retry_arrivals for m in self.metrics.values())
            initial = arrivals - retried
            # Integer-exact terminal attempt aggregates (completed attempts
            # accumulated at record time, gave-up attempts off the failure
            # records): same mean as summing attempt_counts(), without
            # needing retained per-request outcomes.
            attempts_sum = 0
            terminal = 0
            for m in self.metrics.values():
                function_sum, function_count = m.terminal_attempt_stats()
                attempts_sum += function_sum
                terminal += function_count
            row["retried_requests"] = float(retried)
            row["gave_up_requests"] = float(
                sum(m.gave_up_requests for m in self.metrics.values())
            )
            row["mean_attempts"] = attempts_sum / terminal if terminal else 0.0
            # Load amplification the fleet actually absorbed: arrivals per
            # organic arrival (1.0 = nothing retried).
            row["retry_amplification"] = arrivals / initial if initial else 1.0
        row.update(self.fleet.summary())
        if self.meter is not None:
            totals = self.meter.totals()
            row["billing_platform"] = totals["platform"]
            for key in (
                "cost_usd",
                "billable_cpu_seconds",
                "billable_memory_gb_seconds",
                "invocation_fee_usd",
                "instance_seconds",
                "idle_instance_seconds",
            ):
                row[key] = totals[key]
        if self.tenancy is not None:
            # Tenancy columns exist only on multi-tenant runs; tenants=None
            # rows -- and their CSVs -- stay byte-identical.
            row.update(self.tenancy.summary_columns())
        if self.scheduler is not None:
            finished = [t for t in self.scheduler.tasks.values() if t.finished]
            row["sched_tasks"] = float(len(self.scheduler.tasks))
            row["sched_finished"] = float(len(finished))
            row["sched_mean_duration_s"] = (
                sum(t.duration_s for t in finished) / len(finished) if finished else 0.0
            )
            row["sched_cpu_consumed_s"] = sum(
                t.cpu_consumed_s for t in self.scheduler.tasks.values()
            )
            row["sched_throttle_time_s"] = sum(
                duration
                for t in self.scheduler.tasks.values()
                for _, duration in t.throttle_segments
            )
        return row


class ClusterSimulator:
    """Co-simulates a set of function deployments over one shared kernel.

    Pass ``scheduler`` (an un-run :class:`~repro.sched.engine.SchedulerSim`)
    to register the CPU-bandwidth scheduling engine as a polled process on
    the cluster kernel: its ticks, period refills and throttling decisions
    then interleave with arrivals, cold starts, fleet placement and billing
    in one deterministic event order.  The run horizon is extended to the
    scheduler's own ``horizon_s`` so it always reaches its standalone result.

    ``feedback`` closes the *state* loop between those layers (the default
    ``"off"`` byte-reproduces the share-a-clock-only behaviour of every
    existing entry point).  With ``feedback="on"`` a shared
    :class:`~repro.sim.feedback.FeedbackChannel` is attached to the cluster
    bus: the scheduler's throttling stretches request busy times (and
    therefore the durations the cost meter bills), a queued cold start defers
    its sandbox's readiness by the measured admission-queue wait, and a
    rejected cold start fails its pending request -- all visible in the
    ``failed_requests`` / ``latency_inflation`` summary columns.

    ``price_class_multipliers`` (price class -> unit-price factor) makes the
    live cost meter invoice each request at the price class of the *host its
    sandbox landed on*, so heterogeneous multi-zone fleets bill by zone.

    ``retry`` (a :class:`~repro.sim.retry.RetryPolicy`) models clients that
    retry failed requests: a :class:`~repro.sim.retry.RetryLoop` subscribed
    to the cluster bus re-injects every non-terminal failure as a fresh
    arrival after exponential seed-derived backoff, so rejected load comes
    back and re-loads the fleet (visible in the ``retried_requests`` /
    ``mean_attempts`` / ``gave_up_requests`` / ``retry_amplification``
    summary columns).  Requests only *fail* when the feedback layer is on;
    with ``feedback="off"`` a retry policy is inert.  ``retry=None`` (the
    default) byte-reproduces the pre-retry outputs.

    ``obs`` (an :class:`~repro.obs.Observability`) attaches the passive
    observability layer: a trace collector stitching per-request spans off
    the shared bus, a telemetry process sampling every layer's live gauges
    on the kernel grid, and an opt-in kernel profiler.  Observers only read,
    so a run with ``obs`` attached produces byte-identical results to the
    same seed without it; ``obs=None`` (the default) does not even subscribe.

    ``tenants`` (a sequence of :class:`~repro.tenancy.model.TenantConfig`)
    turns on the multi-tenant admission layer: an
    :class:`~repro.tenancy.admission.AdmissionController` on the shared
    kernel meters every deployment's arrivals against its tenant's credit
    account *before* routing (denying or credit-queueing exhausted tenants),
    per-simulator SLO targets come from the owning tenant's config, and the
    run result carries a :class:`~repro.tenancy.metrics.TenancyReport` with
    per-tenant SLO attainment, goodput, invoice share and Jain's fairness
    index (surfaced as extra summary columns).  Deployments are assigned to
    tenants by their explicit ``tenant`` tag, or round-robin over the tenant
    list when untagged.  ``tenants=None`` (the default) byte-reproduces the
    pre-tenancy outputs.
    """

    def __init__(
        self,
        deployments: Sequence[FunctionDeployment],
        fleet_config: Optional[FleetConfig] = None,
        billing_platform: Optional[str] = None,
        scheduler: Optional[SchedulerSim] = None,
        seed: int = 0,
        feedback: str = "off",
        price_class_multipliers: Optional[Mapping[str, float]] = None,
        retry: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
        retain_outcomes: bool = True,
        tenants: Optional[Sequence[TenantConfig]] = None,
    ) -> None:
        if not deployments:
            raise ValueError("a cluster simulation needs at least one deployment")
        names = [d.function.name for d in deployments]
        if len(set(names)) != len(names):
            raise ValueError(f"deployment function names must be unique, got {names}")
        if feedback not in ("off", "on"):
            raise ValueError(f"feedback must be 'off' or 'on', got {feedback!r}")
        if tenants is None:
            tagged = [d.function.name for d in deployments if d.tenant]
            if tagged:
                raise ValueError(
                    f"deployments {tagged} carry tenant tags but no tenants were configured"
                )
        self.deployments = list(deployments)
        self.seed = seed
        self._ran = False
        self.kernel = SimulationKernel()
        #: The shared bus every simulator forwards its events to.
        self.bus = EventBus()
        #: Passive observability: trace collector, telemetry sampler and
        #: kernel profiler subscribe to the shared bus/kernel here, *before*
        #: any domain subscriber exists -- observers only read, so their
        #: position in dispatch order cannot change simulation state.
        self.obs = obs
        if obs is not None:
            obs.attach(self.kernel, self.bus)
        #: The execution-feedback channel (None with feedback="off").
        self.feedback: Optional[FeedbackChannel] = (
            FeedbackChannel().attach(self.bus) if feedback == "on" else None
        )
        #: The client retry loop (None without a retry policy).  Its backoff
        #: stream seed derives from the run seed, so retry timing replays
        #: byte-identically from the same seed.
        self.retry: Optional[RetryLoop] = (
            RetryLoop(retry, seed=derive_seed(seed, "retry")).attach(self.bus)
            if retry is not None
            else None
        )
        self.fleet = Fleet(fleet_config).attach(self.bus)
        if self.fleet.config.sample_interval_s is not None:
            self.kernel.add_process(self.fleet)
        self.meter: Optional[CostMeter] = (
            CostMeter(billing_platform, price_class_multipliers=price_class_multipliers)
            if billing_platform is not None
            else None
        )
        if self.meter is not None:
            # The fleet samples the live invoice next to its own host spend;
            # with zone-aware pricing the meter reads each sandbox's price
            # class back from the fleet's placements.
            self.fleet.attach_meter(self.meter)
            if price_class_multipliers is not None:
                self.meter.attach_fleet(self.fleet)
            if self.feedback is not None:
                # Closed loop: a queued sandbox is not on a host until the
                # fleet admits it, so instance-billed lifespans start at
                # admission rather than at the cold-start request.
                self.meter.attach_admissions(self.bus)
        self.scheduler = scheduler
        if scheduler is not None:
            scheduler.attach(self.kernel, feedback=self.feedback)
        #: The multi-tenant admission controller (None without tenants).
        self.admission: Optional[AdmissionController] = None
        self._tenant_of: Dict[str, str] = {}
        if tenants is not None:
            self.admission = AdmissionController(tenants).attach(self.kernel)
            self._tenant_of = self._assign_tenants()
        self.simulators: Dict[str, PlatformSimulator] = {}
        for deployment in self.deployments:
            name = deployment.function.name
            tenant = self._tenant_of.get(name, "")
            simulator = PlatformSimulator(
                deployment.platform,
                deployment.function,
                seed=derive_seed(seed, "cluster", name),
                bus=self.bus,
                kernel=self.kernel,
                name=name,
                feedback=self.feedback,
                retry=self.retry,
                # Request-level span markers are only worth publishing when a
                # collector is listening on the shared bus.
                emit_spans=obs is not None,
                # retain_outcomes=False drops per-request outcome objects while
                # keeping every incremental aggregate summary() reads -- the
                # bounded-memory mode million-request benchmark runs use.
                retain_outcomes=retain_outcomes,
                tenant=tenant,
                admission=self.admission,
            )
            if self.retry is not None:
                self.retry.register(name, simulator)
            if self.meter is not None:
                # Per-function attachment: the meter needs each deployment's
                # allocation/usage context, which the shared bus does not carry.
                self.meter.attach(simulator.bus, deployment.resources())
            if self.admission is not None:
                self.admission.register(name, tenant, simulator)
                # SLO attainment is judged in the metrics layer at record
                # time, against the owning tenant's latency target.
                simulator.metrics.slo_latency_s = self.admission.config(tenant).slo_latency_s
            self.simulators[name] = simulator
        if self.admission is not None and self.feedback is not None:
            # Per-tenant backpressure signals: the feedback channel can then
            # aggregate fleet admission-queue depth over each tenant's own
            # sandbox namespaces.
            self.feedback.set_tenant_prefixes(
                {
                    tenant: tuple(
                        f"{owner}/" for owner, t in self._tenant_of.items() if t == tenant
                    )
                    for tenant in self.admission.tenant_names
                }
            )
        if obs is not None:
            self._register_gauges(obs)

    def _assign_tenants(self) -> Dict[str, str]:
        """Map each deployment to its tenant: explicit tags win, the rest round-robin."""
        assert self.admission is not None
        tenant_names = self.admission.tenant_names
        assignment: Dict[str, str] = {}
        cursor = 0
        for deployment in self.deployments:
            if deployment.tenant:
                if deployment.tenant not in tenant_names:
                    raise ValueError(
                        f"deployment {deployment.function.name!r} is tagged with unknown "
                        f"tenant {deployment.tenant!r} (have {tenant_names})"
                    )
                assignment[deployment.function.name] = deployment.tenant
            else:
                assignment[deployment.function.name] = tenant_names[cursor % len(tenant_names)]
                cursor += 1
        return assignment

    def _register_gauges(self, obs: Observability) -> None:
        """Wire every layer's live state into the telemetry registry.

        All gauges are pure reads of state the layers maintain anyway;
        sampling them on the telemetry grid cannot perturb the simulation.
        """
        self.fleet.register_metrics(obs.registry)
        if self.meter is not None:
            self.meter.register_metrics(obs.registry)
        if self.scheduler is not None:
            self.scheduler.register_metrics(obs.registry)
        if self.retry is not None:
            self.retry.register_metrics(obs.registry)
            # Retry backlog: re-injections scheduled but not yet re-arrived
            # (or censored past the horizon).
            obs.registry.gauge(
                "retry_backlog",
                fn=lambda: float(self.retry.retries_scheduled)
                - float(sum(s.metrics.retry_arrivals for s in self.simulators.values())),
            )
        obs.registry.gauge(
            "in_flight_requests",
            fn=lambda: float(
                sum(s.in_flight_request_count for s in self.simulators.values())
            ),
        )
        obs.registry.gauge(
            "pending_requests",
            fn=lambda: float(
                sum(s.pending_request_count for s in self.simulators.values())
            ),
        )

    def _arrivals(self, deployment: FunctionDeployment) -> ArrivalSource:
        """The deployment's traffic as a chunked arrival source.

        Sources are *streamed* into the shared kernel (vectorized generation,
        bounded heap memory) and byte-identical to the materialized lists the
        simulator previously scheduled eagerly: a Poisson source consumes the
        same seed-derived RNG stream as
        :func:`repro.workloads.traffic.poisson_arrivals`.
        """
        if deployment.arrival_process == "poisson":
            return PoissonSource(
                deployment.rps,
                deployment.duration_s,
                seed=derive_seed(self.seed, "cluster", deployment.function.name, "arrivals"),
            )
        return ConstantRateSource(deployment.rps, deployment.duration_s)

    def run(self, horizon_s: Optional[float] = None) -> ClusterResult:
        """Schedule every deployment's traffic and run the shared kernel once."""
        if self._ran:
            # Re-scheduling arrivals into the already-advanced kernel would
            # silently double every metric; make the misuse loud instead.
            raise RuntimeError("ClusterSimulator.run() can only be called once per instance")
        self._ran = True
        horizon = 0.0
        for deployment in self.deployments:
            simulator = self.simulators[deployment.function.name]
            horizon = max(horizon, simulator.schedule_arrivals(self._arrivals(deployment)))
        if self.scheduler is not None:
            horizon = max(horizon, self.scheduler.config.horizon_s)
        if horizon_s is not None:
            horizon = horizon_s
        self.kernel.run(until=horizon + _EPS)
        for simulator in self.simulators.values():
            simulator.metrics.pending_requests = simulator.pending_request_count
        if self.meter is not None:
            self.meter.finalize(horizon)
        if self.obs is not None:
            self.obs.finalize(horizon)
        return ClusterResult(
            horizon_s=horizon,
            metrics={name: sim.metrics for name, sim in self.simulators.items()},
            fleet=self.fleet,
            meter=self.meter,
            scheduler=self.scheduler.finalize() if self.scheduler is not None else None,
            retry=self.retry,
            obs=self.obs,
            tenancy=self._build_tenancy_report() if self.admission is not None else None,
        )

    def _build_tenancy_report(self) -> TenancyReport:
        """Fold per-simulator metrics, controller counters and the invoice by tenant.

        Called at the run horizon (pending counts are snapshotted, the meter
        finalized), so each tenant's report closes the conservation law:
        ``arrivals == completed + failed + denied + pending + in-flight``.
        """
        admission = self.admission
        assert admission is not None
        by_tenant_cost = self.meter.cost_usd_by_tenant if self.meter is not None else {}
        reports = []
        for tenant in admission.tenant_names:
            config = admission.config(tenant)
            owners = [owner for owner, t in self._tenant_of.items() if t == tenant]
            arrivals = completed = failed = denied = pending = in_flight = attained = 0
            for owner in owners:
                simulator = self.simulators[owner]
                m = simulator.metrics
                arrivals += m.arrivals
                completed += m.num_requests
                failed += m.failed_requests
                denied += m.denied_requests
                pending += simulator.pending_request_count
                in_flight += simulator.in_flight_request_count
                # Without a latency target every completion attains trivially.
                attained += m.slo_attained if config.slo_latency_s is not None else m.num_requests
            reports.append(
                TenantReport(
                    name=tenant,
                    functions=len(owners),
                    arrivals=arrivals,
                    completed=completed,
                    failed=failed,
                    denied=denied,
                    pending=pending,
                    in_flight=in_flight,
                    slo_target_s=config.slo_latency_s,
                    slo_attained=attained,
                    billed_usd=by_tenant_cost.get(tenant, 0.0),
                    credits_spent=admission.credits_spent[tenant],
                    weight=config.weight,
                )
            )
        return TenancyReport(tenants=reports)
