"""Provider-side placement and deployment-density simulator (paper §2.2 and §3.3).

The paper explains two provider-side mechanisms that shape user-facing billing:

- constraints on CPU:memory control knobs exist because "highly unbalanced
  CPU-to-memory combinations can fragment the resource capacity on host
  servers, potentially leading to higher deployment costs; e.g., through
  decreased deployment density" (§2.2), and
- keep-alive policies determine how much idle capacity sandboxes pin on hosts,
  which also affects density and therefore per-unit prices (§3.3).

This package provides a host/bin-packing substrate to quantify those effects:
place a population of sandboxes (drawn from a trace or synthetic flavors) onto
hosts under different placement policies and knob constraints, and measure the
number of hosts needed, the stranded (fragmented) capacity, and the density
loss caused by keep-alive residency.
"""

from repro.cluster.host import Host, HostSpec
from repro.cluster.placement import (
    PlacementPolicy,
    PlacementResult,
    SandboxRequirement,
    choose_host,
    place_sandboxes,
)
from repro.cluster.density import (
    DensityReport,
    deployment_density_study,
    keepalive_density_impact,
)
from repro.cluster.fleet import Fleet, FleetConfig
from repro.cluster.cosim import ClusterResult, ClusterSimulator, FunctionDeployment

__all__ = [
    "Host",
    "HostSpec",
    "PlacementPolicy",
    "PlacementResult",
    "SandboxRequirement",
    "choose_host",
    "place_sandboxes",
    "DensityReport",
    "deployment_density_study",
    "keepalive_density_impact",
    "Fleet",
    "FleetConfig",
    "ClusterResult",
    "ClusterSimulator",
    "FunctionDeployment",
]
