"""Deployment-density studies: why providers constrain control knobs (paper §2.2, §3.3).

Two studies:

- :func:`deployment_density_study` places the same sandbox population under
  different CPU:memory coupling rules (free-form, ratio-constrained, or
  proportional) and reports how many hosts each needs -- quantifying the
  fragmentation argument the paper gives for constrained control knobs.
- :func:`keepalive_density_impact` compares how much host capacity idle
  (kept-alive) sandboxes pin under the Table 2 resource behaviours, connecting
  keep-alive policy to provider cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.host import HostSpec
from repro.cluster.placement import PlacementPolicy, PlacementResult, SandboxRequirement, place_sandboxes
from repro.platform.keepalive import KeepAlivePolicy

__all__ = ["DensityReport", "deployment_density_study", "keepalive_density_impact"]


@dataclass(frozen=True)
class DensityReport:
    """Host count and utilisation for one control-knob regime."""

    regime: str
    num_hosts: int
    deployment_density: float
    mean_cpu_utilization: float
    mean_memory_utilization: float
    stranded_vcpus: float
    stranded_memory_gb: float

    @classmethod
    def from_result(cls, regime: str, result: PlacementResult) -> "DensityReport":
        summary = result.summary()
        return cls(
            regime=regime,
            num_hosts=summary["num_hosts"],
            deployment_density=summary["deployment_density"],
            mean_cpu_utilization=summary["mean_cpu_utilization"],
            mean_memory_utilization=summary["mean_memory_utilization"],
            stranded_vcpus=summary["stranded_vcpus"],
            stranded_memory_gb=summary["stranded_memory_gb"],
        )

    def as_row(self) -> Dict[str, float]:
        return {
            "regime": self.regime,  # type: ignore[dict-item]
            "num_hosts": float(self.num_hosts),
            "deployment_density": self.deployment_density,
            "mean_cpu_utilization": self.mean_cpu_utilization,
            "mean_memory_utilization": self.mean_memory_utilization,
            "stranded_vcpus": self.stranded_vcpus,
            "stranded_memory_gb": self.stranded_memory_gb,
        }


def _synthetic_population(num_sandboxes: int, seed: int, unbalanced: bool) -> List[SandboxRequirement]:
    """A sandbox population; ``unbalanced`` draws extreme CPU:memory ratios."""
    rng = np.random.default_rng(seed)
    requirements: List[SandboxRequirement] = []
    for index in range(num_sandboxes):
        if unbalanced:
            # Users free to pick any combination: many memory-heavy or CPU-heavy shapes.
            vcpus = float(rng.choice([0.1, 0.25, 0.5, 1.0, 2.0, 4.0]))
            memory = float(rng.choice([0.25, 0.5, 1.0, 4.0, 16.0, 32.0]))
        else:
            vcpus = float(rng.choice([0.25, 0.5, 1.0, 2.0]))
            memory = vcpus * 4.0  # matches the host's own 1:4 ratio
        requirements.append(SandboxRequirement(f"sb-{index}", vcpus, memory))
    return requirements


def _constrain(requirements: Sequence[SandboxRequirement], regime: str) -> List[SandboxRequirement]:
    """Apply a control-knob regime to a free-form population."""
    constrained: List[SandboxRequirement] = []
    for requirement in requirements:
        vcpus, memory = requirement.vcpus, requirement.memory_gb
        if regime == "free_form":
            pass
        elif regime == "ratio_1_to_4":
            # Alibaba-style: memory per vCPU must stay between 1 and 4 GB.
            min_memory, max_memory = vcpus * 1.0, vcpus * 4.0
            memory = min(max(memory, min_memory), max_memory)
            if memory > max_memory:
                vcpus = memory / 4.0
        elif regime == "proportional":
            # AWS-style: one knob; CPU follows memory at 1,769 MB per vCPU.
            memory = max(memory, vcpus * (1769.0 / 1024.0))
            vcpus = memory / (1769.0 / 1024.0)
        else:
            raise ValueError(f"unknown regime {regime!r}")
        constrained.append(SandboxRequirement(requirement.sandbox_id, vcpus, memory))
    return constrained


def deployment_density_study(
    num_sandboxes: int = 2_000,
    seed: int = 0,
    host_spec: Optional[HostSpec] = None,
    policy: PlacementPolicy = PlacementPolicy.BEST_FIT,
) -> List[DensityReport]:
    """Place the same population under three control-knob regimes and compare host counts.

    The free-form population contains unbalanced CPU:memory shapes; the
    constrained regimes trim them toward balanced ratios, which reduces
    stranded capacity and the number of hosts needed -- the provider-side
    justification the paper gives for constrained knobs (§2.2).
    """
    population = _synthetic_population(num_sandboxes, seed, unbalanced=True)
    reports: List[DensityReport] = []
    for regime in ("free_form", "ratio_1_to_4", "proportional"):
        constrained = _constrain(population, regime)
        result = place_sandboxes(constrained, host_spec=host_spec, policy=policy)
        reports.append(DensityReport.from_result(regime, result))
    return reports


def keepalive_density_impact(
    policies: Dict[str, KeepAlivePolicy],
    num_idle_sandboxes: int = 1_000,
    alloc_vcpus: float = 1.0,
    alloc_memory_gb: float = 2.0,
    host_spec: Optional[HostSpec] = None,
) -> List[Dict[str, float]]:
    """How many hosts a fleet of *idle* (kept-alive) sandboxes pins under each Table 2 policy.

    Freeze/deallocate and code-cache policies pin nothing; CPU scale-down pins
    memory only; full allocation pins both resources.  The host count is the
    capacity the provider cannot sell while those sandboxes idle.
    """
    host_spec = host_spec or HostSpec()
    rows: List[Dict[str, float]] = []
    for label, policy in policies.items():
        idle_cpu, idle_memory = policy.idle_resources(alloc_vcpus, alloc_memory_gb)
        if idle_cpu <= 0 and idle_memory <= 0:
            rows.append(
                {
                    "policy": label,  # type: ignore[dict-item]
                    "num_hosts_pinned": 0.0,
                    "idle_vcpus_total": 0.0,
                    "idle_memory_gb_total": 0.0,
                }
            )
            continue
        requirements = [
            SandboxRequirement(f"idle-{i}", max(idle_cpu, 1e-3), max(idle_memory, 1e-3))
            for i in range(num_idle_sandboxes)
        ]
        result = place_sandboxes(requirements, host_spec=host_spec)
        rows.append(
            {
                "policy": label,  # type: ignore[dict-item]
                "num_hosts_pinned": float(result.num_hosts),
                "idle_vcpus_total": idle_cpu * num_idle_sandboxes,
                "idle_memory_gb_total": idle_memory * num_idle_sandboxes,
            }
        )
    return rows
