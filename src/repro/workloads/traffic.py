"""Traffic generators: arrival-time sequences for the platform simulator.

The paper's §3 experiments drive functions with three traffic shapes: short
bursts at a fixed request rate (Figure 6 left), steady long-running traffic
(Figure 6 right), and single probes separated by controlled idle gaps
(Figure 9's keep-alive measurement).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "constant_rate_arrivals",
    "poisson_arrivals",
    "burst_arrivals",
    "idle_gap_probe_arrivals",
]


def constant_rate_arrivals(rps: float, duration_s: float, start_s: float = 0.0) -> List[float]:
    """Evenly spaced arrivals at ``rps`` requests per second for ``duration_s``."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_s < 0:
        raise ValueError("duration_s must be >= 0")
    count = int(round(rps * duration_s))
    interval = 1.0 / rps
    return [start_s + i * interval for i in range(count)]


def poisson_arrivals(
    rps: float, duration_s: float, seed: int = 0, start_s: float = 0.0
) -> List[float]:
    """Poisson-process arrivals with mean rate ``rps`` over ``duration_s``.

    Generated in vectorized blocks through
    :class:`repro.sim.arrivals.PoissonSource`; the produced times are
    bit-identical to the scalar ``t += rng.exponential(1/rps)`` loop this
    function used to run (same RNG value stream, same float additions).
    """
    from repro.sim.arrivals import PoissonSource

    return PoissonSource(rps, duration_s, seed=seed, start_s=start_s).times()


def burst_arrivals(
    rps: float,
    burst_duration_s: float = 120.0,
    seed: Optional[int] = None,
    start_s: float = 0.0,
) -> List[float]:
    """A short traffic spike: the Figure 6 (left) workload (default 2 minutes)."""
    if seed is None:
        return constant_rate_arrivals(rps, burst_duration_s, start_s=start_s)
    return poisson_arrivals(rps, burst_duration_s, seed=seed, start_s=start_s)


def idle_gap_probe_arrivals(idle_gaps_s: List[float], start_s: float = 0.0) -> List[float]:
    """Single probes separated by the given idle gaps (Figure 9's methodology).

    The idle gap is measured from the *end* of the previous invocation to the
    next arrival; callers should add the expected execution duration to the
    gaps if exact end-to-start spacing matters (the keep-alive analysis module
    does this).
    """
    arrivals: List[float] = []
    t = start_s
    for gap in idle_gaps_s:
        if gap < 0:
            raise ValueError("idle gaps must be >= 0")
        arrivals.append(t)
        t += gap
    return arrivals
