"""Workload specifications: the functions deployed in the paper's experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.platform.config import FunctionConfig

__all__ = [
    "WorkloadSpec",
    "MINIMAL_FUNCTION",
    "PYAES_FUNCTION",
    "VIDEO_PROCESSING_FUNCTION",
    "WORKLOAD_CATALOG",
    "get_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload with its per-request resource footprint.

    Attributes:
        name: workload identifier.
        cpu_time_s: CPU time one request needs at a full 1 vCPU allocation.
        io_time_s: wall-clock time spent blocked (remote calls, storage).
        used_memory_gb: average resident memory during a request.
        description: provenance of the workload and what it models.
        decomposable_chunks: number of roughly equal compute chunks the
            workload can be split into (for the §4.3 intermittent-execution
            exploit); 1 means it cannot be decomposed.
    """

    name: str
    cpu_time_s: float
    io_time_s: float = 0.0
    used_memory_gb: float = 0.05
    description: str = ""
    decomposable_chunks: int = 1

    def __post_init__(self) -> None:
        if self.cpu_time_s < 0 or self.io_time_s < 0:
            raise ValueError("times must be >= 0")
        if self.used_memory_gb < 0:
            raise ValueError("used_memory_gb must be >= 0")
        if self.decomposable_chunks < 1:
            raise ValueError("decomposable_chunks must be >= 1")

    def to_function_config(
        self,
        alloc_vcpus: float,
        alloc_memory_gb: float,
        init_duration_s: float = 1.0,
    ) -> FunctionConfig:
        """Deploy this workload as a function with the given resource allocation."""
        return FunctionConfig(
            name=self.name,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            cpu_time_s=self.cpu_time_s,
            io_time_s=self.io_time_s,
            used_memory_gb=self.used_memory_gb,
            init_duration_s=init_duration_s,
        )

    def chunk_cpu_times(self) -> List[float]:
        """CPU time of each chunk when the workload is decomposed (§4.3 exploit)."""
        chunk = self.cpu_time_s / self.decomposable_chunks
        return [chunk] * self.decomposable_chunks


#: A minimal function that returns an empty response: the §3.2 overhead probe.
MINIMAL_FUNCTION = WorkloadSpec(
    name="minimal",
    cpu_time_s=5.0e-5,
    io_time_s=0.0,
    used_memory_gb=0.03,
    description="Minimal echo function used to measure serving-architecture overhead (Figure 8).",
)

#: PyAES from FunctionBench: single-threaded, compute-bound AES encryption,
#: ~160 ms of CPU time per request at 1 vCPU (§3.1 and §4.1).
PYAES_FUNCTION = WorkloadSpec(
    name="pyaes",
    cpu_time_s=0.160,
    io_time_s=0.0,
    used_memory_gb=0.09,
    description="FunctionBench PyAES: compute-bound AES-CTR encryption of a text block.",
)

#: A short PyAES variant (~16 ms) matching the CPU footprint of the Figure 10
#: overallocation sweep, where quantization jumps appear at ~1400 MB x 1/n.
PYAES_SHORT_FUNCTION = WorkloadSpec(
    name="pyaes_short",
    cpu_time_s=0.016,
    io_time_s=0.0,
    used_memory_gb=0.09,
    description="Short PyAES configuration used for the fractional-allocation sweep (Figure 10).",
)

#: SeBS video-processing: a long, decomposable pipeline (download, transcode
#: chunks, upload) used by the §4.3 intermittent-execution exploit.
VIDEO_PROCESSING_FUNCTION = WorkloadSpec(
    name="video_processing",
    cpu_time_s=2.4,
    io_time_s=0.3,
    used_memory_gb=0.35,
    description="SeBS-like video processing: a long compute pipeline decomposable into short bursts.",
    decomposable_chunks=160,
)

#: An IO-heavy workload (blocking on remote APIs) for utilisation studies.
IO_BOUND_FUNCTION = WorkloadSpec(
    name="io_bound",
    cpu_time_s=0.008,
    io_time_s=0.220,
    used_memory_gb=0.06,
    description="IO-dominated function: short bursts of CPU between remote-call waits.",
)

WORKLOAD_CATALOG: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        MINIMAL_FUNCTION,
        PYAES_FUNCTION,
        PYAES_SHORT_FUNCTION,
        VIDEO_PROCESSING_FUNCTION,
        IO_BOUND_FUNCTION,
    )
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by name."""
    try:
        return WORKLOAD_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; valid: {sorted(WORKLOAD_CATALOG)}") from None
