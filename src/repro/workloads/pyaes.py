"""A pure-Python AES-CTR workload equivalent to FunctionBench's PyAES.

The paper's compute-bound benchmark function encrypts a block of text with a
pure-Python AES implementation.  This module provides the same kind of
single-threaded, CPU-bound kernel so that examples can execute real work (and
so the simulator's CPU-time footprints can be calibrated against a real
measurement on the host running the reproduction).
"""

from __future__ import annotations

import time
from typing import List, Sequence

__all__ = ["aes_ctr_keystream", "pyaes_workload", "measure_pyaes_cpu_seconds"]

# AES S-box (FIPS-197).
_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _expand_key(key: Sequence[int]) -> List[List[int]]:
    """AES-128 key expansion into 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[i : i + 4], []) for i in range(0, 44, 4)]


def _encrypt_block(block: Sequence[int], round_keys: List[List[int]]) -> List[int]:
    """Encrypt one 16-byte block with AES-128."""
    state = [b ^ k for b, k in zip(block, round_keys[0])]
    for round_index in range(1, 10):
        state = [_SBOX[b] for b in state]
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = [b ^ k for b, k in zip(state, round_keys[round_index])]
    state = [_SBOX[b] for b in state]
    state = _shift_rows(state)
    state = [b ^ k for b, k in zip(state, round_keys[10])]
    return state


def _shift_rows(state: Sequence[int]) -> List[int]:
    out = list(state)
    for row in range(1, 4):
        rotated = [state[row + 4 * ((col + row) % 4)] for col in range(4)]
        for col in range(4):
            out[row + 4 * col] = rotated[col]
    return out


def _mix_columns(state: Sequence[int]) -> List[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3])
        out[4 * col + 3] = (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3])
    return out


def aes_ctr_keystream(key: bytes, nonce: int, num_blocks: int) -> bytes:
    """Generate ``num_blocks`` 16-byte AES-CTR keystream blocks (the PyAES hot loop)."""
    if num_blocks < 0:
        raise ValueError("num_blocks must be >= 0")
    round_keys = _expand_key(list(key))
    stream = bytearray()
    for counter in range(num_blocks):
        block_input = list(((nonce + counter) & ((1 << 128) - 1)).to_bytes(16, "big"))
        stream.extend(_encrypt_block(block_input, round_keys))
    return bytes(stream)


def pyaes_workload(message: bytes, key: bytes = b"reproserverless!", nonce: int = 1) -> bytes:
    """Encrypt ``message`` with AES-CTR: the FunctionBench PyAES equivalent."""
    num_blocks = (len(message) + 15) // 16
    keystream = aes_ctr_keystream(key, nonce, num_blocks)
    return bytes(m ^ k for m, k in zip(message, keystream[: len(message)]))


def measure_pyaes_cpu_seconds(message_size_bytes: int = 4096, repetitions: int = 3) -> float:
    """Measure the host CPU time of one PyAES request (used to calibrate simulations).

    For very small messages a single run can be below the process-time clock
    resolution, so each measurement loops the workload until at least ~2 ms of
    CPU time has accumulated and reports the per-run average.
    """
    if message_size_bytes <= 0 or repetitions <= 0:
        raise ValueError("message_size_bytes and repetitions must be positive")
    message = bytes(range(256)) * (message_size_bytes // 256 + 1)
    message = message[:message_size_bytes]
    best = float("inf")
    for _ in range(repetitions):
        runs = 0
        start = time.process_time()
        while True:
            pyaes_workload(message)
            runs += 1
            elapsed = time.process_time() - start
            if elapsed >= 0.002 or runs >= 1000:
                break
        best = min(best, elapsed / runs)
    return best
