"""Synthetic function workloads and traffic generators used by the experiments.

The paper's measurements use FunctionBench's PyAES (compute-bound), a minimal
echo function (serving-overhead probe), and SeBS's video-processing application
(a long function decomposed into bursts for the §4.3 exploit).  This package
provides pure-Python equivalents with the same *shape*: a calibrated CPU-time
footprint, optional IO phases, and a decomposable pipeline.
"""

from repro.workloads.functions import (
    WorkloadSpec,
    MINIMAL_FUNCTION,
    PYAES_FUNCTION,
    VIDEO_PROCESSING_FUNCTION,
    WORKLOAD_CATALOG,
    get_workload,
)
from repro.workloads.pyaes import aes_ctr_keystream, pyaes_workload, measure_pyaes_cpu_seconds
from repro.workloads.traffic import (
    burst_arrivals,
    constant_rate_arrivals,
    idle_gap_probe_arrivals,
    poisson_arrivals,
)

__all__ = [
    "WorkloadSpec",
    "MINIMAL_FUNCTION",
    "PYAES_FUNCTION",
    "VIDEO_PROCESSING_FUNCTION",
    "WORKLOAD_CATALOG",
    "get_workload",
    "aes_ctr_keystream",
    "pyaes_workload",
    "measure_pyaes_cpu_seconds",
    "burst_arrivals",
    "constant_rate_arrivals",
    "idle_gap_probe_arrivals",
    "poisson_arrivals",
]
