"""Per-invocation billing calculator: turns trace records into billable resources and invoices.

This module bridges the trace schema (§2.3's Huawei-like request records) and
the billing models of Table 1.  Its core job is to answer, for every request
and every platform: *how many vCPU-seconds and GB-seconds would this request
be billed for, and what would it cost*, under the platform's notion of billable
time, resource rounding and invocation fee.

Platform-specific allocation mapping follows the paper's methodology:

- **AWS (proportional allocation)**: the billable memory is the larger of the
  trace's memory allocation and the memory equivalent of the trace's vCPU
  allocation (1,769 MB per vCPU), because AWS couples CPU to memory and the
  workload must be given enough memory to receive its vCPU share.
- **Huawei (fixed combos)**: the trace's own flavor is billed as-is.
- **GCP (time rounding)**: allocated CPU and memory over 100 ms-rounded time.
- **Azure Consumption (time and usage rounding)**: consumed memory rounded to
  128 MB over execution time with a 100 ms minimum.
- **Cloudflare (CPU time)**: consumed CPU time only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.billing.catalog import PlatformName, get_billing_model
from repro.billing.models import BillableTime, BillingModel, Invoice
from repro.billing.pricing import VCPU_EQUIVALENT_MEMORY_GB
from repro.billing.units import ResourceKind
from repro.traces.schema import RequestRecord

__all__ = ["InvocationBillingInput", "BillingCalculator", "BilledInvocation"]


@dataclass(frozen=True)
class InvocationBillingInput:
    """Normalised inputs the billing calculator needs for one invocation."""

    execution_s: float
    init_s: float
    alloc_vcpus: float
    alloc_memory_gb: float
    used_cpu_seconds: float
    used_memory_gb: float
    instance_s: Optional[float] = None

    @classmethod
    def from_request(cls, record: RequestRecord) -> "InvocationBillingInput":
        """Build billing inputs from a trace request record."""
        return cls(
            execution_s=record.duration_s,
            init_s=record.init_duration_s,
            alloc_vcpus=record.alloc_vcpus,
            alloc_memory_gb=record.alloc_memory_gb,
            used_cpu_seconds=record.usage.cpu_seconds,
            used_memory_gb=record.usage.memory_gb,
        )


@dataclass(frozen=True)
class BilledInvocation:
    """The outcome of billing one invocation on one platform."""

    platform: str
    billable_cpu_seconds: float
    billable_memory_gb_seconds: float
    actual_cpu_seconds: float
    actual_memory_gb_seconds: float
    invoice: Invoice

    @property
    def cpu_inflation(self) -> float:
        """Billable over actual vCPU-seconds (>= 1 means over-accounting)."""
        if self.actual_cpu_seconds <= 0:
            return float("inf") if self.billable_cpu_seconds > 0 else 1.0
        return self.billable_cpu_seconds / self.actual_cpu_seconds

    @property
    def memory_inflation(self) -> float:
        """Billable over actual GB-seconds (>= 1 means over-accounting)."""
        if self.actual_memory_gb_seconds <= 0:
            return float("inf") if self.billable_memory_gb_seconds > 0 else 1.0
        return self.billable_memory_gb_seconds / self.actual_memory_gb_seconds


class BillingCalculator:
    """Computes billable resources and invoices for invocations on a platform."""

    def __init__(self, platform: "PlatformName | str | BillingModel") -> None:
        if isinstance(platform, BillingModel):
            self.model = platform
            try:
                self.platform: Optional[PlatformName] = PlatformName(platform.platform)
            except ValueError:
                self.platform = None
        else:
            self.platform = PlatformName(platform) if isinstance(platform, str) else platform
            self.model = get_billing_model(self.platform)

    # ------------------------------------------------------------------
    # Allocation mapping (paper §2.3)
    # ------------------------------------------------------------------

    def effective_allocations(self, inputs: InvocationBillingInput) -> Dict[ResourceKind, float]:
        """Map a request's resource allocation onto this platform's control knobs."""
        vcpus = inputs.alloc_vcpus
        memory_gb = inputs.alloc_memory_gb
        if self.model.cpu_embedded_in_memory and self.platform is PlatformName.AWS_LAMBDA:
            # Proportional allocation: pick the memory size large enough to grant
            # both the trace's memory and its vCPU share (the paper maps Huawei
            # flavors to AWS by taking the larger of the two).
            memory_for_cpu = vcpus * VCPU_EQUIVALENT_MEMORY_GB
            memory_gb = max(memory_gb, memory_for_cpu)
            vcpus = memory_gb / VCPU_EQUIVALENT_MEMORY_GB
        return {ResourceKind.CPU: vcpus, ResourceKind.MEMORY: memory_gb}

    def effective_usages(self, inputs: InvocationBillingInput) -> Dict[ResourceKind, float]:
        """Usage quantities in the units each usage-billed resource expects.

        Convention: CPU usage is expressed in consumed vCPU-seconds (Cloudflare
        bills that amount directly); memory usage is the average resident GB
        (Azure multiplies it by billable execution time).
        """
        return {
            ResourceKind.CPU: inputs.used_cpu_seconds,
            ResourceKind.MEMORY: inputs.used_memory_gb,
        }

    # ------------------------------------------------------------------
    # Billable resources and invoices
    # ------------------------------------------------------------------

    def billable_resources(self, inputs: InvocationBillingInput) -> Dict[ResourceKind, float]:
        """Billable vCPU-seconds / GB-seconds for one invocation on this platform.

        For memory-based-billing platforms the billable *CPU* time is reported
        as the vCPU allocation implied by the billed memory multiplied by the
        billable duration, matching the paper's treatment ("CPU pricing is
        usually embedded for platforms with memory-based billing; therefore, we
        include billable vCPU time for AWS").
        """
        allocations = self.effective_allocations(inputs)
        usages = self.effective_usages(inputs)
        billable = self.model.billable_resources(
            execution_s=inputs.execution_s,
            allocations=allocations,
            usages=usages,
            init_s=inputs.init_s,
            instance_s=inputs.instance_s,
            cpu_time_s=inputs.used_cpu_seconds,
        )
        out = dict(billable)
        if ResourceKind.CPU not in out and self.model.cpu_embedded_in_memory:
            billable_time = self.model.billable_seconds(
                execution_s=inputs.execution_s,
                init_s=inputs.init_s,
                instance_s=inputs.instance_s,
                cpu_time_s=inputs.used_cpu_seconds,
            )
            out[ResourceKind.CPU] = allocations[ResourceKind.CPU] * billable_time
        return out

    def bill(self, inputs: InvocationBillingInput, include_invocation_fee: bool = True) -> BilledInvocation:
        """Bill one invocation: billable resources plus the monetary invoice."""
        billable = self.billable_resources(inputs)
        invoice = self.model.invoice(
            execution_s=inputs.execution_s,
            allocations=self.effective_allocations(inputs),
            usages=self.effective_usages(inputs),
            init_s=inputs.init_s,
            instance_s=inputs.instance_s,
            cpu_time_s=inputs.used_cpu_seconds,
            include_invocation_fee=include_invocation_fee,
        )
        return BilledInvocation(
            platform=self.model.platform,
            billable_cpu_seconds=billable.get(ResourceKind.CPU, 0.0),
            billable_memory_gb_seconds=billable.get(ResourceKind.MEMORY, 0.0),
            actual_cpu_seconds=inputs.used_cpu_seconds,
            actual_memory_gb_seconds=inputs.used_memory_gb * inputs.execution_s,
            invoice=invoice,
        )

    def bill_request(self, record: RequestRecord, include_invocation_fee: bool = True) -> BilledInvocation:
        """Convenience wrapper billing a trace request record directly."""
        return self.bill(InvocationBillingInput.from_request(record), include_invocation_fee)

    # ------------------------------------------------------------------
    # Invocation-fee equivalence (paper Figure 5-left)
    # ------------------------------------------------------------------

    def invocation_fee_equivalent_ms(self, alloc_vcpus: float, alloc_memory_gb: float) -> float:
        """Express the invocation fee as equivalent billable wall-clock milliseconds.

        This answers: how many milliseconds of billable duration at this
        resource allocation would cost the same as one invocation fee?  The
        paper computes 96 ms for a default 128 MB AWS Lambda function.
        """
        if self.model.invocation_fee <= 0:
            return 0.0
        per_second = 0.0
        for resource in self.model.allocation_resources:
            if resource.kind is ResourceKind.CPU:
                per_second += resource.billable_amount(alloc_vcpus) * resource.unit_price
            elif resource.kind is ResourceKind.MEMORY:
                per_second += resource.billable_amount(alloc_memory_gb) * resource.unit_price
        for resource in self.model.usage_resources:
            if resource.kind is ResourceKind.CPU:
                # Usage-billed CPU: one second of billable time at full allocation
                # consumes alloc_vcpus vCPU-seconds.
                per_second += alloc_vcpus * resource.unit_price
        if per_second <= 0:
            return float("inf")
        return (self.model.invocation_fee / per_second) * 1e3
