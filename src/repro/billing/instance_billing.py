"""Request-based versus instance-based billing analysis (paper §2.1 and §2.4).

Most platforms let users switch to instance-based billing (provisioned
concurrency, minimum instances, or a scale-down delay): the provider then
charges for resource allocation over the whole instance lifespan regardless of
requests, usually without the per-invocation fee.  The paper notes this "can
further increase billable resources under bursty traffic patterns since
scale-down-to-zero is delayed or disabled and instance idle time is billed".

This module computes the break-even utilisation: the fraction of wall-clock
time a provisioned instance must spend executing requests for instance-based
billing to become cheaper than request-based billing for the same traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.billing.units import ResourceKind

__all__ = ["InstanceBillingComparison", "compare_request_vs_instance_billing", "break_even_utilization"]


@dataclass(frozen=True)
class InstanceBillingComparison:
    """Cost of serving a traffic pattern under request-based vs instance-based billing."""

    request_based_platform: str
    instance_based_platform: str
    requests_per_hour: float
    mean_execution_s: float
    request_based_cost_per_hour: float
    instance_based_cost_per_hour: float
    instance_utilization: float

    @property
    def instance_billing_cheaper(self) -> bool:
        return self.instance_based_cost_per_hour < self.request_based_cost_per_hour

    def as_row(self) -> Dict[str, float]:
        return {
            "requests_per_hour": self.requests_per_hour,
            "instance_utilization": self.instance_utilization,
            "request_based_cost_per_hour": self.request_based_cost_per_hour,
            "instance_based_cost_per_hour": self.instance_based_cost_per_hour,
            "instance_billing_cheaper": float(self.instance_billing_cheaper),
        }


def compare_request_vs_instance_billing(
    requests_per_hour: float,
    mean_execution_s: float,
    alloc_vcpus: float,
    alloc_memory_gb: float,
    used_cpu_seconds: Optional[float] = None,
    used_memory_gb: Optional[float] = None,
    num_instances: int = 1,
    request_platform: "PlatformName | str" = PlatformName.GCP_RUN_REQUEST,
    instance_platform: "PlatformName | str" = PlatformName.GCP_RUN_INSTANCE,
) -> InstanceBillingComparison:
    """Cost per hour of one always-on instance versus per-request billing for the same traffic."""
    if requests_per_hour < 0 or mean_execution_s < 0:
        raise ValueError("traffic parameters must be >= 0")
    if num_instances < 1:
        raise ValueError("num_instances must be >= 1")
    used_cpu_seconds = used_cpu_seconds if used_cpu_seconds is not None else mean_execution_s * alloc_vcpus * 0.5
    used_memory_gb = used_memory_gb if used_memory_gb is not None else alloc_memory_gb * 0.5

    request_calc = BillingCalculator(request_platform)
    per_request = request_calc.bill(
        InvocationBillingInput(
            execution_s=mean_execution_s,
            init_s=0.0,
            alloc_vcpus=alloc_vcpus,
            alloc_memory_gb=alloc_memory_gb,
            used_cpu_seconds=used_cpu_seconds,
            used_memory_gb=used_memory_gb,
        )
    ).invoice.total
    request_cost_per_hour = per_request * requests_per_hour

    instance_calc = BillingCalculator(instance_platform)
    instance_invoice = instance_calc.model.invoice(
        execution_s=0.0,
        allocations={ResourceKind.CPU: alloc_vcpus, ResourceKind.MEMORY: alloc_memory_gb},
        usages={},
        instance_s=3600.0,
        include_invocation_fee=False,
    )
    instance_cost_per_hour = instance_invoice.total * num_instances

    busy_seconds = requests_per_hour * mean_execution_s
    utilization = min(busy_seconds / (3600.0 * num_instances), 1.0)
    return InstanceBillingComparison(
        request_based_platform=request_calc.model.platform,
        instance_based_platform=instance_calc.model.platform,
        requests_per_hour=requests_per_hour,
        mean_execution_s=mean_execution_s,
        request_based_cost_per_hour=request_cost_per_hour,
        instance_based_cost_per_hour=instance_cost_per_hour,
        instance_utilization=utilization,
    )


def break_even_utilization(
    mean_execution_s: float,
    alloc_vcpus: float,
    alloc_memory_gb: float,
    request_platform: "PlatformName | str" = PlatformName.GCP_RUN_REQUEST,
    instance_platform: "PlatformName | str" = PlatformName.GCP_RUN_INSTANCE,
    tolerance: float = 1e-4,
) -> float:
    """The instance utilisation above which instance-based billing becomes cheaper.

    Found by bisection over the request rate; returns a value in (0, 1], or
    ``inf`` when instance billing never wins (e.g. because the request-based
    unit prices are lower and there is no fee to amortise).
    """
    if mean_execution_s <= 0:
        raise ValueError("mean_execution_s must be positive")

    def cheaper_at(requests_per_hour: float) -> bool:
        comparison = compare_request_vs_instance_billing(
            requests_per_hour,
            mean_execution_s,
            alloc_vcpus,
            alloc_memory_gb,
            request_platform=request_platform,
            instance_platform=instance_platform,
        )
        return comparison.instance_billing_cheaper

    max_rate = 3600.0 / mean_execution_s  # rate at which one instance is 100% utilised
    if not cheaper_at(max_rate):
        return float("inf")
    low, high = 0.0, max_rate
    while high - low > tolerance * max_rate:
        middle = (low + high) / 2.0
        if cheaper_at(middle):
            high = middle
        else:
            low = middle
    return min(high * mean_execution_s / 3600.0, 1.0)
