"""Units, resource kinds, and rounding helpers shared across billing models."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = [
    "GB",
    "MB",
    "MILLISECONDS",
    "ResourceKind",
    "Resource",
    "round_up",
    "apply_minimum",
]

#: One gigabyte expressed in GB (the canonical memory unit used throughout).
GB: float = 1.0
#: One megabyte expressed in GB.
MB: float = 1.0 / 1024.0
#: One millisecond expressed in seconds (the canonical time unit).
MILLISECONDS: float = 1.0e-3


class ResourceKind(str, enum.Enum):
    """Billable computing resources the paper's §2 analysis covers."""

    CPU = "cpu"
    MEMORY = "memory"
    STORAGE = "storage"
    NETWORK = "network"


@dataclass(frozen=True)
class Resource:
    """An amount of a billable resource.

    The unit convention is: CPU in vCPUs, memory and storage in GB, network in GB.
    """

    kind: ResourceKind
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError(f"resource amount must be >= 0, got {self.amount}")


def round_up(value: float, granularity: float) -> float:
    """Round ``value`` up to the next multiple of ``granularity``.

    A zero or negative granularity means "no rounding" and returns the value
    unchanged.  This is the :math:`\\lceil x / G \\rceil \\times G` operation in
    the paper's Equation (1).

    Floating-point note: values that are already within one part in 10^9 of a
    multiple are treated as exact, so ``round_up(0.3, 0.1) == 0.3`` rather than
    0.4 despite binary representation error.
    """
    if granularity is None or granularity <= 0:
        return value
    if value <= 0:
        return 0.0
    units = value / granularity
    if not math.isfinite(units):
        # A denormally small granularity cannot be represented; treat as unrounded.
        return value
    nearest = round(units)
    if abs(units - nearest) < 1e-9:
        return nearest * granularity
    return math.ceil(units) * granularity


def apply_minimum(value: float, minimum: float) -> float:
    """Apply a minimum billing cutoff: bill at least ``minimum`` whenever value is positive."""
    if minimum is None or minimum <= 0:
        return value
    if value <= 0:
        return 0.0
    return max(value, minimum)
