"""Per-platform billing models: the paper's Table 1 encoded as data.

Each entry instantiates :class:`repro.billing.models.BillingModel` with the
billable-time notion, billable resources, granularities, minimum cutoffs and
invocation fee the paper reports for that platform (snapshot of 2025-05-15).
Per-unit prices come from :mod:`repro.billing.pricing` and are attached to the
resource definitions here so that an invoice can be produced directly from a
catalog entry.

Unit conventions throughout: CPU in vCPUs, memory in GB, time in seconds.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping

from repro.billing.models import (
    AllocationBilledResource,
    BillableTime,
    BillingModel,
    UsageBilledResource,
)
from repro.billing.units import MB, MILLISECONDS, ResourceKind

__all__ = ["PlatformName", "PLATFORM_BILLING_MODELS", "get_billing_model", "list_platforms"]


class PlatformName(str, enum.Enum):
    """Platforms analysed in the paper's Table 1."""

    AWS_LAMBDA = "aws_lambda"
    GCP_RUN_REQUEST = "gcp_run_request"
    GCP_RUN_INSTANCE = "gcp_run_instance"
    AZURE_CONSUMPTION = "azure_consumption"
    AZURE_PREMIUM = "azure_premium"
    AZURE_FLEX = "azure_flex"
    IBM_CODE_ENGINE = "ibm_code_engine"
    HUAWEI_FUNCTIONGRAPH = "huawei_functiongraph"
    ALIBABA_FC = "alibaba_fc"
    ORACLE_FUNCTIONS = "oracle_functions"
    VERCEL_FUNCTIONS = "vercel_functions"
    CLOUDFLARE_WORKERS = "cloudflare_workers"


# ----------------------------------------------------------------------
# Per-unit prices (USD), public list prices as of the paper's 2025-05-15
# snapshot.  Where the paper quotes a specific composite number we match it:
# e.g. GCP gen1 with 1 vCPU + 1769 MB costs $2.8319e-5 / s and AWS Lambda with
# 1769 MB costs $2.8792e-5 / s (x86 figures used in §2.2).
# ----------------------------------------------------------------------

AWS_LAMBDA_MEMORY_PRICE = 1.66667e-5  # $ per GB-second (CPU embedded)
AWS_LAMBDA_INVOCATION_FEE = 2.0e-7

GCP_CPU_PRICE = 2.4e-5  # $ per vCPU-second (request-based, gen1)
GCP_MEMORY_PRICE = 2.5e-6  # $ per GB-second
GCP_INVOCATION_FEE = 4.0e-7
GCP_INSTANCE_CPU_PRICE = 1.8e-5  # $ per vCPU-second (instance-based tier)
GCP_INSTANCE_MEMORY_PRICE = 2.0e-6

AZURE_CONSUMPTION_MEMORY_PRICE = 1.6e-5  # $ per GB-second of observed memory
AZURE_CONSUMPTION_INVOCATION_FEE = 2.0e-7
AZURE_FLEX_MEMORY_PRICE = 1.6e-5
AZURE_FLEX_INVOCATION_FEE = 4.0e-7
AZURE_PREMIUM_CPU_PRICE = 1.22e-5  # $ per vCPU-second, billed on instance lifespan
AZURE_PREMIUM_MEMORY_PRICE = 8.7e-7

IBM_CPU_PRICE = 3.431e-5  # $ per vCPU-second
IBM_MEMORY_PRICE = 3.56e-6  # $ per GB-second (CPU/mem ratio 9.64, §2.2)
IBM_INVOCATION_FEE = 0.0

HUAWEI_MEMORY_PRICE = 1.825e-5  # $ per GB-second (fixed CPU-memory combos)
HUAWEI_INVOCATION_FEE = 2.0e-7

ALIBABA_CPU_PRICE = 1.27e-5  # $ per vCPU-second
ALIBABA_MEMORY_PRICE = 1.32e-6  # $ per GB-second
ALIBABA_INVOCATION_FEE = 1.5e-7

ORACLE_MEMORY_PRICE = 1.417e-5  # $ per GB-second
ORACLE_INVOCATION_FEE = 2.0e-7

VERCEL_MEMORY_PRICE = 1.8e-5  # $ per GB-second
VERCEL_INVOCATION_FEE = 6.0e-7

CLOUDFLARE_CPU_PRICE = 2.0e-5  # $ per consumed vCPU-second ($0.02 per million CPU-ms)
CLOUDFLARE_INVOCATION_FEE = 3.0e-7


def _build_catalog() -> Dict[PlatformName, BillingModel]:
    catalog: Dict[PlatformName, BillingModel] = {}

    catalog[PlatformName.AWS_LAMBDA] = BillingModel(
        platform=PlatformName.AWS_LAMBDA.value,
        billable_time=BillableTime.TURNAROUND,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=1 * MB,
                unit_price=AWS_LAMBDA_MEMORY_PRICE,
            ),
        ),
        invocation_fee=AWS_LAMBDA_INVOCATION_FEE,
        cpu_embedded_in_memory=True,
        notes=(
            "Bills allocated memory in 1 MB steps over wall-clock turnaround time "
            "(initialisation included since August 2025); vCPUs are allocated "
            "proportionally to memory (1769 MB == 1 vCPU) and their cost is embedded "
            "in the memory price."
        ),
    )

    catalog[PlatformName.GCP_RUN_REQUEST] = BillingModel(
        platform=PlatformName.GCP_RUN_REQUEST.value,
        billable_time=BillableTime.TURNAROUND,
        time_granularity_s=100 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.CPU,
                granularity=0.01,
                unit_price=GCP_CPU_PRICE,
            ),
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=1 * MB,
                unit_price=GCP_MEMORY_PRICE,
            ),
        ),
        invocation_fee=GCP_INVOCATION_FEE,
        notes=(
            "Request-based billing: allocated CPU (0.01 vCPU steps, gen1) and memory "
            "over wall-clock turnaround time rounded up to 100 ms."
        ),
    )

    catalog[PlatformName.GCP_RUN_INSTANCE] = BillingModel(
        platform=PlatformName.GCP_RUN_INSTANCE.value,
        billable_time=BillableTime.INSTANCE,
        time_granularity_s=100 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.CPU,
                granularity=1.0,
                unit_price=GCP_INSTANCE_CPU_PRICE,
            ),
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=1 * MB,
                unit_price=GCP_INSTANCE_MEMORY_PRICE,
            ),
        ),
        invocation_fee=0.0,
        notes=(
            "Instance-based billing: allocated CPU (whole vCPUs) and memory over the "
            "instance lifespan regardless of requests; no invocation fee."
        ),
    )

    catalog[PlatformName.AZURE_CONSUMPTION] = BillingModel(
        platform=PlatformName.AZURE_CONSUMPTION.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        minimum_time_s=100 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=128 * MB,
                unit_price=AZURE_CONSUMPTION_MEMORY_PRICE,
                use_consumption=True,
            ),
        ),
        invocation_fee=AZURE_CONSUMPTION_INVOCATION_FEE,
        notes=(
            "Bills observed (consumed) memory rounded up to 128 MB over wall-clock "
            "execution time at 1 ms granularity with a 100 ms minimum; fixed 1.5 GB / "
            "1 vCPU instance size."
        ),
    )

    catalog[PlatformName.AZURE_PREMIUM] = BillingModel(
        platform=PlatformName.AZURE_PREMIUM.value,
        billable_time=BillableTime.INSTANCE,
        time_granularity_s=0.0,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.CPU,
                granularity=1.0,
                unit_price=AZURE_PREMIUM_CPU_PRICE,
            ),
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=0.5,
                unit_price=AZURE_PREMIUM_MEMORY_PRICE,
            ),
        ),
        invocation_fee=0.0,
        notes=(
            "Instance-based billing on pre-provisioned fixed vCPU/memory combos; a "
            "minimum monthly charge applies (not modelled at per-request scope)."
        ),
    )

    catalog[PlatformName.AZURE_FLEX] = BillingModel(
        platform=PlatformName.AZURE_FLEX.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=100 * MILLISECONDS,
        minimum_time_s=1.0,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=2.0,
                unit_price=AZURE_FLEX_MEMORY_PRICE,
            ),
        ),
        invocation_fee=AZURE_FLEX_INVOCATION_FEE,
        cpu_embedded_in_memory=True,
        notes=(
            "Bills allocated memory (2 GB or 4 GB instance sizes) over execution time "
            "rounded to 100 ms with a 1 s minimum; CPU allocated proportionally."
        ),
    )

    catalog[PlatformName.IBM_CODE_ENGINE] = BillingModel(
        platform=PlatformName.IBM_CODE_ENGINE.value,
        billable_time=BillableTime.TURNAROUND,
        time_granularity_s=100 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.CPU,
                granularity=0.125,
                unit_price=IBM_CPU_PRICE,
            ),
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=0.25,
                unit_price=IBM_MEMORY_PRICE,
            ),
        ),
        invocation_fee=IBM_INVOCATION_FEE,
        notes=(
            "Bills allocated CPU and memory (fixed combos) over wall-clock turnaround "
            "time at 100 ms granularity; no per-request fee."
        ),
    )

    catalog[PlatformName.HUAWEI_FUNCTIONGRAPH] = BillingModel(
        platform=PlatformName.HUAWEI_FUNCTIONGRAPH.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=128 * MB,
                unit_price=HUAWEI_MEMORY_PRICE,
            ),
        ),
        invocation_fee=HUAWEI_INVOCATION_FEE,
        cpu_embedded_in_memory=True,
        notes=(
            "Bills allocated memory (fixed CPU-memory combos) over execution time at "
            "1 ms granularity."
        ),
    )

    catalog[PlatformName.ALIBABA_FC] = BillingModel(
        platform=PlatformName.ALIBABA_FC.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.CPU,
                granularity=0.05,
                unit_price=ALIBABA_CPU_PRICE,
            ),
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=64 * MB,
                unit_price=ALIBABA_MEMORY_PRICE,
            ),
        ),
        invocation_fee=ALIBABA_INVOCATION_FEE,
        notes=(
            "Bills allocated CPU (0.05 vCPU steps) and memory (64 MB steps) over "
            "execution time; vCPU:memory ratio constrained between 1:1 and 1:4."
        ),
    )

    catalog[PlatformName.ORACLE_FUNCTIONS] = BillingModel(
        platform=PlatformName.ORACLE_FUNCTIONS.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=128 * MB,
                unit_price=ORACLE_MEMORY_PRICE,
            ),
        ),
        invocation_fee=ORACLE_INVOCATION_FEE,
        cpu_embedded_in_memory=True,
        notes="Bills allocated memory (fixed combos) over execution time; granularity not publicly documented.",
    )

    catalog[PlatformName.VERCEL_FUNCTIONS] = BillingModel(
        platform=PlatformName.VERCEL_FUNCTIONS.value,
        billable_time=BillableTime.EXECUTION,
        time_granularity_s=1 * MILLISECONDS,
        allocation_resources=(
            AllocationBilledResource(
                kind=ResourceKind.MEMORY,
                granularity=1 * MB,
                unit_price=VERCEL_MEMORY_PRICE,
            ),
        ),
        invocation_fee=VERCEL_INVOCATION_FEE,
        cpu_embedded_in_memory=True,
        notes="Bills allocated memory (1 MB steps) over execution time; CPU proportional.",
    )

    catalog[PlatformName.CLOUDFLARE_WORKERS] = BillingModel(
        platform=PlatformName.CLOUDFLARE_WORKERS.value,
        billable_time=BillableTime.CPU_TIME,
        time_granularity_s=1 * MILLISECONDS,
        usage_resources=(
            UsageBilledResource(
                kind=ResourceKind.CPU,
                granularity=1 * MILLISECONDS,
                unit_price=CLOUDFLARE_CPU_PRICE,
            ),
        ),
        invocation_fee=CLOUDFLARE_INVOCATION_FEE,
        notes=(
            "Bills consumed CPU time only (1 ms granularity) with a fixed 128 MB memory "
            "size; designed for short V8 isolate / Wasm tasks."
        ),
    )

    return catalog


#: The full Table 1 catalog, keyed by platform.
PLATFORM_BILLING_MODELS: Dict[PlatformName, BillingModel] = _build_catalog()


def get_billing_model(
    platform: "PlatformName | str",
    price_class: "str | None" = None,
    price_class_multipliers: "Mapping[str, float] | None" = None,
) -> BillingModel:
    """Look up a platform's billing model by enum member or string name.

    Zone-aware pricing: pass the ``price_class`` of the host zone the work
    runs in plus a ``price_class_multipliers`` mapping (e.g. ``{"economy":
    0.8, "premium": 1.5}``) to get the model with its resource unit prices
    scaled for that zone (see :meth:`BillingModel.with_price_multiplier`).
    Unknown or unmapped price classes bill at the base list prices, so
    homogeneous fleets are unaffected.
    """
    if isinstance(platform, str):
        platform = PlatformName(platform)
    model = PLATFORM_BILLING_MODELS[platform]
    if price_class is not None and price_class_multipliers is not None:
        model = model.with_price_multiplier(price_class_multipliers.get(price_class, 1.0))
    return model


def list_platforms() -> List[PlatformName]:
    """All platforms in the catalog, in Table 1 order."""
    return list(PLATFORM_BILLING_MODELS.keys())
