"""Trace-level billable-resource inflation analysis (paper §2.3, Figure 2).

Given a trace and a set of billing models, this module computes for every
request the billable vCPU-seconds and GB-seconds and compares them with the
actual consumption, producing the inflation factors the paper reports:
billable vCPU time exceeding actual usage by 1.01x (Cloudflare) up to 3.63x
(GCP) and billable memory by 1.57x (Azure) up to 4.35x (GCP) on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.catalog import PlatformName
from repro.billing.units import ResourceKind
from repro.traces.schema import RequestRecord, Trace

__all__ = ["InflationResult", "InflationAnalyzer", "FIGURE2_PLATFORMS"]

#: The representative billing models / allocation patterns shown in Figure 2.
FIGURE2_PLATFORMS: Sequence[PlatformName] = (
    PlatformName.HUAWEI_FUNCTIONGRAPH,  # fixed vCPU-memory combos
    PlatformName.AWS_LAMBDA,  # proportional vCPU allocation
    PlatformName.GCP_RUN_REQUEST,  # wall-clock duration rounding (100 ms)
    PlatformName.AZURE_CONSUMPTION,  # time and usage rounding
    PlatformName.CLOUDFLARE_WORKERS,  # usage-based billing
)


@dataclass
class InflationResult:
    """Per-platform billable resources versus actual consumption over a trace."""

    platform: str
    billable_cpu_seconds: List[float] = field(default_factory=list)
    billable_memory_gb_seconds: List[float] = field(default_factory=list)
    actual_cpu_seconds: List[float] = field(default_factory=list)
    actual_memory_gb_seconds: List[float] = field(default_factory=list)

    @property
    def mean_cpu_inflation(self) -> float:
        """Mean of billable over actual vCPU-seconds across requests."""
        return _mean_ratio(self.billable_cpu_seconds, self.actual_cpu_seconds)

    @property
    def mean_memory_inflation(self) -> float:
        """Mean of billable over actual GB-seconds across requests."""
        return _mean_ratio(self.billable_memory_gb_seconds, self.actual_memory_gb_seconds)

    @property
    def aggregate_cpu_inflation(self) -> float:
        """Total billable over total actual vCPU-seconds (trace-level aggregate)."""
        total_actual = sum(self.actual_cpu_seconds)
        if total_actual <= 0:
            return float("nan")
        return sum(self.billable_cpu_seconds) / total_actual

    @property
    def aggregate_memory_inflation(self) -> float:
        """Total billable over total actual GB-seconds (trace-level aggregate)."""
        total_actual = sum(self.actual_memory_gb_seconds)
        if total_actual <= 0:
            return float("nan")
        return sum(self.billable_memory_gb_seconds) / total_actual

    def summary(self) -> Dict[str, float]:
        return {
            "platform_mean_cpu_inflation": self.mean_cpu_inflation,
            "platform_mean_memory_inflation": self.mean_memory_inflation,
            "aggregate_cpu_inflation": self.aggregate_cpu_inflation,
            "aggregate_memory_inflation": self.aggregate_memory_inflation,
            "num_requests": float(len(self.billable_cpu_seconds)),
        }


def _mean_ratio(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    ratios = [
        n / d
        for n, d in zip(numerators, denominators)
        if d > 0 and np.isfinite(n)
    ]
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))


class InflationAnalyzer:
    """Computes Figure 2's billable-resource distributions for a trace."""

    def __init__(self, platforms: Optional[Sequence[PlatformName]] = None) -> None:
        self.platforms = list(platforms or FIGURE2_PLATFORMS)
        self._calculators = {p: BillingCalculator(p) for p in self.platforms}

    def analyze(self, trace_or_requests: "Trace | Iterable[RequestRecord]") -> Dict[PlatformName, InflationResult]:
        """Bill every request under every platform model and collect the distributions.

        Requests reporting zero CPU usage are excluded, matching the paper's
        trace pre-processing.
        """
        if isinstance(trace_or_requests, Trace):
            requests = trace_or_requests.exclude_zero_cpu().requests
        else:
            requests = [r for r in trace_or_requests if r.usage.cpu_seconds > 0]

        results = {p: InflationResult(platform=p.value) for p in self.platforms}
        for record in requests:
            inputs = InvocationBillingInput.from_request(record)
            actual_cpu = record.actual_cpu_seconds
            actual_mem = record.actual_memory_gb_seconds
            for platform in self.platforms:
                billable = self._calculators[platform].billable_resources(inputs)
                result = results[platform]
                result.billable_cpu_seconds.append(billable.get(ResourceKind.CPU, 0.0))
                result.billable_memory_gb_seconds.append(billable.get(ResourceKind.MEMORY, 0.0))
                result.actual_cpu_seconds.append(actual_cpu)
                result.actual_memory_gb_seconds.append(actual_mem)
        return results

    def inflation_table(self, trace: "Trace | Iterable[RequestRecord]") -> List[Dict[str, float]]:
        """A compact table of mean CPU / memory inflation per platform (Figure 2 summary)."""
        results = self.analyze(trace)
        rows: List[Dict[str, float]] = []
        for platform, result in results.items():
            row: Dict[str, float] = {"platform": platform.value}  # type: ignore[dict-item]
            row.update(result.summary())
            rows.append(row)
        return rows
