"""The generalised serverless billing model (paper Equation 1).

A :class:`BillingModel` is composed of:

- a notion of billable wall-clock time (execution time, turnaround time, or
  instance lifespan) with a time granularity and optional minimum cutoff,
- a set of allocation-billed resources (billed as ``allocation x billable time``,
  each with its own granularity, e.g. AWS memory in 1 MB steps),
- a set of usage-billed resources (billed on absolute consumption, e.g.
  Cloudflare's consumed CPU time),
- a fixed per-invocation fee.

The model exposes both *billable resource* computation (vCPU-seconds and
GB-seconds before prices are applied -- what the paper's Figure 2 plots) and
monetary cost computation (an :class:`Invoice` with per-line items).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.billing.units import ResourceKind, apply_minimum, round_up

__all__ = [
    "BillableTime",
    "AllocationBilledResource",
    "UsageBilledResource",
    "BillLineItem",
    "Invoice",
    "BillingModel",
]


class BillableTime(str, enum.Enum):
    """Which wall-clock duration a platform bills for (paper Table 1)."""

    #: Execution duration only (e.g. Azure Consumption, Huawei, Alibaba).
    EXECUTION = "execution"
    #: Execution plus initialisation/cold-start duration (e.g. GCP, IBM, AWS since 2025-08).
    TURNAROUND = "turnaround"
    #: Whole runtime instance lifespan regardless of requests (instance-based billing).
    INSTANCE = "instance"
    #: Consumed CPU time rather than wall-clock time (Cloudflare Workers).
    CPU_TIME = "cpu_time"


@dataclass(frozen=True)
class AllocationBilledResource:
    """A resource billed as (rounded allocation) x (rounded billable time).

    Attributes:
        kind: which resource (CPU or memory).
        granularity: allocation rounding step in the resource's native unit
            (vCPUs or GB); ``0`` disables rounding.
        unit_price: price per resource-unit-second (e.g. $ per GB-second).
        use_consumption: bill the *measured average consumption* over the
            billable window instead of the configured allocation.  This models
            Azure Functions Consumption, which charges for observed memory
            (rounded to 128 MB) multiplied by execution time rather than for a
            configured memory size.
    """

    kind: ResourceKind
    granularity: float = 0.0
    unit_price: float = 0.0
    use_consumption: bool = False

    def billable_amount(self, allocation: float) -> float:
        """Round an allocation (or consumption) amount up to the billing granularity."""
        return round_up(allocation, self.granularity)


@dataclass(frozen=True)
class UsageBilledResource:
    """A resource billed on absolute consumption over the billable window."""

    kind: ResourceKind
    granularity: float = 0.0
    unit_price: float = 0.0

    def billable_amount(self, usage: float) -> float:
        """Round a usage amount up to the billing granularity."""
        return round_up(usage, self.granularity)


@dataclass(frozen=True)
class BillLineItem:
    """One line of an invoice: a billable quantity and its monetary charge."""

    label: str
    quantity: float
    unit: str
    unit_price: float
    charge: float


@dataclass(frozen=True)
class Invoice:
    """The monetary outcome of billing one invocation (or one instance window)."""

    platform: str
    line_items: Sequence[BillLineItem]

    @property
    def total(self) -> float:
        return sum(item.charge for item in self.line_items)

    def charge_for(self, label_prefix: str) -> float:
        """Sum the charges of line items whose label starts with ``label_prefix``."""
        return sum(item.charge for item in self.line_items if item.label.startswith(label_prefix))

    def as_dict(self) -> Dict[str, float]:
        result = {item.label: item.charge for item in self.line_items}
        result["total"] = self.total
        return result


@dataclass(frozen=True)
class BillingModel:
    """A platform's pay-per-use billing model (one row of the paper's Table 1)."""

    platform: str
    billable_time: BillableTime
    #: Wall-clock (or CPU-time) billing granularity in seconds; 0 disables rounding.
    time_granularity_s: float = 0.0
    #: Minimum billable duration in seconds (e.g. Azure Consumption's 100 ms cutoff).
    minimum_time_s: float = 0.0
    #: Resources billed as allocation x time.
    allocation_resources: Sequence[AllocationBilledResource] = field(default_factory=tuple)
    #: Resources billed on absolute usage.
    usage_resources: Sequence[UsageBilledResource] = field(default_factory=tuple)
    #: Fixed fee charged per invocation (C_0 in Equation 1).
    invocation_fee: float = 0.0
    #: True when CPU is not billed separately but embedded in the memory price
    #: (proportional-allocation platforms such as AWS Lambda and Vercel).
    cpu_embedded_in_memory: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if self.time_granularity_s < 0 or self.minimum_time_s < 0:
            raise ValueError("time granularity and minimum must be >= 0")
        if self.invocation_fee < 0:
            raise ValueError("invocation fee must be >= 0")

    # ------------------------------------------------------------------
    # Billable time
    # ------------------------------------------------------------------

    def billable_seconds(
        self,
        execution_s: float,
        init_s: float = 0.0,
        instance_s: Optional[float] = None,
        cpu_time_s: float = 0.0,
    ) -> float:
        """Compute the billable duration after granularity rounding and cutoffs.

        Args:
            execution_s: request execution wall-clock duration.
            init_s: initialisation (cold start) duration of this invocation.
            instance_s: instance lifespan for instance-billed platforms.
            cpu_time_s: consumed CPU time, for CPU-time-billed platforms.
        """
        if self.billable_time is BillableTime.EXECUTION:
            raw = execution_s
        elif self.billable_time is BillableTime.TURNAROUND:
            raw = execution_s + init_s
        elif self.billable_time is BillableTime.INSTANCE:
            if instance_s is None:
                raise ValueError("instance_s is required for instance-based billing")
            raw = instance_s
        elif self.billable_time is BillableTime.CPU_TIME:
            raw = cpu_time_s
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown billable time {self.billable_time}")
        rounded = round_up(raw, self.time_granularity_s)
        return apply_minimum(rounded, self.minimum_time_s)

    # ------------------------------------------------------------------
    # Billable resources (paper Figure 2's quantities)
    # ------------------------------------------------------------------

    def billable_resources(
        self,
        execution_s: float,
        allocations: Mapping[ResourceKind, float],
        usages: Optional[Mapping[ResourceKind, float]] = None,
        init_s: float = 0.0,
        instance_s: Optional[float] = None,
        cpu_time_s: float = 0.0,
    ) -> Dict[ResourceKind, float]:
        """Compute the billable resource quantities (resource-unit-seconds) per kind.

        For allocation-billed resources the quantity is
        ``ceil(alloc / G_r) * G_r * billable_time``; for usage-billed resources
        it is the rounded consumption.  Quantities of the same kind coming from
        both groups are summed (no current platform does that, but the model
        allows it).
        """
        usages = usages or {}
        billable_time = self.billable_seconds(
            execution_s=execution_s, init_s=init_s, instance_s=instance_s, cpu_time_s=cpu_time_s
        )
        out: Dict[ResourceKind, float] = {}
        for resource in self.allocation_resources:
            if resource.use_consumption:
                allocation = usages.get(resource.kind, 0.0)
            else:
                allocation = allocations.get(resource.kind, 0.0)
            quantity = resource.billable_amount(allocation) * billable_time
            out[resource.kind] = out.get(resource.kind, 0.0) + quantity
        for resource in self.usage_resources:
            usage = usages.get(resource.kind, 0.0)
            quantity = resource.billable_amount(usage)
            out[resource.kind] = out.get(resource.kind, 0.0) + quantity
        return out

    # ------------------------------------------------------------------
    # Monetary cost (Equation 1 in full)
    # ------------------------------------------------------------------

    def invoice(
        self,
        execution_s: float,
        allocations: Mapping[ResourceKind, float],
        usages: Optional[Mapping[ResourceKind, float]] = None,
        init_s: float = 0.0,
        instance_s: Optional[float] = None,
        cpu_time_s: float = 0.0,
        include_invocation_fee: bool = True,
    ) -> Invoice:
        """Produce a full invoice for one invocation.

        ``include_invocation_fee`` can be disabled to model instance-based
        billing where the fixed per-request fee usually does not apply.
        """
        usages = usages or {}
        billable_time = self.billable_seconds(
            execution_s=execution_s, init_s=init_s, instance_s=instance_s, cpu_time_s=cpu_time_s
        )
        items: List[BillLineItem] = []
        for resource in self.allocation_resources:
            if resource.use_consumption:
                allocation = usages.get(resource.kind, 0.0)
            else:
                allocation = allocations.get(resource.kind, 0.0)
            rounded_alloc = resource.billable_amount(allocation)
            quantity = rounded_alloc * billable_time
            items.append(
                BillLineItem(
                    label=f"alloc:{resource.kind.value}",
                    quantity=quantity,
                    unit=f"{resource.kind.value}-seconds",
                    unit_price=resource.unit_price,
                    charge=quantity * resource.unit_price,
                )
            )
        for resource in self.usage_resources:
            usage = usages.get(resource.kind, 0.0)
            quantity = resource.billable_amount(usage)
            items.append(
                BillLineItem(
                    label=f"usage:{resource.kind.value}",
                    quantity=quantity,
                    unit=f"{resource.kind.value}-seconds",
                    unit_price=resource.unit_price,
                    charge=quantity * resource.unit_price,
                )
            )
        if include_invocation_fee and self.invocation_fee > 0:
            items.append(
                BillLineItem(
                    label="invocation_fee",
                    quantity=1.0,
                    unit="requests",
                    unit_price=self.invocation_fee,
                    charge=self.invocation_fee,
                )
            )
        return Invoice(platform=self.platform, line_items=tuple(items))

    # ------------------------------------------------------------------
    # Zone-aware pricing
    # ------------------------------------------------------------------

    def with_price_multiplier(self, multiplier: float) -> "BillingModel":
        """This model with every resource unit price scaled by ``multiplier``.

        The basis of zone-aware invoicing: a heterogeneous fleet's price
        classes map to multipliers on the platform's list prices (a premium
        zone bills the same billable quantities at a higher rate).  The
        per-invocation fee is *not* scaled -- it pays for the control plane,
        which is zone-independent.  ``multiplier == 1.0`` returns ``self``
        unchanged, preserving float-exact behaviour for single-zone fleets.
        """
        if multiplier < 0:
            raise ValueError("price multiplier must be >= 0")
        if multiplier == 1.0:
            return self
        return dataclasses.replace(
            self,
            allocation_resources=tuple(
                dataclasses.replace(r, unit_price=r.unit_price * multiplier)
                for r in self.allocation_resources
            ),
            usage_resources=tuple(
                dataclasses.replace(r, unit_price=r.unit_price * multiplier)
                for r in self.usage_resources
            ),
        )

    # ------------------------------------------------------------------
    # Introspection helpers used by the catalog / Table 1 bench
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """A flat description of the model, one row of the paper's Table 1."""
        return {
            "platform": self.platform,
            "billable_time": self.billable_time.value,
            "time_granularity_ms": self.time_granularity_s * 1e3,
            "minimum_time_ms": self.minimum_time_s * 1e3,
            "allocation_resources": [r.kind.value for r in self.allocation_resources],
            "usage_resources": [r.kind.value for r in self.usage_resources],
            "invocation_fee_usd": self.invocation_fee,
            "cpu_embedded_in_memory": self.cpu_embedded_in_memory,
            "notes": self.notes,
        }
