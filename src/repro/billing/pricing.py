"""Per-unit resource prices (paper Figure 1) and the §1 serverless-vs-VM comparison.

The paper plots each platform's effective vCPU-second and GB-second prices and
observes (I1) that per-unit prices are broadly similar across providers and a
factor ~2-2.5x above VM / container-hosting prices for the same hardware.  For
memory-based-billing platforms (AWS, Huawei, Azure Consumption, Oracle, Vercel)
the CPU cost is embedded in the memory price; this module also provides a
decomposition that splits the embedded price using the industry-consensus
CPU:memory value ratio of ~9.1-9.64 the paper derives in §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.billing.catalog import (
    ALIBABA_CPU_PRICE,
    ALIBABA_MEMORY_PRICE,
    AWS_LAMBDA_MEMORY_PRICE,
    AZURE_CONSUMPTION_MEMORY_PRICE,
    AZURE_FLEX_MEMORY_PRICE,
    AZURE_PREMIUM_CPU_PRICE,
    AZURE_PREMIUM_MEMORY_PRICE,
    CLOUDFLARE_CPU_PRICE,
    GCP_CPU_PRICE,
    GCP_INSTANCE_CPU_PRICE,
    GCP_INSTANCE_MEMORY_PRICE,
    GCP_MEMORY_PRICE,
    HUAWEI_MEMORY_PRICE,
    IBM_CPU_PRICE,
    IBM_MEMORY_PRICE,
    ORACLE_MEMORY_PRICE,
    PlatformName,
    VERCEL_MEMORY_PRICE,
)

__all__ = [
    "PlatformPrice",
    "PLATFORM_PRICES",
    "NON_SERVERLESS_PRICES",
    "CPU_TO_MEMORY_VALUE_RATIO",
    "VCPU_EQUIVALENT_MEMORY_GB",
    "aws_lambda_price_per_second",
    "decompose_memory_embedded_price",
    "price_comparison_vs_vm",
]

#: Memory size AWS maps to one full vCPU (1,769 MB), used to convert
#: memory-embedded prices into per-vCPU equivalents.
VCPU_EQUIVALENT_MEMORY_GB: float = 1769.0 / 1024.0

#: Industry-consensus relative value of a vCPU-second versus a GB-second,
#: derived in §2.2 from GCP, AWS Fargate and IBM prices (range 9-9.64).
CPU_TO_MEMORY_VALUE_RATIO: float = 9.3


@dataclass(frozen=True)
class PlatformPrice:
    """Effective per-unit prices of one platform (Figure 1 data point).

    ``cpu_per_vcpu_second`` is zero for platforms that embed CPU in the memory
    price; use :func:`decompose_memory_embedded_price` to split it.
    """

    platform: PlatformName
    cpu_per_vcpu_second: float
    memory_per_gb_second: float
    invocation_fee: float
    memory_based_billing: bool

    @property
    def effective_price_1vcpu_1769mb(self) -> float:
        """Price per second of a 1 vCPU + 1,769 MB function (the paper's §2.2 yardstick)."""
        if self.memory_based_billing:
            return self.memory_per_gb_second * VCPU_EQUIVALENT_MEMORY_GB
        return self.cpu_per_vcpu_second * 1.0 + self.memory_per_gb_second * VCPU_EQUIVALENT_MEMORY_GB


PLATFORM_PRICES: Dict[PlatformName, PlatformPrice] = {
    PlatformName.AWS_LAMBDA: PlatformPrice(
        PlatformName.AWS_LAMBDA, 0.0, AWS_LAMBDA_MEMORY_PRICE, 2.0e-7, True
    ),
    PlatformName.GCP_RUN_REQUEST: PlatformPrice(
        PlatformName.GCP_RUN_REQUEST, GCP_CPU_PRICE, GCP_MEMORY_PRICE, 4.0e-7, False
    ),
    PlatformName.GCP_RUN_INSTANCE: PlatformPrice(
        PlatformName.GCP_RUN_INSTANCE, GCP_INSTANCE_CPU_PRICE, GCP_INSTANCE_MEMORY_PRICE, 0.0, False
    ),
    PlatformName.AZURE_CONSUMPTION: PlatformPrice(
        PlatformName.AZURE_CONSUMPTION, 0.0, AZURE_CONSUMPTION_MEMORY_PRICE, 2.0e-7, True
    ),
    PlatformName.AZURE_PREMIUM: PlatformPrice(
        PlatformName.AZURE_PREMIUM, AZURE_PREMIUM_CPU_PRICE, AZURE_PREMIUM_MEMORY_PRICE, 0.0, False
    ),
    PlatformName.AZURE_FLEX: PlatformPrice(
        PlatformName.AZURE_FLEX, 0.0, AZURE_FLEX_MEMORY_PRICE, 4.0e-7, True
    ),
    PlatformName.IBM_CODE_ENGINE: PlatformPrice(
        PlatformName.IBM_CODE_ENGINE, IBM_CPU_PRICE, IBM_MEMORY_PRICE, 0.0, False
    ),
    PlatformName.HUAWEI_FUNCTIONGRAPH: PlatformPrice(
        PlatformName.HUAWEI_FUNCTIONGRAPH, 0.0, HUAWEI_MEMORY_PRICE, 2.0e-7, True
    ),
    PlatformName.ALIBABA_FC: PlatformPrice(
        PlatformName.ALIBABA_FC, ALIBABA_CPU_PRICE, ALIBABA_MEMORY_PRICE, 1.5e-7, False
    ),
    PlatformName.ORACLE_FUNCTIONS: PlatformPrice(
        PlatformName.ORACLE_FUNCTIONS, 0.0, ORACLE_MEMORY_PRICE, 2.0e-7, True
    ),
    PlatformName.VERCEL_FUNCTIONS: PlatformPrice(
        PlatformName.VERCEL_FUNCTIONS, 0.0, VERCEL_MEMORY_PRICE, 6.0e-7, True
    ),
    PlatformName.CLOUDFLARE_WORKERS: PlatformPrice(
        PlatformName.CLOUDFLARE_WORKERS, CLOUDFLARE_CPU_PRICE, 0.0, 3.0e-7, False
    ),
}


@dataclass(frozen=True)
class NonServerlessPrice:
    """Per-second price of a non-serverless compute option (§1 comparison)."""

    name: str
    price_per_second: float
    vcpus: float
    memory_gb: float
    description: str


#: The §1 price comparison baselines: ARM hardware in us-east-2 (2025-05-15).
NON_SERVERLESS_PRICES: Dict[str, NonServerlessPrice] = {
    "aws_lambda_arm": NonServerlessPrice(
        name="aws_lambda_arm",
        price_per_second=2.3034e-5,
        vcpus=1.0,
        memory_gb=1769.0 / 1024.0,
        description="AWS Lambda, 1 vCPU / 1,769 MB / 512 MB ephemeral storage (ARM)",
    ),
    "ec2_c6g_medium": NonServerlessPrice(
        name="ec2_c6g_medium",
        price_per_second=9.4753e-6,
        vcpus=1.0,
        memory_gb=2.0,
        description="AWS EC2 c6g.medium, 1 vCPU / 2 GB / 1 GB storage (ARM)",
    ),
    "fargate_container": NonServerlessPrice(
        name="fargate_container",
        price_per_second=1.1003e-5,
        vcpus=1.0,
        memory_gb=2.0,
        description="AWS Fargate container with the same allocation as the EC2 instance (ARM)",
    ),
}


def aws_lambda_price_per_second(memory_gb: float, arm: bool = False) -> float:
    """Per-second price of an AWS Lambda function with the given memory size.

    The x86 GB-second price is used by default; the ARM price is roughly 20%
    lower (the paper's §1 figure uses ARM for the cross-service comparison).
    """
    if memory_gb <= 0:
        raise ValueError("memory_gb must be positive")
    price = AWS_LAMBDA_MEMORY_PRICE * (0.8 if arm else 1.0)
    return memory_gb * price


def decompose_memory_embedded_price(
    memory_per_gb_second: float,
    ratio: float = CPU_TO_MEMORY_VALUE_RATIO,
    vcpu_equivalent_memory_gb: float = VCPU_EQUIVALENT_MEMORY_GB,
) -> Dict[str, float]:
    """Split a memory-embedded price into implied CPU and memory unit prices.

    Memory-based-billing platforms charge ``memory_per_gb_second`` for a bundle
    of 1 GB of memory plus ``1/vcpu_equivalent_memory_gb`` vCPUs.  Using the
    consensus value ratio ``r`` (vCPU-second worth ``r`` GB-seconds), solve::

        bundle = mem_price + (1 / M) * cpu_price,  cpu_price = r * mem_price

    Returns a dict with ``implied_cpu_per_vcpu_second`` and
    ``implied_memory_per_gb_second``.
    """
    if memory_per_gb_second <= 0:
        raise ValueError("memory_per_gb_second must be positive")
    if ratio <= 0 or vcpu_equivalent_memory_gb <= 0:
        raise ValueError("ratio and vcpu_equivalent_memory_gb must be positive")
    memory_price = memory_per_gb_second / (1.0 + ratio / vcpu_equivalent_memory_gb)
    cpu_price = ratio * memory_price
    return {
        "implied_cpu_per_vcpu_second": cpu_price,
        "implied_memory_per_gb_second": memory_price,
    }


def price_comparison_vs_vm() -> Dict[str, float]:
    """The §1 comparison: EC2 and Fargate prices as fractions of the Lambda price.

    The paper reports 41.1% (EC2 c6g.medium) and 47.8% (Fargate) of the AWS
    Lambda per-second price for the same ARM hardware.
    """
    lambda_price = NON_SERVERLESS_PRICES["aws_lambda_arm"].price_per_second
    return {
        "aws_lambda_arm_per_second": lambda_price,
        "ec2_fraction_of_lambda": NON_SERVERLESS_PRICES["ec2_c6g_medium"].price_per_second / lambda_price,
        "fargate_fraction_of_lambda": NON_SERVERLESS_PRICES["fargate_container"].price_per_second
        / lambda_price,
    }


def figure1_series() -> List[Dict[str, float]]:
    """The (cpu price, memory price) points of Figure 1, one row per platform."""
    rows: List[Dict[str, float]] = []
    for platform, price in PLATFORM_PRICES.items():
        if price.memory_based_billing:
            implied = decompose_memory_embedded_price(price.memory_per_gb_second)
            cpu_price = implied["implied_cpu_per_vcpu_second"]
            memory_price = implied["implied_memory_per_gb_second"]
        else:
            cpu_price = price.cpu_per_vcpu_second
            memory_price = price.memory_per_gb_second
        rows.append(
            {
                "platform": platform.value,
                "cpu_per_vcpu_second": cpu_price,
                "memory_per_gb_second": memory_price,
                "memory_based_billing": float(price.memory_based_billing),
                "invocation_fee": price.invocation_fee,
            }
        )
    return rows
