"""Serverless billing models, pricing catalog, and cost calculation (paper §2).

This package implements the generalised pay-per-use billing model of the
paper's Equation (1):

.. math::

    Cost = \\sum_{r \\in R_{ALLOC}} \\lceil ALLOC(r)/G_r \\rceil G_r
           \\cdot \\lceil T/G_T \\rceil G_T \\cdot C_r
         + \\sum_{r \\in R_{USG}} \\lceil USG(r)/G_r \\rceil G_r \\cdot C_r
         + C_0

together with the per-platform instantiations of Table 1 (billable time
notion, billable resources, granularities, minimum cutoffs and invocation
fees) and the per-unit prices shown in Figure 1.
"""

from repro.billing.units import (
    GB,
    MB,
    MILLISECONDS,
    Resource,
    ResourceKind,
    round_up,
)
from repro.billing.models import (
    AllocationBilledResource,
    BillableTime,
    BillingModel,
    BillLineItem,
    Invoice,
    UsageBilledResource,
)
from repro.billing.catalog import (
    PLATFORM_BILLING_MODELS,
    PlatformName,
    get_billing_model,
    list_platforms,
)
from repro.billing.pricing import (
    PLATFORM_PRICES,
    PlatformPrice,
    NON_SERVERLESS_PRICES,
    aws_lambda_price_per_second,
    price_comparison_vs_vm,
)
from repro.billing.calculator import BillingCalculator, InvocationBillingInput
from repro.billing.inflation import InflationAnalyzer, InflationResult
from repro.billing.meter import CostMeter, RequestResources, replay_trace

__all__ = [
    "GB",
    "MB",
    "MILLISECONDS",
    "Resource",
    "ResourceKind",
    "round_up",
    "AllocationBilledResource",
    "UsageBilledResource",
    "BillableTime",
    "BillingModel",
    "BillLineItem",
    "Invoice",
    "PLATFORM_BILLING_MODELS",
    "PlatformName",
    "get_billing_model",
    "list_platforms",
    "PLATFORM_PRICES",
    "PlatformPrice",
    "NON_SERVERLESS_PRICES",
    "aws_lambda_price_per_second",
    "price_comparison_vs_vm",
    "BillingCalculator",
    "InvocationBillingInput",
    "InflationAnalyzer",
    "InflationResult",
    "CostMeter",
    "RequestResources",
    "replay_trace",
]
