"""Live cost metering: an event-bus subscriber that invoices as the simulation runs.

The batch path (:class:`repro.billing.calculator.BillingCalculator` over a
finished trace) answers "what did this workload cost" after the fact.  The
:class:`CostMeter` answers the same question *while a simulation runs*: it
subscribes to the typed sandbox-lifecycle and request-completion events on a
:class:`repro.sim.events.EventBus` and accumulates billable vCPU-seconds,
GB-seconds and money incrementally through the very same
:class:`BillingCalculator`, so the live and batch paths agree exactly -- the
equivalence the cluster co-simulation relies on (and a test asserts) is that
metering a trace live through the bus produces the identical invoice to
billing the trace in batch.

Two billing families are handled:

- **Request-billed models** (execution / turnaround / CPU-time billable time):
  each :class:`~repro.sim.events.RequestCompleted` event is billed as one
  invocation.
- **Instance-billed models** (``BillableTime.INSTANCE``): sandbox lifespans
  are metered from cold-start to eviction and each closed instance is billed
  over its lifespan (without the per-request fee, matching
  :mod:`repro.billing.instance_billing`).

Idle (keep-alive) instance-seconds are accounted separately from busy time so
provider-side keep-alive cost can be read off the meter.

Three cross-layer refinements ride on the same event stream:

- **Stretched billing**: the meter bills the ``execution_duration_s`` each
  outcome actually reports.  When the execution-feedback layer
  (:mod:`repro.sim.feedback`) is on, scheduler throttling stretches those
  durations, so invoices reflect throttled reality with no meter changes --
  and with feedback off the durations (and therefore the float-exact
  live==batch equivalence) are untouched.
- **Zone-aware pricing**: with ``price_class_multipliers`` configured and a
  fleet attached (:meth:`CostMeter.attach_fleet`), each request/instance is
  billed at the price class of the host its sandbox is placed on (resource
  unit prices scaled via
  :meth:`~repro.billing.models.BillingModel.with_price_multiplier`), giving
  heterogeneous multi-zone fleets a per-zone invoice
  (:attr:`CostMeter.cost_usd_by_class`).
- **Per-attempt billing**: with the client retry loop
  (:mod:`repro.sim.retry`) on, each completed attempt arrives as its own
  ``RequestCompleted`` event and is invoiced separately, bucketed by attempt
  number (:attr:`CostMeter.cost_usd_by_attempt`) -- the user-side bill of
  retry amplification.  Without retries everything bills under attempt 1 and
  the totals are float-exactly unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.billing.calculator import BilledInvocation, BillingCalculator, InvocationBillingInput
from repro.billing.models import BillableTime, BillingModel
from repro.billing.units import ResourceKind, apply_minimum, round_up
from repro.sim.events import (
    EventBus,
    RequestCompleted,
    SandboxAdmitted,
    SandboxBusy,
    SandboxColdStart,
    SandboxIdle,
    SandboxTerminated,
)
from repro.traces.schema import RequestRecord, Trace

__all__ = ["RequestResources", "CostMeter", "replay_trace"]


@dataclass(frozen=True)
class RequestResources:
    """Per-request resource context for outcomes that do not carry their own.

    Simulator outcomes (:class:`repro.platform.metrics.RequestOutcome`) report
    durations but not allocations or consumption; the deployment knows those.
    ``used_cpu_seconds`` is the CPU work one request performs (contention
    stretches wall-clock time, not CPU work), ``used_memory_gb`` the average
    resident memory.
    """

    alloc_vcpus: float
    alloc_memory_gb: float
    used_cpu_seconds: float
    used_memory_gb: float

    def __post_init__(self) -> None:
        if self.alloc_vcpus <= 0 or self.alloc_memory_gb <= 0:
            raise ValueError("allocations must be positive")
        if self.used_cpu_seconds < 0 or self.used_memory_gb < 0:
            raise ValueError("usages must be >= 0")

    @classmethod
    def from_function(cls, function: object) -> "RequestResources":
        """Billing context from a function config (``repro.platform.config`` shape).

        Duck-typed (``alloc_vcpus``, ``alloc_memory_gb``, ``cpu_time_s``,
        ``used_memory_gb``) so the billing layer does not import the platform
        layer.
        """
        return cls(
            alloc_vcpus=function.alloc_vcpus,  # type: ignore[attr-defined]
            alloc_memory_gb=function.alloc_memory_gb,  # type: ignore[attr-defined]
            used_cpu_seconds=function.cpu_time_s,  # type: ignore[attr-defined]
            used_memory_gb=function.used_memory_gb,  # type: ignore[attr-defined]
        )


@dataclass
class _OpenInstance:
    """A sandbox between cold start and eviction."""

    started_s: float
    alloc_vcpus: float
    alloc_memory_gb: float
    idle_since_s: Optional[float] = None
    idle_seconds: float = 0.0
    #: Whether the sandbox ever landed on a host.  Only ``False`` under
    #: admission-gated metering (:meth:`CostMeter.attach_admissions`) before
    #: the fleet's ``SandboxAdmitted`` arrives; a sandbox closed while still
    #: ``False`` spent its whole life in the admission queue and bills
    #: nothing.
    admitted: bool = True


class CostMeter:
    """Accumulates billable resources and money from simulation events.

    One meter meters one platform billing model.  Attach it to any number of
    event buses (one per co-simulated function, each with its own
    :class:`RequestResources` context), or feed it records directly via
    :meth:`meter_request` / :meth:`meter_outcome`.
    """

    def __init__(
        self,
        platform: "str | BillingModel",
        include_invocation_fee: bool = True,
        price_class_multipliers: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.calculator = BillingCalculator(platform)
        self.include_invocation_fee = include_invocation_fee
        self._instance_billed = self.calculator.model.billable_time is BillableTime.INSTANCE
        #: True once attach_admissions() subscribed: lifespans start at fleet
        #: admission, and sandboxes that never get admitted bill nothing.
        self._admission_gated = False
        # Zone-aware pricing: price class -> unit-price multiplier, with one
        # lazily built calculator per class.  The resolver (attach_fleet) maps
        # a sandbox name to the price class of its current host.
        self._price_class_multipliers = (
            dict(price_class_multipliers) if price_class_multipliers is not None else None
        )
        self._class_calculators: Dict[str, BillingCalculator] = {}
        self._price_class_resolver: Optional[Callable[[str], Optional[str]]] = None
        #: Running invoice per price class ("standard" covers unresolved work).
        self.cost_usd_by_class: Dict[str, float] = {}
        #: Running request-billed invoice per client attempt number.  With a
        #: retry loop on, every billed attempt is invoiced separately (a
        #: request that succeeds on its third attempt pays three times the
        #: backoff in latency but is *billed* once, at attempt 3 -- failed
        #: attempts never executed, so nothing was metered for them); without
        #: retries everything lands under attempt 1.
        self.cost_usd_by_attempt: Dict[int, float] = {}
        #: Running request-billed invoice per tenant (the multi-tenancy
        #: layer's invoice breakdown).  Outcomes without a tenant tag bill
        #: only into the global totals, so the dict stays empty -- and costs
        #: nothing -- outside tenant-tagged co-simulations.
        self.cost_usd_by_tenant: Dict[str, float] = {}
        # Request-level accumulators.
        self.num_requests = 0
        self.num_cold_starts = 0
        self.cost_usd = 0.0
        self.billable_cpu_seconds = 0.0
        self.billable_memory_gb_seconds = 0.0
        self.actual_cpu_seconds = 0.0
        self.actual_memory_gb_seconds = 0.0
        self.invocation_fee_usd = 0.0
        # Instance-level accumulators.
        self._open_instances: Dict[str, _OpenInstance] = {}
        self.instances_started = 0
        self.instances_closed = 0
        self.instance_seconds = 0.0
        self.idle_instance_seconds = 0.0
        self.allocated_vcpu_seconds = 0.0
        self.allocated_memory_gb_seconds = 0.0

    @property
    def model(self) -> BillingModel:
        return self.calculator.model

    # ------------------------------------------------------------------
    # Bus wiring
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus, resources: Optional[RequestResources] = None) -> "CostMeter":
        """Subscribe to a bus; ``resources`` fills in what outcomes don't carry."""
        bus.subscribe(RequestCompleted, self._request_subscriber(resources))
        bus.subscribe(SandboxColdStart, self._on_cold_start)
        bus.subscribe(SandboxBusy, self._on_busy)
        bus.subscribe(SandboxIdle, self._on_idle)
        bus.subscribe(SandboxTerminated, self._on_terminated)
        return self

    def _request_subscriber(self, resources: Optional[RequestResources]):
        """The ``RequestCompleted`` callback for one bus.

        With a fixed :class:`RequestResources` context, flat pricing and a
        request-billed model -- the shape of every simulator run -- the only
        per-request variables in Equation 1 are the billable duration and the
        cold-start flag: allocations, usage quantities and the invocation fee
        are per-function constants.  This compiles those constants once and
        folds each outcome with a handful of multiply-adds instead of building
        an ``InvocationBillingInput`` -> ``Invoice`` -> ``BilledInvocation``
        object chain per request.  The arithmetic (operation order included)
        mirrors :meth:`meter_request` exactly, so the running totals are
        float-identical to the generic path -- which remains the fallback for
        trace-record payloads, instance billing and zone multipliers.
        """
        if resources is None or self._instance_billed or self._price_class_multipliers is not None:
            return lambda event: self.meter_outcome(event.outcome, resources)
        calculator = self.calculator
        model = calculator.model
        probe = InvocationBillingInput(
            execution_s=0.0,
            init_s=0.0,
            alloc_vcpus=resources.alloc_vcpus,
            alloc_memory_gb=resources.alloc_memory_gb,
            used_cpu_seconds=resources.used_cpu_seconds,
            used_memory_gb=resources.used_memory_gb,
        )
        allocations = calculator.effective_allocations(probe)
        usages = calculator.effective_usages(probe)
        # Pre-rounded amounts, in the order the generic path iterates them:
        # allocation-billed resources scale with billable time; usage-billed
        # quantities are constant outright.
        alloc_terms = []
        for resource in model.allocation_resources:
            amount = (
                usages.get(resource.kind, 0.0)
                if resource.use_consumption
                else allocations.get(resource.kind, 0.0)
            )
            alloc_terms.append(
                (resource.kind, resource.billable_amount(amount), resource.unit_price)
            )
        usage_terms = [
            (resource.kind, resource.billable_amount(usages.get(resource.kind, 0.0)),
             resource.unit_price)
            for resource in model.usage_resources
        ]
        fee_charge = (
            model.invocation_fee
            if self.include_invocation_fee and model.invocation_fee > 0
            else 0.0
        )
        cpu_billed_directly = any(
            kind is ResourceKind.CPU for kind, _, _ in alloc_terms + usage_terms
        )
        embedded_cpu_alloc = (
            allocations.get(ResourceKind.CPU, 0.0)
            if model.cpu_embedded_in_memory and not cpu_billed_directly
            else None
        )
        billable_time_kind = model.billable_time
        time_granularity_s = model.time_granularity_s
        minimum_time_s = model.minimum_time_s
        used_cpu_seconds = resources.used_cpu_seconds
        used_memory_gb = resources.used_memory_gb
        kind_cpu = ResourceKind.CPU
        kind_memory = ResourceKind.MEMORY
        by_attempt = self.cost_usd_by_attempt
        by_class = self.cost_usd_by_class
        by_tenant = self.cost_usd_by_tenant

        def on_completed(event: RequestCompleted) -> None:
            outcome = event.outcome
            execution_s = getattr(outcome, "execution_duration_s", None)
            if execution_s is None or isinstance(outcome, RequestRecord):
                self.meter_outcome(outcome, resources)
                return
            if billable_time_kind is BillableTime.EXECUTION:
                raw = execution_s
            elif billable_time_kind is BillableTime.TURNAROUND:
                raw = execution_s + float(getattr(outcome, "init_duration_s", 0.0))
            else:  # CPU_TIME (INSTANCE models never compile this path)
                raw = used_cpu_seconds
            billable_time = apply_minimum(round_up(raw, time_granularity_s), minimum_time_s)
            total = 0.0
            billable_cpu = 0.0
            billable_memory = 0.0
            for kind, rounded, unit_price in alloc_terms:
                quantity = rounded * billable_time
                total += quantity * unit_price
                if kind is kind_cpu:
                    billable_cpu += quantity
                elif kind is kind_memory:
                    billable_memory += quantity
            for kind, quantity, unit_price in usage_terms:
                total += quantity * unit_price
                if kind is kind_cpu:
                    billable_cpu += quantity
                elif kind is kind_memory:
                    billable_memory += quantity
            if embedded_cpu_alloc is not None:
                billable_cpu = embedded_cpu_alloc * billable_time
            total += fee_charge
            price_class = self._resolve_price_class(str(getattr(outcome, "sandbox_name", "")))
            attempts = int(getattr(outcome, "attempts", 1))
            self.num_requests += 1
            if getattr(outcome, "cold_start", False):
                self.num_cold_starts += 1
            bucket = price_class if price_class is not None else "standard"
            by_class[bucket] = by_class.get(bucket, 0.0) + total
            self.cost_usd += total
            by_attempt[attempts] = by_attempt.get(attempts, 0.0) + total
            tenant = getattr(outcome, "tenant", "")
            if tenant:
                by_tenant[tenant] = by_tenant.get(tenant, 0.0) + total
            self.billable_cpu_seconds += billable_cpu
            self.billable_memory_gb_seconds += billable_memory
            self.actual_cpu_seconds += used_cpu_seconds
            self.actual_memory_gb_seconds += used_memory_gb * execution_s
            self.invocation_fee_usd += fee_charge

        return on_completed

    def attach_admissions(self, bus: EventBus) -> "CostMeter":
        """Start instance lifespans at fleet *admission* instead of cold start.

        Only meaningful in a closed-loop co-simulation (feedback on), where a
        queued cold start does not land on a host -- and cannot initialise --
        until the fleet admits it.  Subscribing the meter to the cluster
        bus's :class:`SandboxAdmitted` events re-bases each open instance's
        start time to its admission, so instance-billed invoices exclude the
        admission-queue wait.  Directly placed sandboxes are admitted at
        their cold-start time, leaving their lifespans float-exactly
        unchanged.  A sandbox that *never* gets admitted -- still queued at
        the horizon, or rejected after queueing -- spent its entire life
        off-host and is closed without billing anything.
        """
        self._admission_gated = True
        bus.subscribe(SandboxAdmitted, self._on_admitted)
        return self

    def attach_fleet(self, fleet) -> "CostMeter":
        """Resolve each sandbox's price class through a fleet's live placements.

        ``fleet`` is duck-typed (``price_class_of(sandbox_name)``, see
        :meth:`repro.cluster.fleet.Fleet.price_class_of`) so the billing layer
        does not import the cluster layer.  Only meaningful together with
        ``price_class_multipliers``; without multipliers every class bills at
        base prices anyway.
        """
        self._price_class_resolver = fleet.price_class_of
        return self

    def register_metrics(self, registry) -> "CostMeter":
        """Expose the live invoice as observability gauges (pure reads).

        ``billed_cost_usd`` is the running user-side total the telemetry
        sampler turns into a cost-over-time series -- the live counterpart of
        the end-of-run ``totals()`` row.
        """
        registry.gauge("billed_cost_usd", fn=lambda: float(self.cost_usd))
        registry.gauge("billed_requests", fn=lambda: float(self.num_requests))
        registry.gauge("billed_instance_seconds", fn=lambda: float(self.instance_seconds))
        return self

    def _resolve_price_class(self, sandbox_name: str) -> Optional[str]:
        if self._price_class_resolver is None or not sandbox_name:
            return None
        return self._price_class_resolver(sandbox_name)

    def _add_cost(self, price_class: Optional[str], amount_usd: float) -> None:
        """Fold one charge into the total and its price-class bucket."""
        bucket = price_class if price_class is not None else "standard"
        self.cost_usd_by_class[bucket] = self.cost_usd_by_class.get(bucket, 0.0) + amount_usd
        self.cost_usd += amount_usd

    def _calculator_for(self, price_class: Optional[str]) -> BillingCalculator:
        """The per-price-class calculator (the base one when pricing is flat).

        With no multipliers configured -- or a multiplier of exactly 1.0 --
        this returns the base calculator itself, keeping the float-exact
        live==batch equivalence intact for single-zone runs.
        """
        if price_class is None or self._price_class_multipliers is None:
            return self.calculator
        multiplier = self._price_class_multipliers.get(price_class, 1.0)
        if multiplier == 1.0:
            return self.calculator
        calculator = self._class_calculators.get(price_class)
        if calculator is None:
            calculator = BillingCalculator(self.model.with_price_multiplier(multiplier))
            self._class_calculators[price_class] = calculator
        return calculator

    # ------------------------------------------------------------------
    # Request metering
    # ------------------------------------------------------------------

    def meter_request(
        self,
        inputs: InvocationBillingInput,
        cold_start: bool = False,
        price_class: Optional[str] = None,
        attempts: int = 1,
        tenant: str = "",
    ) -> BilledInvocation:
        """Bill one invocation (at its zone's price class) into the running totals."""
        calculator = self._calculator_for(price_class)
        billed = calculator.bill(inputs, include_invocation_fee=self.include_invocation_fee)
        self.num_requests += 1
        if cold_start:
            self.num_cold_starts += 1
        self._add_cost(price_class, billed.invoice.total)
        self.cost_usd_by_attempt[attempts] = (
            self.cost_usd_by_attempt.get(attempts, 0.0) + billed.invoice.total
        )
        if tenant:
            self.cost_usd_by_tenant[tenant] = (
                self.cost_usd_by_tenant.get(tenant, 0.0) + billed.invoice.total
            )
        self.billable_cpu_seconds += billed.billable_cpu_seconds
        self.billable_memory_gb_seconds += billed.billable_memory_gb_seconds
        self.actual_cpu_seconds += billed.actual_cpu_seconds
        self.actual_memory_gb_seconds += billed.actual_memory_gb_seconds
        self.invocation_fee_usd += billed.invoice.charge_for("invocation_fee")
        return billed

    def meter_outcome(self, outcome: object, resources: Optional[RequestResources] = None) -> None:
        """Meter a ``RequestCompleted`` payload: a trace record or a simulator outcome."""
        is_record = isinstance(outcome, RequestRecord)
        execution_s = getattr(outcome, "execution_duration_s", None)
        if not is_record and execution_s is None:
            raise TypeError(
                f"cannot meter outcome of type {type(outcome).__name__}: expected a "
                "RequestRecord or an object with execution_duration_s"
            )
        cold = bool(getattr(outcome, "cold_start", False))
        if self._instance_billed:
            # Instance-billed models charge for lifespans, not invocations; the
            # per-request fee usually does not apply either.  Count the request
            # for rate statistics but bill nothing here.
            self.num_requests += 1
            if cold:
                self.num_cold_starts += 1
            return
        price_class = self._resolve_price_class(str(getattr(outcome, "sandbox_name", "")))
        attempts = int(getattr(outcome, "attempts", 1))
        tenant = str(getattr(outcome, "tenant", ""))
        if is_record:
            self.meter_request(
                InvocationBillingInput.from_request(outcome), cold, price_class, attempts,
                tenant,
            )
            return
        if resources is None:
            raise ValueError(
                "metering simulator outcomes needs a RequestResources context "
                "(allocations and per-request usage are not part of the outcome)"
            )
        self.meter_request(
            InvocationBillingInput(
                execution_s=float(execution_s),
                init_s=float(getattr(outcome, "init_duration_s", 0.0)),
                alloc_vcpus=resources.alloc_vcpus,
                alloc_memory_gb=resources.alloc_memory_gb,
                used_cpu_seconds=resources.used_cpu_seconds,
                used_memory_gb=resources.used_memory_gb,
            ),
            cold,
            price_class,
            attempts,
            tenant,
        )

    # ------------------------------------------------------------------
    # Instance metering (sandbox lifecycle events)
    # ------------------------------------------------------------------

    def _on_cold_start(self, event: SandboxColdStart) -> None:
        self._open_instances[event.sandbox_name] = _OpenInstance(
            started_s=event.time_s,
            alloc_vcpus=event.alloc_vcpus,
            alloc_memory_gb=event.alloc_memory_gb,
            admitted=not self._admission_gated,
        )
        self.instances_started += 1

    def _on_admitted(self, event: SandboxAdmitted) -> None:
        instance = self._open_instances.get(event.sandbox_name)
        if instance is not None:
            instance.started_s = event.time_s
            instance.admitted = True

    def _on_busy(self, event: SandboxBusy) -> None:
        instance = self._open_instances.get(event.sandbox_name)
        if instance is not None and instance.idle_since_s is not None:
            instance.idle_seconds += max(event.time_s - instance.idle_since_s, 0.0)
            instance.idle_since_s = None

    def _on_idle(self, event: SandboxIdle) -> None:
        instance = self._open_instances.get(event.sandbox_name)
        if instance is not None:
            instance.idle_since_s = event.time_s

    def _on_terminated(self, event: SandboxTerminated) -> None:
        instance = self._open_instances.pop(event.sandbox_name, None)
        if instance is not None:
            self._close_instance(event.sandbox_name, instance, event.time_s)

    def _close_instance(self, name: str, instance: _OpenInstance, now_s: float) -> None:
        if not instance.admitted:
            # Admission-gated metering: this sandbox never landed on a host,
            # so its whole "lifespan" was off-host admission-queue wait --
            # the wait the gate exists to exclude from invoices.
            self.instances_closed += 1
            return
        lifespan = max(now_s - instance.started_s, 0.0)
        if instance.idle_since_s is not None:
            instance.idle_seconds += max(now_s - instance.idle_since_s, 0.0)
            instance.idle_since_s = None
        self.instances_closed += 1
        self.instance_seconds += lifespan
        self.idle_instance_seconds += instance.idle_seconds
        self.allocated_vcpu_seconds += instance.alloc_vcpus * lifespan
        self.allocated_memory_gb_seconds += instance.alloc_memory_gb * lifespan
        if self._instance_billed and lifespan > 0:
            # Resolve the zone price class while the sandbox is still placed
            # (the meter closes instances before the fleet releases capacity).
            price_class = self._resolve_price_class(name)
            model = self._calculator_for(price_class).model
            invoice = model.invoice(
                execution_s=0.0,
                allocations={
                    ResourceKind.CPU: instance.alloc_vcpus,
                    ResourceKind.MEMORY: instance.alloc_memory_gb,
                },
                usages={},
                instance_s=lifespan,
                include_invocation_fee=False,
            )
            self._add_cost(price_class, invoice.total)
            billable = model.billable_resources(
                execution_s=0.0,
                allocations={
                    ResourceKind.CPU: instance.alloc_vcpus,
                    ResourceKind.MEMORY: instance.alloc_memory_gb,
                },
                instance_s=lifespan,
            )
            self.billable_cpu_seconds += billable.get(ResourceKind.CPU, 0.0)
            self.billable_memory_gb_seconds += billable.get(ResourceKind.MEMORY, 0.0)

    def finalize(self, now_s: float) -> None:
        """Close instances still open at the end of the simulation horizon."""
        for name in sorted(self._open_instances):
            self._close_instance(name, self._open_instances.pop(name), now_s)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """The running totals as one flat row."""
        return {
            "platform": self.model.platform,
            "num_requests": float(self.num_requests),
            "num_cold_starts": float(self.num_cold_starts),
            "cost_usd": self.cost_usd,
            "billable_cpu_seconds": self.billable_cpu_seconds,
            "billable_memory_gb_seconds": self.billable_memory_gb_seconds,
            "actual_cpu_seconds": self.actual_cpu_seconds,
            "actual_memory_gb_seconds": self.actual_memory_gb_seconds,
            "invocation_fee_usd": self.invocation_fee_usd,
            "instances_started": float(self.instances_started),
            "instances_closed": float(self.instances_closed),
            "instance_seconds": self.instance_seconds,
            "idle_instance_seconds": self.idle_instance_seconds,
            "allocated_vcpu_seconds": self.allocated_vcpu_seconds,
            "allocated_memory_gb_seconds": self.allocated_memory_gb_seconds,
        }


def replay_trace(
    trace: "Trace | Sequence[RequestRecord]",
    bus: EventBus,
) -> List[RequestRecord]:
    """Replay a trace's requests as ``RequestCompleted`` events on a bus.

    Requests are published in completion-time order (stable-sorted by
    ``arrival + turnaround``), each stamped with its completion time -- the
    order a live simulation would have emitted them.  Returns the records in
    the order published so a caller can run the batch calculator over exactly
    the same sequence and compare invoices one-to-one.
    """
    records = trace.requests if isinstance(trace, Trace) else list(trace)
    ordered = sorted(records, key=lambda r: r.arrival_s + r.turnaround_s)
    for record in ordered:
        bus.publish(RequestCompleted(record.arrival_s + record.turnaround_s, record))
    return ordered
