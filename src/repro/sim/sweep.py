"""Parallel scenario-sweep orchestrator.

A *scenario* is one fully specified simulation run: a picklable reference to
a top-level runner function (``"package.module:function"``), a parameter
mapping, and a seed.  The orchestrator fans a list of scenarios out across a
pluggable execution backend (:mod:`repro.sim.backends`: in-process serial, a
``multiprocessing`` pool, a ``concurrent.futures`` executor, or a multi-node
TCP work queue) and collects the returned rows -- always reassembled into
scenario order, so every backend produces identical
:class:`~repro.sim.results.ResultStore` contents.  Completed points can be
journaled to a checkpoint (:mod:`repro.sim.checkpoint`) as they finish and
skipped on resume, so huge grids survive mid-sweep failures.

Seeding: :func:`build_grid` derives every scenario's seed from one base seed
and the scenario's identity via :func:`repro.sim.rng.derive_seed`, so a sweep
is reproducible run-to-run and independent of worker scheduling, yet no two
grid points share a stream.

This module sits at the top of ``repro.sim`` and is allowed to import domain
layers (platform presets, workloads) to provide the ready-made
:func:`platform_point` runner the CLI ``sweep`` subcommand uses; analysis
modules register their own runners by exposing top-level functions.
"""

from __future__ import annotations

import importlib
import itertools
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sim.backends import PointOutcome, SweepBackend, SweepPointError, resolve_backend
from repro.sim.checkpoint import SweepJournal
from repro.sim.results import ResultStore
from repro.sim.rng import derive_seed

__all__ = [
    "Scenario",
    "SweepPointError",
    "build_grid",
    "platform_point",
    "resolve_platform",
    "resolve_runner",
    "resolve_workload",
    "run_scenario",
    "run_sweep",
    "trace_replay_point",
]

RowOrRows = Union[Mapping[str, object], Sequence[Mapping[str, object]]]
Runner = Callable[[Mapping[str, object], int], RowOrRows]


@dataclass(frozen=True)
class Scenario:
    """One grid point of a sweep.

    ``runner`` is a dotted-path reference (``"module.sub:function"``) to a
    top-level function ``f(params, seed) -> row | rows`` so scenarios stay
    picklable across process boundaries.
    """

    scenario_id: str
    runner: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0


def resolve_runner(runner: str) -> Runner:
    """Import and return the runner function behind a ``module:function`` path."""
    module_path, _, func_name = runner.partition(":")
    if not func_name:
        raise ValueError(f"runner {runner!r} must look like 'package.module:function'")
    module = importlib.import_module(module_path)
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ValueError(f"module {module_path!r} has no function {func_name!r}") from None


def run_scenario(scenario: Scenario) -> List[Dict[str, object]]:
    """Execute one scenario in the current process; returns its result rows."""
    runner = resolve_runner(scenario.runner)
    result = runner(dict(scenario.params), scenario.seed)
    if isinstance(result, Mapping):
        return [dict(result)]
    return [dict(row) for row in result]


_ID_ESCAPES = (("%", "%25"), ("/", "%2F"), ("=", "%3D"))


def _escape_id_component(text: str) -> str:
    """Make one axis name/value safe for the ``name=value/...`` scenario id.

    The scenario id doubles as the seed-derivation key, so two distinct grid
    points must never render to the same string -- yet an axis value like
    the platform label ``"aws/lambda"`` or ``"memory=2gb"`` contains the
    very separators the id is assembled from, and unescaped it can alias a
    *different* combination's id (and therefore its seed stream).
    Percent-encoding exactly the structural characters (``%`` first, so the
    encoding is injective) fixes that while keeping every legacy-safe value
    byte-identical: existing CSVs and golden files reproduce unchanged.
    """
    for raw, escaped in _ID_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def build_grid(
    runner: str,
    axes: Mapping[str, Sequence[object]],
    common: Optional[Mapping[str, object]] = None,
    base_seed: int = 0,
    fixed_seed: Optional[int] = None,
) -> List[Scenario]:
    """The cartesian product of ``axes`` as a list of scenarios.

    Every combination becomes one :class:`Scenario` whose params are
    ``common`` plus the axis values, whose id names the combination, and
    whose seed is derived from ``base_seed`` and the scenario id (stable
    under grid re-ordering).  Axis names and values containing the id
    separators (``/``, ``=``, and the escape character ``%``) are
    percent-encoded in the id, so distinct combinations always get distinct
    ids and seed streams; separator-free values render exactly as before.
    Pass ``fixed_seed`` to give every point the same seed instead (e.g. to
    reproduce a legacy per-figure seeding scheme).
    """
    names = list(axes)
    scenarios: List[Scenario] = []
    for values in itertools.product(*(axes[name] for name in names)):
        point: Dict[str, object] = dict(common or {})
        point.update(zip(names, values))
        scenario_id = "/".join(
            f"{_escape_id_component(name)}={_escape_id_component(str(point[name]))}"
            for name in names
        )
        seed = fixed_seed if fixed_seed is not None else derive_seed(base_seed, scenario_id)
        scenarios.append(Scenario(scenario_id=scenario_id, runner=runner, params=point, seed=seed))
    return scenarios


def _run_indexed_scenario(
    indexed: "Tuple[int, Scenario]",
) -> "Tuple[int, List[Dict[str, object]]]":
    """Index-tagging worker shim (legacy; backends now return full outcomes)."""
    index, scenario = indexed
    return index, run_scenario(scenario)


def run_sweep(
    scenarios: Sequence[Scenario],
    processes: Optional[int] = None,
    store: Optional[ResultStore] = None,
    ordered: bool = True,
    backend: Union[str, SweepBackend, None] = None,
    checkpoint: Optional[str] = None,
) -> ResultStore:
    """Run all scenarios and collect their rows, in scenario order.

    Execution is delegated to a pluggable :mod:`repro.sim.backends` backend.
    With ``backend=None`` the historical defaults apply byte-for-byte:
    ``processes=None``/``0``/``1`` runs sequentially in-process,
    ``processes=N`` fans out over a multiprocessing pool of N workers, and
    ``processes=-1`` uses every available core.  ``backend`` may also be a
    name/spec string (``"serial"``, ``"multiprocessing"``, ``"futures"``, or
    ``"socket-queue[:host]:port"`` -- a TCP work-queue server that remote
    ``repro-serverless-costs sweep-worker`` processes connect to) or any
    object implementing :class:`~repro.sim.backends.SweepBackend`.  Results
    are identical across all of them because each scenario is self-contained
    (runner path + params + seed) and rows are reassembled into grid order.

    ``ordered=False`` requests work-stealing execution where the backend
    distinguishes (the multiprocessing pool's ``imap_unordered``): workers
    pull the next scenario the moment they finish their current one, so a
    heterogeneous grid -- a few expensive co-simulations among many cheap
    points -- no longer leaves workers idle behind fixed chunking.  The
    resulting :class:`ResultStore` (and any CSV written from it) is
    byte-identical to the ordered mode.

    ``checkpoint`` names a :class:`~repro.sim.checkpoint.SweepJournal` JSONL
    file: every point's rows are journaled the moment they arrive, and
    points already journaled under the same ``(scenario_id, seed)`` are
    skipped, so an interrupted sweep resumes where it left off and its final
    CSV is byte-identical to an uninterrupted run.

    A failing grid point raises :class:`SweepPointError` naming the point's
    ``scenario_id`` and ``seed`` (with the worker traceback attached when it
    ran remotely) -- *after* all rows completed so far have been flushed to
    the checkpoint, so with a journal attached a crash only ever costs the
    failing point.
    """
    store = store if store is not None else ResultStore()
    resolved = resolve_backend(
        backend,
        processes=processes,
        grid_size=len(scenarios),
        announce=lambda message: print(message, file=sys.stderr),
    )
    collected: List[Optional[List[Dict[str, object]]]] = [None] * len(scenarios)
    journal = SweepJournal(checkpoint) if checkpoint is not None else None
    pending: List[Tuple[int, Scenario]] = list(enumerate(scenarios))
    if journal is not None:
        journaled = journal.load()
        if journaled:
            fresh: List[Tuple[int, Scenario]] = []
            for index, scenario in pending:
                rows = journaled.get((scenario.scenario_id, scenario.seed))
                if rows is None:
                    fresh.append((index, scenario))
                else:
                    collected[index] = rows
            skipped = len(pending) - len(fresh)
            if skipped:
                print(
                    f"checkpoint {journal.path}: skipping {skipped} already-journaled "
                    f"points, running {len(fresh)}",
                    file=sys.stderr,
                )
            pending = fresh
    failure: Optional[PointOutcome] = None
    outcomes = resolved.run(pending, ordered=ordered)
    try:
        for outcome in outcomes:
            if outcome.failed:
                failure = outcome
                break
            if collected[outcome.index] is not None:
                continue  # duplicate delivery (a re-queued socket-queue item)
            collected[outcome.index] = outcome.rows if outcome.rows is not None else []
            if journal is not None:
                journal.record(outcome.scenario_id, outcome.seed, collected[outcome.index])
    finally:
        closer = getattr(outcomes, "close", None)
        if closer is not None:
            closer()
        if journal is not None:
            journal.close()  # every completed row is on disk before any re-raise
    if failure is not None:
        error = failure.to_error()
        if failure.cause is not None:
            raise error from failure.cause
        raise error
    for rows in collected:
        store.extend(rows or [])
    return store


# ----------------------------------------------------------------------
# Ready-made runner: one platform-simulator run per grid point
# ----------------------------------------------------------------------


def resolve_platform(value: object):
    """A ``PlatformConfig`` from either a preset name or the config itself."""
    from repro.platform.config import PlatformConfig
    from repro.platform.presets import get_platform_preset

    if isinstance(value, PlatformConfig):
        return value
    return get_platform_preset(str(value))


def resolve_workload(value: object):
    """A ``WorkloadSpec`` from either a catalog name or the spec itself."""
    from repro.workloads.functions import WorkloadSpec, get_workload

    if isinstance(value, WorkloadSpec):
        return value
    return get_workload(str(value))


def _resolve_arrivals(params: Mapping[str, object], seed: int) -> List[float]:
    from repro.workloads.traffic import constant_rate_arrivals, poisson_arrivals

    rps = float(params.get("rps", 1.0))  # type: ignore[arg-type]
    duration_s = float(params.get("duration_s", 60.0))  # type: ignore[arg-type]
    if params.get("arrival_process", "constant") == "poisson":
        # Traffic gets its own named stream: seeding it with the run seed
        # directly would make the arrival draws bit-identical to the
        # simulator's overhead/keep-alive draws.
        return poisson_arrivals(rps, duration_s, seed=derive_seed(seed, "arrivals"))
    return constant_rate_arrivals(rps, duration_s)


def platform_point(params: Mapping[str, object], seed: int) -> Dict[str, object]:
    """Simulate one (platform, workload, traffic) grid point and summarise it.

    Expected params: ``platform`` (preset name or ``PlatformConfig``),
    ``workload`` (catalog name or ``WorkloadSpec``), ``rps``, ``duration_s``,
    and optionally ``alloc_vcpus``, ``alloc_memory_gb``, ``init_duration_s``,
    ``arrival_process`` (``"constant"`` | ``"poisson"``) and ``label``.
    """
    from repro.platform.invoker import PlatformSimulator

    platform = resolve_platform(params["platform"])
    workload = resolve_workload(params["workload"])
    function = workload.to_function_config(
        float(params.get("alloc_vcpus", 1.0)),  # type: ignore[arg-type]
        float(params.get("alloc_memory_gb", 2.0)),  # type: ignore[arg-type]
        init_duration_s=float(params.get("init_duration_s", 1.0)),  # type: ignore[arg-type]
    )
    simulator = PlatformSimulator(platform, function, seed=seed)
    arrivals = _resolve_arrivals(params, seed)
    metrics = simulator.run(arrivals)
    summary = metrics.summary()
    nan = float("nan")
    row: Dict[str, object] = {
        "platform": params.get("label", platform.name),
        "workload": workload.name,
        "rps": float(params.get("rps", 1.0)),  # type: ignore[arg-type]
        "duration_s": float(params.get("duration_s", 60.0)),  # type: ignore[arg-type]
        "seed": seed,
        "num_requests": summary["num_requests"],
        "mean_duration_ms": summary.get("mean_execution_duration_s", nan) * 1e3,
        "median_duration_ms": summary.get("median_execution_duration_s", nan) * 1e3,
        "p95_duration_ms": summary.get("p95_execution_duration_s", nan) * 1e3,
        "cold_start_rate": summary.get("cold_start_rate", nan),
        "max_instances": summary.get("max_instances", 0.0),
    }
    return row


# ----------------------------------------------------------------------
# Ready-made runner: trace-driven scenarios from the synthetic generator
# ----------------------------------------------------------------------


def trace_replay_point(params: Mapping[str, object], seed: int) -> List[Dict[str, object]]:
    """Trace-driven sweep runner: replay a generated Huawei-like trace.

    Instead of a synthetic (rps, duration) parameter point, this runner
    generates a :class:`repro.traces.generator.TraceGenerator` trace shard
    (deterministically from the scenario seed), reconstructs each of its
    busiest functions as a :class:`~repro.platform.config.FunctionConfig`
    (flavor allocation and a CPU/IO split matching the function's profiled
    mean duration and CPU utilisation), and drives the platform simulator
    with the trace's actual arrival timestamps.  One result row per replayed
    function.

    Expected params: ``platform`` (preset name or config), and optionally
    ``num_requests`` / ``num_functions`` (trace shard size, defaults 2000/40),
    ``top_functions`` (how many of the busiest functions to replay, default 3),
    ``time_scale`` (compresses the trace's arrival timeline, default 1.0),
    ``billing`` (billing-model name; adds live-metered ``cost_usd`` per row)
    and ``label``.
    """
    from repro.billing.meter import CostMeter, RequestResources
    from repro.platform.config import FunctionConfig
    from repro.platform.invoker import PlatformSimulator
    from repro.traces.generator import TraceGenerator, TraceGeneratorConfig

    platform = resolve_platform(params["platform"])
    num_requests = int(params.get("num_requests", 2_000))  # type: ignore[arg-type]
    num_functions = int(params.get("num_functions", 40))  # type: ignore[arg-type]
    top_functions = int(params.get("top_functions", 3))  # type: ignore[arg-type]
    time_scale = float(params.get("time_scale", 1.0))  # type: ignore[arg-type]
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    billing = params.get("billing")

    trace = TraceGenerator(
        TraceGeneratorConfig(
            num_requests=num_requests,
            num_functions=num_functions,
            seed=derive_seed(seed, "trace"),
        )
    ).generate()

    arrivals_by_function: Dict[str, List[float]] = {}
    for record in trace.requests:
        arrivals_by_function.setdefault(record.function_id, []).append(record.arrival_s)
    busiest = sorted(arrivals_by_function, key=lambda fid: (-len(arrivals_by_function[fid]), fid))

    rows: List[Dict[str, object]] = []
    for function_id in busiest[:top_functions]:
        profile = trace.functions[function_id]
        # Split the profiled mean duration into CPU work and IO wait: consumed
        # CPU per request is utilisation x allocation x duration, and whatever
        # the CPU phase does not explain is modelled as IO.  A single request
        # executes at min(1, alloc) vCPU in the contention model, so CPU work
        # is capped there -- otherwise the replayed duration would exceed the
        # profiled one whenever utilisation x allocation > 1.
        cpu_rate = min(profile.alloc_vcpus, 1.0)
        cpu_time_s = min(
            profile.mean_cpu_utilization * profile.alloc_vcpus, cpu_rate
        ) * profile.mean_duration_s
        io_time_s = max(profile.mean_duration_s - cpu_time_s / cpu_rate, 0.0)
        function = FunctionConfig(
            name=function_id,
            alloc_vcpus=profile.alloc_vcpus,
            alloc_memory_gb=profile.alloc_memory_gb,
            cpu_time_s=cpu_time_s,
            io_time_s=io_time_s,
            used_memory_gb=profile.mean_memory_utilization * profile.alloc_memory_gb,
            init_duration_s=1.0,
        )
        simulator = PlatformSimulator(platform, function, seed=derive_seed(seed, "replay", function_id))
        meter = None
        if billing is not None:
            meter = CostMeter(str(billing)).attach(simulator.bus, RequestResources.from_function(function))
        arrivals = sorted(t * time_scale for t in arrivals_by_function[function_id])
        metrics = simulator.run(arrivals)
        if meter is not None:
            # Close instances still inside their keep-alive window so
            # instance-billed models account for every open lifespan.
            meter.finalize(simulator.kernel.now)
        summary = metrics.summary()
        nan = float("nan")
        row: Dict[str, object] = {
            "platform": params.get("label", platform.name),
            "function_id": function_id,
            "alloc_vcpus": profile.alloc_vcpus,
            "alloc_memory_gb": profile.alloc_memory_gb,
            "seed": seed,
            "num_requests": summary["num_requests"],
            "trace_mean_duration_ms": profile.mean_duration_s * 1e3,
            "mean_duration_ms": summary.get("mean_execution_duration_s", nan) * 1e3,
            "p95_duration_ms": summary.get("p95_execution_duration_s", nan) * 1e3,
            "cold_start_rate": summary.get("cold_start_rate", nan),
            "max_instances": summary.get("max_instances", 0.0),
        }
        if meter is not None:
            row["billing_platform"] = meter.model.platform
            row["cost_usd"] = meter.cost_usd
        rows.append(row)
    return rows
