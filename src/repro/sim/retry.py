"""The client retry loop: failed requests come back and re-load the fleet.

PR 4 made admission rejections *visible* -- a rejected cold start fails its
pending request as a typed ``FailedRequest`` -- but the failure was terminal:
the request vanished from the simulated system.  Real clients do not vanish;
they retry with backoff, and those retries are new load the fleet must absorb
while it is, by construction, already saturated (it just rejected them).
Backpressure sweeps that drop failed requests therefore *under-report* the
load amplification a capacity-bound cluster actually experiences.

This module closes that last loop:

- :class:`RetryPolicy` is the client-side contract: a maximum attempt count,
  exponential backoff with seed-derived jitter (drawn from a
  :func:`repro.sim.rng.named_generator` stream per function, so retry timing
  depends only on the root seed and the function's own failure sequence), and
  an optional per-function retry *budget* -- the circuit-breaker pattern of
  production clients (give up early once a function has burnt its budget,
  instead of retrying a dying dependency forever).
- :class:`RetryLoop` is the bus subscriber that executes the policy: it
  catches :class:`~repro.sim.events.RequestFailed` events on the shared
  co-simulation bus and re-injects each non-terminal failure as a *fresh
  arrival* on the owning simulator's kernel after the backoff delay.  The
  re-injected arrival takes the exact same path as an organic one -- routing,
  cold start, fleet admission gating, possibly another rejection -- so retry
  load is subject to the same backpressure that created it.  Attempt count
  and cumulative backoff ride on the request: completed attempts surface them
  in :class:`~repro.platform.metrics.RequestOutcome` and terminal failures
  carry a ``gave_up`` flag.

Determinism: the loop never schedules anything outside an existing event's
bus publish, every backoff draw comes from a named per-function stream
consumed in kernel-event order, and with ``retry=None`` (every entry point's
default) no loop exists and simulators take byte-identical pre-retry paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.sim.events import EventBus, RequestFailed, RetryScheduled
from repro.sim.rng import RngStreams

__all__ = ["RetryPolicy", "RetryLoop", "RetryInjector", "resolve_retry"]


def resolve_retry(
    params: Mapping[str, object],
) -> Tuple[Optional[str], Optional["RetryPolicy"]]:
    """One sweep grid point's (retry mode, policy) pair.

    Shared by the analysis sweep runners (``cluster_point``,
    ``backpressure_point``).  The mode is ``None`` when the ``retry`` param
    is absent -- deliberately distinct from ``"off"``, so pre-retry grids
    keep producing byte-identical rows (no ``retry`` column at all); the
    policy is non-``None`` only for ``"on"`` (built from the point's
    ``retry_*`` params via :meth:`RetryPolicy.from_params`).
    """
    mode = str(params["retry"]) if "retry" in params else None
    if mode not in (None, "off", "on"):
        raise ValueError(f"retry must be 'off' or 'on', got {mode!r}")
    return mode, (RetryPolicy.from_params(params) if mode == "on" else None)


@runtime_checkable
class RetryInjector(Protocol):
    """Anything a :class:`RetryLoop` can re-inject an arrival into.

    Implemented by :class:`repro.platform.invoker.PlatformSimulator`; kept as
    a protocol so the sim layer does not import the platform layer.
    """

    def inject_retry(
        self,
        delay_s: float,
        attempts: int,
        retry_wait_s: float,
        parent_id: str = "",
        origin_s: float = 0.0,
    ) -> None:
        ...


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a failed request.

    Attributes:
        max_attempts: total attempts per request, the first one included
            (``1`` disables retrying: every failure is terminal).
        base_backoff_s: delay before the first retry.
        backoff_multiplier: exponential growth factor per subsequent retry.
        max_backoff_s: cap on the un-jittered backoff delay.
        jitter: jitter fraction ``j >= 0``: each delay is scaled by a factor
            drawn uniformly from ``[1, 1 + j]`` (seed-derived; ``0`` disables
            the draw entirely, making backoff fully deterministic).
        retry_budget: optional per-function cap on the *total* number of
            retries the loop will schedule for that function; once spent,
            further failures of the function give up immediately.
        deadline_s: optional per-request retry deadline: once the elapsed
            time since the *first* attempt's arrival reaches it, a failure
            is terminal -- the load-shedding client of the tenancy layer.
            Checked at failure time (never after the backoff draw), so the
            publisher's ``gave_up`` stamp and the loop's action always
            agree.  ``None`` (the default) retries regardless of elapsed
            time -- the pre-deadline behaviour.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1
    retry_budget: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0 (or None for unlimited)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None for no deadline)")

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "RetryPolicy":
        """Build a policy from sweep-grid params (``retry_*`` keys, all optional).

        Used by the analysis sweep runners so grid points can tune the client
        behaviour (``retry_max_attempts``, ``retry_base_backoff_s``,
        ``retry_backoff_multiplier``, ``retry_max_backoff_s``,
        ``retry_jitter``, ``retry_budget``, ``retry_deadline_s``) without
        each runner re-spelling the defaults.
        """
        budget = params.get("retry_budget")
        deadline = params.get("retry_deadline_s")
        return cls(
            max_attempts=int(params.get("retry_max_attempts", 3)),  # type: ignore[arg-type]
            base_backoff_s=float(params.get("retry_base_backoff_s", 0.5)),  # type: ignore[arg-type]
            backoff_multiplier=float(params.get("retry_backoff_multiplier", 2.0)),  # type: ignore[arg-type]
            max_backoff_s=float(params.get("retry_max_backoff_s", 30.0)),  # type: ignore[arg-type]
            jitter=float(params.get("retry_jitter", 0.1)),  # type: ignore[arg-type]
            retry_budget=int(budget) if budget is not None else None,  # type: ignore[arg-type]
            deadline_s=float(deadline) if deadline is not None else None,  # type: ignore[arg-type]
        )

    def backoff_s(self, failed_attempt: int, rng: np.random.Generator) -> float:
        """The delay before re-injecting after attempt ``failed_attempt`` failed.

        Exponential in the attempt index (``base * multiplier**(k-1)``),
        capped at ``max_backoff_s``, then jittered multiplicatively.  The
        jitter draw is skipped entirely at ``jitter == 0`` so a jitter-free
        policy consumes no randomness.
        """
        if failed_attempt < 1:
            raise ValueError("failed_attempt is 1-based")
        delay = min(
            self.base_backoff_s * self.backoff_multiplier ** (failed_attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


class RetryLoop:
    """Executes a :class:`RetryPolicy` over a co-simulation's failure events.

    One loop serves one co-simulation (one shared bus).  The host registers
    each platform simulator under its function name (:meth:`register`) and
    attaches the loop to the shared bus (:meth:`attach`); from then on every
    non-terminal :class:`~repro.sim.events.RequestFailed` is re-injected into
    its owning simulator as a fresh arrival ``backoff`` seconds later.

    The terminal/non-terminal split is decided *by the publisher*: the
    platform simulator consults :meth:`will_retry` while building the
    ``FailedRequest`` record, so the ``gave_up`` flag metrics collectors see
    (they run before this subscriber) agrees with what the loop then does.
    Both sides observe the same state because bus dispatch is synchronous:
    nothing can spend budget between the publisher's query and this
    subscriber's re-injection of the very same event.
    """

    def __init__(self, policy: RetryPolicy, seed: int = 0) -> None:
        self.policy = policy
        self._streams = RngStreams(seed)
        self._simulators: Dict[str, RetryInjector] = {}
        self._budget_spent: Dict[str, int] = {}
        self._bus: Optional[EventBus] = None
        #: retries the loop re-injected (scheduled; late ones may fall beyond
        #: the run horizon and never fire as arrivals).
        self.retries_scheduled = 0
        #: terminal failures observed (attempts exhausted or budget spent).
        self.gave_up = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "RetryLoop":
        """Catch ``RequestFailed`` events published on ``bus``."""
        self._bus = bus
        bus.subscribe(RequestFailed, self._on_failed)
        return self

    def register_metrics(self, registry) -> "RetryLoop":
        """Expose the loop's live counters as observability gauges.

        Pure reads: the gauges report the counters the loop maintains anyway,
        so sampling them cannot perturb retry behaviour.
        """
        registry.gauge("retries_scheduled_total", fn=lambda: float(self.retries_scheduled))
        registry.gauge("retry_gave_up_total", fn=lambda: float(self.gave_up))
        return self

    def register(self, name: str, simulator: RetryInjector) -> None:
        """Own re-injection for requests of the simulator named ``name``.

        ``name`` must match the simulator's id prefix (request ids look like
        ``<name>/req-0000042``); failures from unregistered simulators are
        ignored.
        """
        self._simulators[name] = simulator

    # ------------------------------------------------------------------
    # Policy queries (used by the publisher to stamp ``gave_up``)
    # ------------------------------------------------------------------

    def budget_remaining(self, function: str) -> Optional[int]:
        """Retries the function may still spend (``None`` = unlimited)."""
        if self.policy.retry_budget is None:
            return None
        return self.policy.retry_budget - self._budget_spent.get(function, 0)

    def budget_spent(self, function: str) -> int:
        """Retries already charged against the function's budget."""
        return self._budget_spent.get(function, 0)

    def will_retry(self, function: str, attempts: int, elapsed_s: float = 0.0) -> bool:
        """Whether a failure of attempt ``attempts`` would be re-injected.

        ``elapsed_s`` is the time since the logical request's first attempt
        arrived; under a :attr:`RetryPolicy.deadline_s` a failure at or past
        the deadline is terminal (the client sheds the load).
        """
        if attempts >= self.policy.max_attempts:
            return False
        if self.policy.deadline_s is not None and elapsed_s >= self.policy.deadline_s:
            return False
        remaining = self.budget_remaining(function)
        return remaining is None or remaining > 0

    # ------------------------------------------------------------------
    # The subscriber
    # ------------------------------------------------------------------

    @staticmethod
    def _function_of(request_id: str) -> str:
        """The simulator name prefix of a namespaced request id."""
        return request_id.split("/", 1)[0] if "/" in request_id else ""

    def _on_failed(self, event: RequestFailed) -> None:
        failure = event.outcome
        if getattr(failure, "gave_up", False):
            self.gave_up += 1
            return
        name = self._function_of(str(getattr(failure, "request_id", "")))
        simulator = self._simulators.get(name)
        if simulator is None:
            return  # a failure this loop was never asked to own
        attempts = int(getattr(failure, "attempts", 1))
        origin_s = float(getattr(failure, "origin_s", 0.0)) or float(
            getattr(failure, "arrival_s", 0.0)
        )
        elapsed_s = float(getattr(failure, "failed_s", 0.0)) - origin_s
        if not self.will_retry(name, attempts, elapsed_s):
            # Defensive: a publisher that did not consult will_retry() (so
            # gave_up stayed False) must not push the loop past its policy.
            return
        delay = self.policy.backoff_s(attempts, self._streams.stream("retry", name))
        # Honour the fleet's retry-after hint: back off at least that long,
        # so clients shed load from a cluster that told them it is saturated.
        retry_after = float(getattr(failure, "retry_after_s", 0.0))
        if retry_after > delay:
            delay = retry_after
        self._budget_spent[name] = self._budget_spent.get(name, 0) + 1
        self.retries_scheduled += 1
        parent_id = str(getattr(failure, "request_id", ""))
        simulator.inject_retry(
            delay,
            attempts + 1,
            float(getattr(failure, "retry_wait_s", 0.0)) + delay,
            parent_id=parent_id,
            origin_s=origin_s,
        )
        if self._bus is not None:
            # Trace/telemetry marker for the re-injection decision.  Published
            # unconditionally once attached (failures are rare); subscribers
            # only exist when an observability layer is listening, and the
            # event itself mutates nothing, so un-observed runs are unchanged.
            self._bus.publish(
                RetryScheduled(
                    event.time_s,
                    parent_id,
                    function_name=name,
                    next_attempt=attempts + 1,
                    delay_s=delay,
                )
            )
