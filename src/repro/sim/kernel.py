"""The discrete-event simulation kernel shared by every simulator in the repo.

The kernel owns the clock and decides what happens next.  Two kinds of
participants coexist:

- **Scheduled events**: pushed onto a binary heap with an absolute firing
  time.  A monotonically increasing sequence number breaks time ties, so two
  events scheduled for the same instant always fire in scheduling order --
  this is what makes runs deterministic regardless of heap internals.
- **Polled processes**: objects that compute their own next event time on
  demand (e.g. the CPU-bandwidth scheduler, whose next event depends on
  mutable state such as remaining quota).  The kernel asks each registered
  process for its next event time and interleaves it with the heap.

The clock never moves backwards: it advances to ``max(now, event.time)`` when
an event fires.  ``peek``/``step``/``pause`` let a host embed the kernel in a
larger co-simulation and advance it one event at a time.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

__all__ = ["Event", "PeriodicProcess", "SimProcess", "SimulationKernel"]


class Event:
    """One scheduled occurrence; ordered by ``(time, seq)``."""

    __slots__ = ("time", "seq", "kind", "data", "cancelled")

    def __init__(self, time: float, seq: int, kind: str, data: Dict[str, Any]) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.data = data
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(t={self.time:.6f}, seq={self.seq}, kind={self.kind!r})"


@runtime_checkable
class SimProcess(Protocol):
    """A co-simulated component that computes its own next event time.

    The kernel polls ``next_event_time`` to find the process's next event and
    calls ``handle`` once the clock has advanced there.  Returning ``None``
    means the process currently has nothing to do.
    """

    def next_event_time(self, now: float) -> Optional[float]:
        ...

    def handle(self, now: float) -> None:
        ...


class PeriodicProcess:
    """A polled process that fires a callback on a fixed time grid.

    Shared by components that need a periodic tick (the platform autoscaler's
    evaluation interval, the fleet's utilisation sampler): ``next_event_time``
    is the next grid point, ``handle`` invokes the callback and advances on
    the grid (not ``now + interval``), so tick times stay exact multiples of
    the interval regardless of clock jitter.

    Periodic processes never run out of ticks; they are marked ``periodic``
    so :meth:`SimulationKernel.run` without an ``until`` bound still
    terminates once the heap drains and only periodic ticks remain.
    """

    periodic = True

    def __init__(self, interval_s: float, callback: Callable[[float], None], start_s: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self._callback = callback
        self._next_tick_s = float(start_s)

    def next_event_time(self, now: float) -> Optional[float]:
        return self._next_tick_s

    def handle(self, now: float) -> None:
        self._callback(now)
        self._next_tick_s += self.interval_s


class SimulationKernel:
    """Deterministic discrete-event loop: heap-scheduled events + polled processes."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = float(start_s)
        self._handlers: Dict[str, Callable[[Event], None]] = {}
        self._default_handler: Optional[Callable[[Event], None]] = None
        self._processes: List[SimProcess] = []
        self._paused = False
        # Memoised result of the last peek(): (best process or None, its time).
        # Polling a process's next_event_time can be expensive (the scheduler
        # engine scans tasks, grids and quota budgets), and the peek/step pair
        # used by run loops would otherwise poll twice per event.  Invalidated
        # by schedule/cancel/add_process and consumed by step().
        self._poll_cache: Optional[Tuple[Optional[SimProcess], float]] = None
        # Dormant profiling slot (see repro.obs.profile): None keeps step(),
        # cancel() and _prune() on the exact pre-profiling paths.
        self._profiler = None

    def set_profiler(self, profiler) -> None:
        """Install an opt-in event profiler (``None`` restores the fast path)."""
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Clock and registration
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register the handler for events of ``kind`` (one handler per kind)."""
        self._handlers[kind] = handler

    def on_default(self, handler: Callable[[Event], None]) -> None:
        """Handler for kinds with no specific registration."""
        self._default_handler = handler

    def add_process(self, process: SimProcess) -> None:
        """Register a polled co-simulation process (kept in registration order)."""
        self._processes.append(process)
        self._poll_cache = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, time_s: float, kind: str, data: Optional[Dict[str, Any]] = None) -> Event:
        """Schedule an event at absolute time ``time_s``; returns a cancellable handle."""
        event = Event(float(time_s), next(self._seq), kind, data or {})
        heapq.heappush(self._heap, event)
        self._poll_cache = None
        return event

    def schedule_in(self, delay_s: float, kind: str, data: Optional[Dict[str, Any]] = None) -> Event:
        """Schedule an event ``delay_s`` seconds after the current time."""
        return self.schedule(self._now + delay_s, kind, data)

    def cancel(self, event: Event) -> None:
        """Mark a scheduled event as cancelled; it is skipped when popped."""
        event.cancelled = True
        self._poll_cache = None
        if self._profiler is not None:
            self._profiler.record_cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _prune(self) -> None:
        if self._profiler is None:
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            return
        pruned = 0
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            pruned += 1
        if pruned:
            self._profiler.record_prunes(pruned)

    def _poll_processes(self) -> Tuple[Optional[SimProcess], float]:
        """The registered process with the earliest next event (cached until consumed)."""
        if self._poll_cache is None:
            best: Optional[SimProcess] = None
            best_time = float("inf")
            for process in self._processes:
                t = process.next_event_time(self._now)
                if t is not None and t < best_time:
                    best = process
                    best_time = t
            self._poll_cache = (best, best_time)
        return self._poll_cache

    def peek(self) -> Optional[float]:
        """Time of the next event (heap or process) without executing it."""
        self._prune()
        process, process_time = self._poll_processes()
        heap_time = self._heap[0].time if self._heap else None
        if heap_time is None and process is None:
            return None
        if process is None:
            return heap_time
        if heap_time is None:
            return process_time
        return min(heap_time, process_time)

    def step(self) -> Optional[Event]:
        """Execute the single next event.

        Advances the clock and dispatches the event's handler (heap events),
        or calls ``handle`` on the owning process (polled events, returned as
        a synthetic ``Event`` of kind ``"process"``).  Returns ``None`` when
        nothing is pending.  Heap events win exact-time ties against polled
        processes; among processes, registration order breaks ties.
        """
        self._prune()
        process, process_time = self._poll_processes()
        heap_time = self._heap[0].time if self._heap else None
        if heap_time is None and process is None:
            return None
        profiler = self._profiler
        if process is None or (heap_time is not None and heap_time <= process_time):
            event = heapq.heappop(self._heap)
            self._poll_cache = None
            self._now = max(self._now, event.time)
            handler = self._handlers.get(event.kind, self._default_handler)
            if handler is None:
                raise KeyError(f"no handler registered for event kind {event.kind!r}")
            if profiler is None:
                handler(event)
            else:
                start = perf_counter()
                handler(event)
                profiler.record_event(event.kind, len(self._heap), perf_counter() - start)
            return event
        self._poll_cache = None
        # Hand the process the *raw* polled time: a process whose
        # next_event_time regressed behind the clock must get the chance to
        # detect it (the scheduler engine raises on backwards time) rather
        # than having the kernel silently clamp the error away.
        self._now = max(self._now, process_time)
        if profiler is None:
            process.handle(process_time)
        else:
            start = perf_counter()
            process.handle(process_time)
            profiler.record_process(type(process).__name__, perf_counter() - start)
        return Event(self._now, -1, "process", {"process": process})

    def pause(self) -> None:
        """Stop the current ``run`` after the in-flight event (for co-simulation)."""
        self._paused = True

    def _only_periodic_pending(self) -> bool:
        """True when the heap is empty and every pending process tick is periodic.

        An unbounded ``run()`` must still terminate for simulators that carry
        periodic processes (autoscaler ticks, fleet samplers) -- those tick
        forever by design, so once nothing else is pending there is no more
        work to do.
        """
        self._prune()
        if self._heap:
            return False
        pending = [p for p in self._processes if p.next_event_time(self._now) is not None]
        return bool(pending) and all(getattr(p, "periodic", False) for p in pending)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Execute events in order; returns the number executed.

        Stops when the queue drains, the next event lies strictly beyond
        ``until``, ``max_events`` events have been executed, ``stop()``
        returns true after an event, or :meth:`pause` was called from a
        handler.  Events beyond ``until`` stay queued for a later ``run``.
        Without an ``until`` bound, the run also stops once only *periodic*
        processes (see :class:`PeriodicProcess`) have pending ticks -- they
        never drain on their own.
        """
        self._paused = False
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek()
            if next_time is None or (until is not None and next_time > until):
                break
            if until is None and self._only_periodic_pending():
                break
            self.step()
            executed += 1
            if self._paused:
                break
            if stop is not None and stop():
                break
        return executed
