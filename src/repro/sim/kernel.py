"""The discrete-event simulation kernel shared by every simulator in the repo.

The kernel owns the clock and decides what happens next.  Two kinds of
participants coexist:

- **Scheduled events**: pushed onto a binary heap with an absolute firing
  time.  A monotonically increasing sequence number breaks time ties, so two
  events scheduled for the same instant always fire in scheduling order --
  this is what makes runs deterministic regardless of heap internals.
- **Polled processes**: objects that compute their own next event time on
  demand (e.g. the CPU-bandwidth scheduler, whose next event depends on
  mutable state such as remaining quota).  The kernel asks each registered
  process for its next event time and interleaves it with the heap.

The clock never moves backwards: it advances to ``max(now, event.time)`` when
an event fires.  ``peek``/``step``/``pause`` let a host embed the kernel in a
larger co-simulation and advance it one event at a time.

``run`` is the hot path: it fuses the prune/poll/pick/dispatch cycle that
``peek`` + ``step`` would otherwise each repeat per event, so a
million-event run does each piece of bookkeeping exactly once per event.
The event *order* it produces is identical to repeated ``step()`` calls --
the determinism contract every replay-fingerprint test pins down.

Bulk producers (the batched arrival streams of :mod:`repro.sim.arrivals`)
use :meth:`SimulationKernel.reserve_seqs` + :meth:`schedule_at_seq` to hold
a block of sequence numbers up front and fill it in chunks later: events
scheduled lazily keep the exact tie-break rank they would have had if they
had all been pushed eagerly before the run started.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

__all__ = ["Event", "PeriodicProcess", "SimProcess", "SimulationKernel"]

#: Poll result when no process is pending; shared so the common
#: no-processes case never allocates.
_NO_PROCESS: Tuple[None, float] = (None, float("inf"))


class Event:
    """One scheduled occurrence; ordered by ``(time, seq)``.

    Internally the kernel keeps ``(time, seq, event)`` tuples on its heap:
    sequence numbers are unique, so heap sifts resolve on the first two
    C-compared fields and never call back into Python -- ``__lt__`` below
    exists for API compatibility (sorting event handles in tests), not for
    the hot path.
    """

    __slots__ = ("time", "seq", "kind", "data", "cancelled")

    def __init__(self, time: float, seq: int, kind: str, data: Dict[str, Any]) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.data = data
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        # Equivalent to (time, seq) < (other.time, other.seq) without
        # allocating the tuples: heap sifts call this O(log n) times per
        # push/pop, which makes it one of the hottest functions in a run.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(t={self.time:.6f}, seq={self.seq}, kind={self.kind!r})"


@runtime_checkable
class SimProcess(Protocol):
    """A co-simulated component that computes its own next event time.

    The kernel polls ``next_event_time`` to find the process's next event and
    calls ``handle`` once the clock has advanced there.  Returning ``None``
    means the process currently has nothing to do.
    """

    def next_event_time(self, now: float) -> Optional[float]:
        ...

    def handle(self, now: float) -> None:
        ...


class PeriodicProcess:
    """A polled process that fires a callback on a fixed time grid.

    Shared by components that need a periodic tick (the platform autoscaler's
    evaluation interval, the fleet's utilisation sampler): ``next_event_time``
    is the next grid point, ``handle`` invokes the callback and advances on
    the grid (not ``now + interval``), so tick times stay exact multiples of
    the interval regardless of clock jitter.

    Periodic processes never run out of ticks; they are marked ``periodic``
    so :meth:`SimulationKernel.run` without an ``until`` bound still
    terminates once the heap drains and only periodic ticks remain.
    """

    periodic = True

    def __init__(self, interval_s: float, callback: Callable[[float], None], start_s: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self._callback = callback
        self._next_tick_s = float(start_s)

    def next_event_time(self, now: float) -> Optional[float]:
        return self._next_tick_s

    def handle(self, now: float) -> None:
        self._callback(now)
        self._next_tick_s += self.interval_s


class SimulationKernel:
    """Deterministic discrete-event loop: heap-scheduled events + polled processes."""

    def __init__(self, start_s: float = 0.0) -> None:
        #: Min-heap of (time, seq, event): tuple comparison is C-speed and,
        #: with unique seqs, never falls through to comparing the events.
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq_next = 0
        self._now = float(start_s)
        self._handlers: Dict[str, Callable[[Event], None]] = {}
        self._default_handler: Optional[Callable[[Event], None]] = None
        self._processes: List[SimProcess] = []
        self._paused = False
        # Memoised result of the last peek(): (best process or None, its time).
        # Polling a process's next_event_time can be expensive (the scheduler
        # engine scans tasks, grids and quota budgets), and the peek/step pair
        # used by run loops would otherwise poll twice per event.  Invalidated
        # by schedule/cancel/add_process and consumed by step().
        self._poll_cache: Optional[Tuple[Optional[SimProcess], float]] = None
        # Dormant profiling slot (see repro.obs.profile): None keeps step(),
        # cancel() and _prune() on the exact pre-profiling paths.
        self._profiler = None

    def set_profiler(self, profiler) -> None:
        """Install an opt-in event profiler (``None`` restores the fast path)."""
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Clock and registration
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register the handler for events of ``kind`` (one handler per kind)."""
        self._handlers[kind] = handler

    def on_default(self, handler: Callable[[Event], None]) -> None:
        """Handler for kinds with no specific registration."""
        self._default_handler = handler

    def add_process(self, process: SimProcess) -> None:
        """Register a polled co-simulation process (kept in registration order)."""
        self._processes.append(process)
        self._poll_cache = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, time_s: float, kind: str, data: Optional[Dict[str, Any]] = None) -> Event:
        """Schedule an event at absolute time ``time_s``; returns a cancellable handle.

        ``data=None`` shares one immutable empty mapping across events (the
        payload is a read-only contract; pass an explicit dict to attach
        mutable state).
        """
        if time_s.__class__ is not float:
            time_s = float(time_s)
        seq = self._seq_next
        self._seq_next = seq + 1
        # Events are built via __new__ + attribute stores here and in the
        # other schedule_* methods: one Event per simulated occurrence makes
        # construction itself a hot path, and skipping the __init__ frame
        # is measurably cheaper.
        event = _EVENT_NEW(Event)
        event.time = time_s
        event.seq = seq
        event.kind = kind
        event.data = _EMPTY_DATA if data is None else data
        event.cancelled = False
        _heappush(self._heap, (time_s, seq, event))
        self._poll_cache = None
        return event

    def schedule_in(self, delay_s: float, kind: str, data: Optional[Dict[str, Any]] = None) -> Event:
        """Schedule an event ``delay_s`` seconds after the current time."""
        time_s = self._now + delay_s
        if time_s.__class__ is not float:
            # e.g. numpy-float retry backoffs: coerce so event times (and the
            # replay fingerprints derived from them) stay builtin floats.
            time_s = float(time_s)
        seq = self._seq_next
        self._seq_next = seq + 1
        event = _EVENT_NEW(Event)
        event.time = time_s
        event.seq = seq
        event.kind = kind
        event.data = _EMPTY_DATA if data is None else data
        event.cancelled = False
        _heappush(self._heap, (time_s, seq, event))
        self._poll_cache = None
        return event

    def reserve_seqs(self, count: int) -> int:
        """Reserve a contiguous block of ``count`` sequence numbers; returns the first.

        A bulk producer that knows how many events it will eventually schedule
        claims its tie-break ranks up front and fills them in later with
        :meth:`schedule_at_seq`.  Events scheduled *after* the reservation get
        larger sequence numbers, exactly as if the reserved block had been
        pushed eagerly first -- which is what keeps chunked arrival streaming
        byte-identical to eager scheduling.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        start = self._seq_next
        self._seq_next += count
        return start

    def schedule_at_seq(
        self, time_s: float, seq: int, kind: str, data: Optional[Dict[str, Any]] = None
    ) -> Event:
        """Schedule an event with a pre-reserved sequence number.

        ``seq`` must come from :meth:`reserve_seqs` and ``time_s`` must not
        lie in the past (the event would otherwise fire late yet rank early).
        ``data=None`` shares one immutable empty mapping across events --
        callers must not mutate the payload of events scheduled this way.
        """
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule reserved-seq event in the past ({time_s} < {self._now})"
            )
        if time_s.__class__ is not float:
            time_s = float(time_s)
        event = _EVENT_NEW(Event)
        event.time = time_s
        event.seq = seq
        event.kind = kind
        event.data = _EMPTY_DATA if data is None else data
        event.cancelled = False
        _heappush(self._heap, (time_s, seq, event))
        self._poll_cache = None
        return event

    def cancel(self, event: Event) -> None:
        """Mark a scheduled event as cancelled; it is skipped when popped."""
        event.cancelled = True
        self._poll_cache = None
        if self._profiler is not None:
            self._profiler.record_cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _prune(self) -> None:
        heap = self._heap
        if self._profiler is None:
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
            return
        pruned = 0
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            pruned += 1
        if pruned:
            self._profiler.record_prunes(pruned)

    def _poll_processes(self) -> Tuple[Optional[SimProcess], float]:
        """The registered process with the earliest next event (cached until consumed)."""
        cache = self._poll_cache
        if cache is None:
            if not self._processes:
                cache = _NO_PROCESS
            else:
                best: Optional[SimProcess] = None
                best_time = float("inf")
                for process in self._processes:
                    t = process.next_event_time(self._now)
                    if t is not None and t < best_time:
                        best = process
                        best_time = t
                cache = (best, best_time)
            self._poll_cache = cache
        return cache

    def peek(self) -> Optional[float]:
        """Time of the next event (heap or process) without executing it."""
        self._prune()
        process, process_time = self._poll_processes()
        heap_time = self._heap[0][0] if self._heap else None
        if heap_time is None and process is None:
            return None
        if process is None:
            return heap_time
        if heap_time is None:
            return process_time
        return min(heap_time, process_time)

    def step(self) -> Optional[Event]:
        """Execute the single next event.

        Advances the clock and dispatches the event's handler (heap events),
        or calls ``handle`` on the owning process (polled events, returned as
        a synthetic ``Event`` of kind ``"process"``).  Returns ``None`` when
        nothing is pending.  Heap events win exact-time ties against polled
        processes; among processes, registration order breaks ties.
        """
        self._prune()
        process, process_time = self._poll_processes()
        heap_time = self._heap[0][0] if self._heap else None
        if heap_time is None and process is None:
            return None
        if process is None or (heap_time is not None and heap_time <= process_time):
            return self._dispatch_heap_event()
        self._dispatch_process(process, process_time)
        return Event(self._now, -1, "process", {"process": process})

    def _dispatch_heap_event(self) -> Event:
        """Pop and dispatch the head heap event (already pruned)."""
        heap = self._heap
        event = heapq.heappop(heap)[2]
        self._poll_cache = None
        if event.time > self._now:
            self._now = event.time
        handler = self._handlers.get(event.kind, self._default_handler)
        if handler is None:
            raise KeyError(f"no handler registered for event kind {event.kind!r}")
        profiler = self._profiler
        if profiler is None:
            handler(event)
        else:
            start = perf_counter()
            handler(event)
            profiler.record_event(event.kind, len(heap), perf_counter() - start)
        return event

    def _dispatch_process(self, process: SimProcess, process_time: float) -> None:
        """Advance the clock to a polled process's event and let it handle it."""
        self._poll_cache = None
        # Hand the process the *raw* polled time: a process whose
        # next_event_time regressed behind the clock must get the chance to
        # detect it (the scheduler engine raises on backwards time) rather
        # than having the kernel silently clamp the error away.
        if process_time > self._now:
            self._now = process_time
        profiler = self._profiler
        if profiler is None:
            process.handle(process_time)
        else:
            start = perf_counter()
            process.handle(process_time)
            profiler.record_process(type(process).__name__, perf_counter() - start)

    def pause(self) -> None:
        """Stop the current ``run`` after the in-flight event (for co-simulation)."""
        self._paused = True

    def _only_periodic_pending(self) -> bool:
        """True when the heap is empty and every pending process tick is periodic.

        An unbounded ``run()`` must still terminate for simulators that carry
        periodic processes (autoscaler ticks, fleet samplers) -- those tick
        forever by design, so once nothing else is pending there is no more
        work to do.
        """
        self._prune()
        if self._heap:
            return False
        pending = [p for p in self._processes if p.next_event_time(self._now) is not None]
        return bool(pending) and all(getattr(p, "periodic", False) for p in pending)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Execute events in order; returns the number executed.

        Stops when the queue drains, the next event lies strictly beyond
        ``until``, ``max_events`` events have been executed, ``stop()``
        returns true after an event, or :meth:`pause` was called from a
        handler.  Events beyond ``until`` stay queued for a later ``run``.
        Without an ``until`` bound, the run also stops once only *periodic*
        processes (see :class:`PeriodicProcess`) have pending ticks -- they
        never drain on their own.

        This is the hot loop: prune, poll, pick and dispatch are fused into
        one pass per event (``peek()`` + ``step()`` would each redo the first
        two).  Kernels with no polled processes -- the overwhelmingly common
        shape -- run a further-specialized inner loop with the prune, bound
        check and dispatch inlined.  Event order is identical to stepping
        one event at a time.
        """
        self._paused = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        while True:
            if max_events is not None and executed >= max_events:
                break
            if not self._processes:
                # Fast loop: nothing to poll, so the next event is always the
                # heap head.  The head is popped *before* the ``until`` bound
                # check and re-pushed in the (at most once per run) case where
                # it lies beyond the bound -- cheaper than peeking every
                # event.  Falls back to the general loop only if a handler
                # registers a process mid-run (which also invalidates the
                # hoisted profiler/handler locals, so they are re-read).
                handlers = self._handlers
                processes = self._processes
                profiler = self._profiler
                unbounded = max_events is None
                if profiler is None:
                    while heap:
                        head = heappop(heap)
                        event = head[2]
                        if event.cancelled:
                            continue
                        time_s = head[0]
                        if until is not None and time_s > until:
                            heappush(heap, head)
                            return executed
                        if time_s > self._now:
                            self._now = time_s
                        handler = handlers.get(event.kind)
                        if handler is None:
                            handler = self._default_handler
                            if handler is None:
                                raise KeyError(
                                    f"no handler registered for event kind {event.kind!r}"
                                )
                        handler(event)
                        executed += 1
                        if not unbounded and executed >= max_events:
                            return executed
                        if self._paused:
                            return executed
                        if stop is not None and stop():
                            return executed
                        if processes:
                            break
                    else:
                        return executed
                    continue
                # Profiled twin of the loop above: the per-event tally is
                # inlined (dict get + list update on the profiler's own
                # stores) because a record_event() call per event costs more
                # than the tally itself.  The heap-depth maximum runs on a
                # local and is merged back in the ``finally`` so every exit
                # path (including handler exceptions) leaves the profiler
                # consistent.
                by_kind = profiler._by_kind
                stats_of = by_kind.get
                max_depth = profiler.max_heap_depth
                try:
                    while heap:
                        head = heappop(heap)
                        event = head[2]
                        if event.cancelled:
                            profiler.prunes += 1
                            continue
                        time_s = head[0]
                        if until is not None and time_s > until:
                            heappush(heap, head)
                            return executed
                        if time_s > self._now:
                            self._now = time_s
                        kind = event.kind
                        handler = handlers.get(kind)
                        if handler is None:
                            handler = self._default_handler
                            if handler is None:
                                raise KeyError(
                                    f"no handler registered for event kind {kind!r}"
                                )
                        start = perf_counter()
                        handler(event)
                        wall_s = perf_counter() - start
                        stats = stats_of(kind)
                        if stats is None:
                            by_kind[kind] = [1, wall_s]
                        else:
                            stats[0] += 1
                            stats[1] += wall_s
                        depth = len(heap)
                        if depth > max_depth:
                            max_depth = depth
                        executed += 1
                        if not unbounded and executed >= max_events:
                            return executed
                        if self._paused:
                            return executed
                        if stop is not None and stop():
                            return executed
                        if processes:
                            break
                    else:
                        return executed
                finally:
                    if max_depth > profiler.max_heap_depth:
                        profiler.max_heap_depth = max_depth
                continue
            self._prune()
            process, process_time = self._poll_processes()
            if heap:
                head_time = heap[0][0]
                if process is None or head_time <= process_time:
                    next_time, next_is_heap = head_time, True
                else:
                    next_time, next_is_heap = process_time, False
            elif process is not None:
                next_time, next_is_heap = process_time, False
            else:
                break
            if until is not None:
                if next_time > until:
                    break
            elif not heap and self._only_periodic_pending():
                break
            if next_is_heap:
                self._dispatch_heap_event()
            else:
                self._dispatch_process(process, process_time)  # type: ignore[arg-type]
            executed += 1
            if self._paused:
                break
            if stop is not None and stop():
                break
        return executed


#: Shared payload for bulk-scheduled events with no data.  Never mutate.
_EMPTY_DATA: Dict[str, Any] = {}

#: Hot-path aliases: module-level loads are cheaper than attribute chains
#: inside the per-event scheduling methods.
_EVENT_NEW = Event.__new__
_heappush = heapq.heappush
