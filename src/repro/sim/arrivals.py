"""Batched arrival generation, streamed into the kernel in bounded chunks.

Scheduling one heap event per request up front is what caps simulation scale:
a million-request run would materialize a million-entry list *and* a
million-entry heap before the first event fires.  This module replaces that
with two pieces:

- :class:`ArrivalSource` -- a finite, sorted arrival-time sequence that is
  *generated* in numpy-vectorized chunks instead of one scalar RNG call per
  request.  The Poisson source draws whole blocks of exponentials through the
  same ``np.random.default_rng(seed)`` stream the scalar loop used, and a
  carried cumulative sum keeps every produced time **bit-identical** to the
  one-draw-at-a-time implementation (same draws, same left-to-right float
  additions).
- :class:`ArrivalStream` -- feeds a source's events into a
  :class:`~repro.sim.kernel.SimulationKernel` one chunk at a time.  It
  reserves the full block of tie-break sequence numbers up front
  (:meth:`~repro.sim.kernel.SimulationKernel.reserve_seqs`), then schedules
  lazily: the last event of each chunk carries a refill marker, and the
  arrival handler pushes the next chunk *synchronously inside that event*,
  before the kernel can pop anything later.  Arrivals are monotone and
  reserved seqs preserve rank, so the kernel's pop order -- and therefore
  every downstream output -- is byte-identical to eager scheduling, while
  the heap never holds more than one chunk of pending arrivals.

The determinism contract is pinned by the property tests in
``tests/test_sim_arrivals.py``: identical fingerprints across chunk sizes,
seeds and horizons, with and without retry re-injection.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArrivalSource",
    "ArrivalStream",
    "ConstantRateSource",
    "DEFAULT_CHUNK_SIZE",
    "PoissonSource",
]

#: Default number of arrivals generated and scheduled per chunk.  Large enough
#: to amortize the numpy call overhead, small enough that pending arrivals
#: stay a rounding error next to the rest of the heap.
DEFAULT_CHUNK_SIZE = 4096


class ArrivalSource:
    """A finite, sorted sequence of arrival times, generable in chunks.

    Implementations must yield chunks of plain python floats in
    non-decreasing order, be replayable (every ``chunks()`` call restarts
    from the beginning), and produce the *same concatenated sequence for
    every chunk size* -- that invariance is what lets the stream layer pick
    its batch size freely without moving an event.
    """

    def count(self) -> int:
        """Total number of arrivals this source will produce."""
        raise NotImplementedError

    def last_arrival_s(self) -> float:
        """The final arrival time (``0.0`` for an empty source)."""
        raise NotImplementedError

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[List[float]]:
        """Yield the arrival times as non-empty lists of at most ``chunk_size``."""
        raise NotImplementedError

    def times(self) -> List[float]:
        """Materialize the full arrival list (for small runs and tests)."""
        out: List[float] = []
        for chunk in self.chunks():
            out.extend(chunk)
        return out


class ConstantRateSource(ArrivalSource):
    """Evenly spaced arrivals at ``rps`` requests/second for ``duration_s``.

    Chunk ``i`` of the sequence is ``start_s + k / rps`` for the ``k`` in the
    chunk's index range -- identical floats to
    :func:`repro.workloads.traffic.constant_rate_arrivals`, computed as one
    vectorized expression per chunk.
    """

    __slots__ = ("rps", "duration_s", "start_s", "_count", "_interval")

    def __init__(self, rps: float, duration_s: float, start_s: float = 0.0) -> None:
        if rps <= 0:
            raise ValueError("rps must be positive")
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        self.rps = rps
        self.duration_s = duration_s
        self.start_s = start_s
        self._count = int(round(rps * duration_s))
        self._interval = 1.0 / rps

    def count(self) -> int:
        return self._count

    def last_arrival_s(self) -> float:
        if not self._count:
            return 0.0
        return self.start_s + (self._count - 1) * self._interval

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[List[float]]:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for low in range(0, self._count, chunk_size):
            high = min(low + chunk_size, self._count)
            indices = np.arange(low, high, dtype=np.float64)
            yield (self.start_s + indices * self._interval).tolist()


class PoissonSource(ArrivalSource):
    """Poisson-process arrivals at mean rate ``rps`` over ``duration_s``.

    Bit-identical to :func:`repro.workloads.traffic.poisson_arrivals` for the
    same ``seed``: block draws from ``np.random.default_rng(seed)`` consume
    the exact value stream the scalar one-draw-per-request loop consumed, and
    the carried ``np.cumsum`` performs the same left-to-right additions as
    the scalar ``t += draw`` accumulation.  The arrival *count* of a Poisson
    source is not known analytically, so the first call that needs it runs a
    counting pass over the chunk generator (discarding the arrays); the
    scheduling pass then regenerates the identical sequence from the seed.
    """

    __slots__ = ("rps", "duration_s", "seed", "start_s", "_count", "_last")

    #: Chunk size of the internal counting pass (independent of the caller's
    #: scheduling chunk size -- the sequence is chunk-size invariant).
    _SCAN_CHUNK = 8192

    def __init__(self, rps: float, duration_s: float, seed: int = 0, start_s: float = 0.0) -> None:
        if rps <= 0:
            raise ValueError("rps must be positive")
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        self.rps = rps
        self.duration_s = duration_s
        self.seed = seed
        self.start_s = start_s
        self._count: Optional[int] = None
        self._last = 0.0

    def _raw_chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield non-empty float64 arrays of in-horizon arrival times."""
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / self.rps
        t = self.start_s
        end = self.start_s + self.duration_s
        while True:
            draws = rng.exponential(scale, size=chunk_size)
            # Prepending the carry before cumsum reproduces the scalar
            # accumulation exactly: element k is ((t + d1) + d2) + ... + dk.
            times = np.cumsum(np.concatenate(((t,), draws)))[1:]
            cut = int(np.searchsorted(times, end, side="left"))
            if cut < times.shape[0]:
                # The (cut+1)-th draw crossed the horizon: the scalar loop
                # breaks on `t >= end` without emitting it.
                if cut:
                    yield times[:cut]
                return
            yield times
            t = float(times[-1])

    def _ensure_scanned(self) -> None:
        if self._count is not None:
            return
        count = 0
        last = 0.0
        for times in self._raw_chunks(self._SCAN_CHUNK):
            count += times.shape[0]
            last = float(times[-1])
        self._count = count
        self._last = last

    def count(self) -> int:
        self._ensure_scanned()
        assert self._count is not None
        return self._count

    def last_arrival_s(self) -> float:
        self._ensure_scanned()
        return self._last

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[List[float]]:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for times in self._raw_chunks(chunk_size):
            yield times.tolist()


class ArrivalStream:
    """Feeds an :class:`ArrivalSource` into a kernel one chunk at a time.

    ``attach`` reserves the source's full block of sequence numbers and
    schedules the first chunk.  Every chunk's last event (except the final
    chunk's) carries ``{"stream": self}``; the consuming arrival handler
    calls :meth:`push_next_chunk` while handling that event, which schedules
    the next chunk *before the kernel pops anything after it*.  Because
    arrivals are non-decreasing in time and reserved seqs preserve the
    eager tie-break ranks, the kernel's dispatch order is identical to
    having pushed every arrival up front -- while the heap holds at most
    ``chunk_size`` pending arrivals from this stream.
    """

    __slots__ = ("source", "chunk_size", "_kernel", "_kind", "_chunks", "_next_seq", "_remaining")

    def __init__(self, source: ArrivalSource, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.source = source
        self.chunk_size = int(chunk_size)
        self._kernel = None
        self._kind = ""
        self._chunks: Optional[Iterator[List[float]]] = None
        self._next_seq = 0
        self._remaining = 0

    def attach(self, kernel, kind: str) -> int:
        """Reserve every arrival's tie-break rank and push the first chunk.

        Returns the total number of arrivals the stream will schedule.
        """
        if self._kernel is not None:
            raise RuntimeError("ArrivalStream is already attached to a kernel")
        count = self.source.count()
        self._kernel = kernel
        self._kind = kind
        self._next_seq = kernel.reserve_seqs(count)
        self._remaining = count
        self._chunks = self.source.chunks(self.chunk_size)
        self.push_next_chunk()
        return count

    @property
    def pending(self) -> int:
        """Arrivals not yet scheduled onto the kernel heap."""
        return self._remaining

    def push_next_chunk(self) -> int:
        """Schedule the next chunk of arrivals; returns how many were pushed."""
        if self._chunks is None:
            raise RuntimeError("ArrivalStream.attach() must be called first")
        chunk = next(self._chunks, None)
        if not chunk:
            return 0
        kernel = self._kernel
        kind = self._kind
        seq = self._next_seq
        pushed = len(chunk)
        self._remaining -= pushed
        # Only the last event of a *non-final* chunk needs the refill marker;
        # everything else shares the kernel's immutable empty payload.
        marker_index = pushed - 1 if self._remaining > 0 else -1
        for offset, time_s in enumerate(chunk):
            data: Optional[Dict[str, Any]] = {"stream": self} if offset == marker_index else None
            kernel.schedule_at_seq(time_s, seq + offset, kind, data)
        self._next_seq = seq + pushed
        return pushed
