"""Structured result store the sweep orchestrator collects rows into.

A :class:`ResultStore` is a thin, dependency-free container over the
``List[Dict]`` row shape every experiment in this repo already produces, with
the few operations sweeps actually need: filtering, grouping, per-group
summaries, and CSV export for downstream plotting.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

__all__ = ["ResultStore", "json_default"]

Row = Dict[str, object]


def json_default(value: object) -> object:
    """``json.dumps`` fallback for result rows: numpy scalars become Python scalars.

    Result rows are scalar-valued (summaries produce int/float/str/bool),
    but numpy types occasionally leak through; ``.item()`` converts them to
    the Python scalar whose ``repr`` the CSV writer would have produced, so
    JSON-journaled rows stay byte-identical on replay.  Anything else is a
    genuine error -- silently stringifying it would *change* replayed CSVs.
    """
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"result rows must hold scalars; cannot serialize {type(value).__name__}: {value!r}")


class ResultStore:
    """An ordered collection of result rows (dicts) from a scenario sweep."""

    def __init__(self, rows: Optional[Iterable[Mapping[str, object]]] = None) -> None:
        self._rows: List[Row] = [dict(row) for row in rows] if rows is not None else []

    # ------------------------------------------------------------------
    # Collection basics
    # ------------------------------------------------------------------

    def append(self, row: Mapping[str, object]) -> None:
        self._rows.append(dict(row))

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.append(row)

    @property
    def rows(self) -> List[Row]:
        """The rows, in insertion (scenario) order."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultStore):
            return self._rows == other._rows
        return NotImplemented

    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self._rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def filter(self, **criteria: object) -> "ResultStore":
        """Rows whose fields equal every given ``key=value`` criterion."""
        return ResultStore(
            row for row in self._rows if all(row.get(k) == v for k, v in criteria.items())
        )

    def unique(self, key: str) -> List[object]:
        """Distinct values of ``key``, in first-seen order."""
        seen: Dict[object, None] = {}
        for row in self._rows:
            if key in row:
                seen.setdefault(row[key], None)
        return list(seen)

    def group_by(self, key: str) -> Dict[object, "ResultStore"]:
        """Split rows into per-value stores, preserving row order."""
        groups: Dict[object, ResultStore] = {}
        for row in self._rows:
            groups.setdefault(row.get(key), ResultStore()).append(row)
        return groups

    def summarize(self, group_key: str, value_key: str) -> List[Row]:
        """Per-group count/mean/min/max of a numeric field."""
        out: List[Row] = []
        for group, store in self.group_by(group_key).items():
            values = [
                float(row[value_key])  # type: ignore[arg-type]
                for row in store
                if isinstance(row.get(value_key), (int, float))
                and not math.isnan(float(row[value_key]))  # type: ignore[arg-type]
            ]
            out.append(
                {
                    group_key: group,
                    "count": len(values),
                    f"mean_{value_key}": sum(values) / len(values) if values else float("nan"),
                    f"min_{value_key}": min(values) if values else float("nan"),
                    f"max_{value_key}": max(values) if values else float("nan"),
                }
            )
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_csv(self, path: str, columns: Optional[Sequence[str]] = None) -> int:
        """Write the rows as CSV; returns the number of data rows written."""
        fieldnames = list(columns) if columns is not None else self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
            writer.writeheader()
            for row in self._rows:
                writer.writerow(row)
        return len(self._rows)

    def to_jsonl(self, path: str) -> int:
        """Write one JSON object per row; returns the number of rows written.

        Unlike CSV, JSONL preserves types exactly (int vs float vs str, NaN,
        missing keys stay missing) -- the same encoding the sweep checkpoint
        journal uses -- so :meth:`from_jsonl` is a lossless round-trip.
        """
        with open(path, "w") as handle:
            for row in self._rows:
                handle.write(json.dumps(row, default=json_default) + "\n")
        return len(self._rows)

    @classmethod
    def from_jsonl(cls, path: str) -> "ResultStore":
        """Read a store back from a :meth:`to_jsonl` file (blank lines skipped)."""
        with open(path, "r") as handle:
            return cls(json.loads(line) for line in handle if line.strip())

    @classmethod
    def from_csv(cls, path: str) -> "ResultStore":
        """Read a store back from a :meth:`to_csv` file.

        Values parse back to ``int``/``float`` where they look numeric and
        stay strings otherwise (CSV does not preserve types); column order
        follows the file header.  Parsing is *round-trip safe* for the
        identifier shapes this repo produces: a value only becomes an ``int``
        if the int prints back to exactly the same text, so zero-padded
        counters (``"00042"``, the tail of fleet host names and namespaced
        request/sandbox ids) and underscore-grouped digits (``"1_000"``)
        survive as strings instead of silently collapsing to numbers.

        Columns a row does not have stay *missing keys*, never ``NaN`` (or a
        crash): cells written as ``""`` for keys a row never had are dropped,
        and so are cells a row simply does not reach -- rows shorter than the
        header, which ``csv.DictReader`` reports as ``None``, as happens when
        a CSV written before a column existed (e.g. a pre-PR-4 sweep without
        ``failed_requests``) is re-read under a newer, wider header.  Cells
        beyond the header (``DictReader``'s ``None`` rest-key) are ignored.
        Consumers must use ``row.get(...)`` / ``"key" in row`` to distinguish
        "not recorded" from any recorded value.
        """
        def _parse(value: str) -> object:
            if "_" in value:
                # int()/float() accept PEP-515 digit grouping ("1_000"), which
                # does not survive a write-back; keep such values as text.
                return value
            try:
                as_int = int(value)
            except ValueError:
                pass
            else:
                # Reject non-canonical spellings ("007", "+5", " 5"): they
                # parse, but str(int(...)) would not reproduce the original.
                return as_int if str(as_int) == value else value
            try:
                return float(value)
            except ValueError:
                return value

        with open(path, "r", newline="") as handle:
            reader = csv.DictReader(handle)
            return cls(
                {
                    key: _parse(value)
                    for key, value in row.items()
                    if key is not None and value is not None and value != ""
                }
                for row in reader
            )
