"""Checkpoint/resume journal for the scenario-sweep orchestrator.

A :class:`SweepJournal` is an append-only JSONL file with one line per
*completed* grid point::

    {"scenario_id": "platform=aws_lambda_like/rps=1.5", "seed": 123..., "rows": [{...}]}

``run_sweep(..., checkpoint=path)`` records every point the moment its rows
arrive and skips already-journaled points on the next run with the same
journal, so a 10k-point grid that dies at point 7,000 restarts where it left
off.  Entries are keyed by ``(scenario_id, seed)`` -- the same identity
per-point seeds derive from -- so a point whose id *or* seed changed simply
re-runs instead of replaying stale rows.  (Parameters passed via a grid's
``common`` mapping are not part of that identity; a journal is only ever
valid for the grid configuration that wrote it.)

Durability: each record is one line written and flushed immediately, so a
kill leaves at most one torn trailing line, which :meth:`SweepJournal.load`
skips -- that point just re-runs on resume.  Rows round-trip exactly:
``json`` preserves int/float/str/bool/None (floats serialize via ``repr``
and NaN survives), so a resumed sweep's CSV is byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TextIO, Tuple

from repro.sim.results import json_default

__all__ = ["SweepJournal"]

Rows = List[Dict[str, object]]
Key = Tuple[str, int]


class SweepJournal:
    """Append-only JSONL journal of completed sweep points."""

    def __init__(self, path: "os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        self._handle: Optional[TextIO] = None

    def load(self) -> Dict[Key, Rows]:
        """Completed entries keyed by ``(scenario_id, seed)``.

        Tolerates a torn trailing line (a kill mid-write) and skips anything
        that does not parse as a journal entry, so resume never crashes on a
        damaged journal -- damaged points are simply not resumed and re-run.
        """
        entries: Dict[Key, Rows] = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if (
                    not isinstance(entry, dict)
                    or not isinstance(entry.get("scenario_id"), str)
                    or not isinstance(entry.get("seed"), int)
                    or not isinstance(entry.get("rows"), list)
                ):
                    continue
                entries[(entry["scenario_id"], entry["seed"])] = [
                    dict(row) for row in entry["rows"]
                ]
        return entries

    def compact(self) -> Dict[str, int]:
        """Rewrite the journal with one line per key, dropping garbage.

        Journals of repeatedly resumed (or multi-writer distributed) sweeps
        accumulate duplicate entries for the same ``(scenario_id, seed)`` key
        plus the occasional torn line from a kill mid-write; every resume
        then re-parses all of it.  Compaction keeps the *last* record of each
        key (last-wins, matching what :meth:`load` returns, which overwrites
        earlier entries as it reads) in first-occurrence key order, drops
        unparseable or wrong-shape lines, and replaces the file atomically
        (write to a sibling temp file, then ``os.replace``) so a kill during
        compaction leaves either the old or the new journal, never a torn
        hybrid.

        Returns ``{"kept": ..., "dropped_duplicates": ..., "dropped_garbage": ...}``.
        No-op (all zeros) when the journal does not exist yet.
        """
        if self._handle is not None:
            raise RuntimeError("close() the journal before compacting it")
        stats = {"kept": 0, "dropped_duplicates": 0, "dropped_garbage": 0}
        if not os.path.exists(self.path):
            return stats
        latest: Dict[Key, str] = {}
        with open(self.path, "r") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    entry = json.loads(stripped)
                except ValueError:
                    stats["dropped_garbage"] += 1
                    continue
                if (
                    not isinstance(entry, dict)
                    or not isinstance(entry.get("scenario_id"), str)
                    or not isinstance(entry.get("seed"), int)
                    or not isinstance(entry.get("rows"), list)
                ):
                    stats["dropped_garbage"] += 1
                    continue
                key = (entry["scenario_id"], entry["seed"])
                if key in latest:
                    stats["dropped_duplicates"] += 1
                # Keep the raw line: rows already round-tripped through json
                # when they were recorded, so rewriting them verbatim cannot
                # perturb float formatting.
                latest[key] = stripped
        stats["kept"] = len(latest)
        tmp_path = self.path + ".compact.tmp"
        with open(tmp_path, "w") as handle:
            for line in latest.values():
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return stats

    def record(self, scenario_id: str, seed: int, rows: Rows) -> None:
        """Append one completed point and flush it immediately."""
        if self._handle is None:
            self._handle = open(self.path, "a")
        line = json.dumps(
            {"scenario_id": scenario_id, "seed": seed, "rows": rows}, default=json_default
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
