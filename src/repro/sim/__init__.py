"""`repro.sim`: the shared simulation substrate.

This package factors the event-loop machinery that used to be duplicated
across the platform simulator (`repro.platform.invoker`) and the CPU-bandwidth
scheduler (`repro.sched.engine`) into one reusable layer:

- :mod:`repro.sim.kernel` -- a discrete-event kernel: heap-ordered event queue
  with monotonic sequence numbers for deterministic tie-breaking, plus polled
  "processes" for co-simulating components that compute their own next event
  time (the scheduler engine).  Supports ``peek``/``step``/``pause`` so a host
  can interleave the kernel with other simulations.
- :mod:`repro.sim.events` -- a typed publish/subscribe event bus so metrics
  collectors and tracers subscribe to simulation events instead of being
  hard-wired into the simulators.
- :mod:`repro.sim.rng` -- named, seed-derived random streams
  (``numpy.random.Generator`` per stream) so adding a subscriber or reordering
  consumers never perturbs another component's randomness.
- :mod:`repro.sim.feedback` -- the execution-feedback layer: a
  :class:`~repro.sim.feedback.FeedbackChannel` components publish slowdown
  factors (``ServiceTimeModifier``) and admission/readiness gates into, so
  co-simulated layers share *state* (scheduler throttling stretches request
  service times, fleet admission outcomes delay or fail serving) and not just
  a clock.  Resolved deterministically at event-schedule time.
- :mod:`repro.sim.retry` -- the client retry loop: a
  :class:`~repro.sim.retry.RetryPolicy` (bounded attempts, exponential
  seed-derived backoff, optional per-function budget) executed by a
  :class:`~repro.sim.retry.RetryLoop` bus subscriber that re-injects failed
  requests as fresh arrivals, so backpressure-rejected load comes back and
  re-loads the fleet instead of vanishing.
- :mod:`repro.sim.sweep` / :mod:`repro.sim.results` -- a scenario-sweep
  orchestrator that fans a grid of (platform x workload x config) runs out
  across a pluggable execution backend with per-run derived seeds, and the
  structured result store the rows land in.
- :mod:`repro.sim.backends` / :mod:`repro.sim.checkpoint` -- the sweep
  execution seam (:class:`~repro.sim.backends.SweepBackend`: in-process
  serial, multiprocessing pool, ``concurrent.futures`` executor, or a
  multi-node TCP work queue served to ``sweep-worker`` processes) and the
  append-only JSONL checkpoint journal that makes 10k+-point grids
  kill/resume-safe.  Every backend yields byte-identical results because
  rows are reassembled by grid index from per-point derived seeds.

Layering: ``kernel``/``events``/``rng``/``results`` depend only on the
standard library and numpy; ``sweep`` sits at the top of the package and may
import domain modules (platform presets, workloads) to provide ready-made
scenario runners.
"""

from repro.sim.backends import (
    FuturesBackend,
    MultiprocessingBackend,
    PointOutcome,
    SerialBackend,
    SocketQueueBackend,
    SweepBackend,
    SweepPointError,
    resolve_backend,
    run_sweep_worker,
)
from repro.sim.checkpoint import SweepJournal
from repro.sim.events import (
    EventBus,
    InstanceCountChanged,
    KeepAliveExpired,
    RequestCompleted,
    RequestFailed,
    SandboxBusy,
    SandboxColdStart,
    SandboxEvicted,
    SandboxIdle,
    SandboxProvisioned,
    SandboxTerminated,
    SimEvent,
)
from repro.sim.feedback import (
    AdmissionState,
    FeedbackChannel,
    PublishedRate,
    ServiceTimeModifier,
    StaticSlowdown,
)
from repro.sim.kernel import Event, PeriodicProcess, SimulationKernel, SimProcess
from repro.sim.results import ResultStore
from repro.sim.retry import RetryInjector, RetryLoop, RetryPolicy, resolve_retry
from repro.sim.rng import RngStreams, derive_seed, named_generator
from repro.sim.sweep import Scenario, build_grid, run_scenario, run_sweep

__all__ = [
    "AdmissionState",
    "Event",
    "EventBus",
    "FeedbackChannel",
    "FuturesBackend",
    "InstanceCountChanged",
    "KeepAliveExpired",
    "MultiprocessingBackend",
    "PeriodicProcess",
    "PointOutcome",
    "PublishedRate",
    "RequestCompleted",
    "RequestFailed",
    "ResultStore",
    "RetryInjector",
    "RetryLoop",
    "RetryPolicy",
    "RngStreams",
    "SandboxBusy",
    "SandboxColdStart",
    "SandboxEvicted",
    "SandboxIdle",
    "SandboxProvisioned",
    "SandboxTerminated",
    "Scenario",
    "SerialBackend",
    "ServiceTimeModifier",
    "SimEvent",
    "SimProcess",
    "SimulationKernel",
    "SocketQueueBackend",
    "StaticSlowdown",
    "SweepBackend",
    "SweepJournal",
    "SweepPointError",
    "build_grid",
    "derive_seed",
    "named_generator",
    "resolve_backend",
    "resolve_retry",
    "run_scenario",
    "run_sweep",
    "run_sweep_worker",
]
