"""Pluggable execution backends for the scenario-sweep orchestrator.

:func:`repro.sim.sweep.run_sweep` delegates *how* grid points execute to a
:class:`SweepBackend`: an object whose ``run`` method receives ``(index,
scenario)`` work items and yields one :class:`PointOutcome` per item, in
whatever order points complete.  The sweep layer owns everything order- and
durability-sensitive -- reassembling rows into grid order, journaling
completions to the checkpoint, raising :class:`SweepPointError` -- so every
backend produces byte-identical results by construction and a new transport
only has to implement work distribution.

Backends:

- ``serial`` -- in-process loop, no pool (the historical ``processes<=1``
  execution shape).
- ``multiprocessing`` -- ``multiprocessing.Pool`` fan-out (the historical
  default for ``processes>1``): ``imap`` when ordered, ``imap_unordered``
  work-stealing otherwise.
- ``futures`` -- ``concurrent.futures.ProcessPoolExecutor``; every point is
  its own submitted task, so scheduling is work-stealing either way and
  ``ordered`` only changes the order results stream back.
- ``socket-queue`` -- a stdlib TCP work-queue server for multi-node sweeps:
  remote workers started with ``repro-serverless-costs sweep-worker
  --connect host:port`` pull pickled ``(index, Scenario)`` items and push
  back pickled outcomes.  Items whose worker dies mid-point are re-queued to
  the survivors, so the sweep outlives individual workers.

Failures never abort a backend mid-stream: :func:`execute_point` captures
worker exceptions as *data* on the outcome (type name, message, formatted
traceback), so the parent can journal every completed point before failing
the sweep, and transports never ship live exception objects -- which may not
pickle -- across process or network boundaries.

The socket backend's wire protocol is pickle over a length-prefixed TCP
stream between mutually trusting hosts (a sweep worker executes arbitrary
registered runner functions *by design*); run it on a private network, like
any work queue.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import socket
import struct
import threading
import time
import traceback
from concurrent import futures as _futures
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.sim.sweep import Scenario

__all__ = [
    "BACKEND_NAMES",
    "FuturesBackend",
    "MultiprocessingBackend",
    "PointOutcome",
    "SerialBackend",
    "SocketQueueBackend",
    "SweepBackend",
    "SweepPointError",
    "execute_point",
    "resolve_backend",
    "run_sweep_worker",
]

WorkItem = Tuple[int, "Scenario"]
Rows = List[Dict[str, object]]

#: The backend names :func:`resolve_backend` accepts (socket-queue also takes
#: an optional ``[:host]:port`` suffix).
BACKEND_NAMES: Tuple[str, ...] = ("serial", "multiprocessing", "futures", "socket-queue")


class SweepPointError(RuntimeError):
    """One grid point failed; names the scenario so 10k-point sweeps stay debuggable.

    Raised by :func:`repro.sim.sweep.run_sweep` in the *parent* process after
    every already-completed row has been flushed to the checkpoint journal
    (when one is attached), so a failing point costs exactly the failed point
    -- never the sweep's finished work.  ``traceback_text`` carries the
    worker-side traceback when the point ran in another process.
    """

    def __init__(
        self,
        scenario_id: str,
        seed: int = 0,
        message: str = "",
        error_type: Optional[str] = None,
        traceback_text: Optional[str] = None,
    ) -> None:
        self.scenario_id = scenario_id
        self.seed = seed
        self.error_type = error_type
        self.traceback_text = traceback_text
        detail = f"{error_type}: {message}" if error_type else message
        super().__init__(f"sweep point {scenario_id!r} (seed {seed}) failed: {detail}")


@dataclass(frozen=True)
class PointOutcome:
    """What executing one grid point produced (picklable across transports)."""

    index: int
    scenario_id: str
    seed: int
    rows: Optional[Rows] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    traceback_text: Optional[str] = None
    #: The live exception, kept by in-process backends only so ``raise ...
    #: from cause`` preserves the full chain; cross-process transports leave
    #: it ``None`` (exceptions may not pickle) and rely on ``traceback_text``.
    cause: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        return self.error_type is not None

    def to_error(self) -> SweepPointError:
        return SweepPointError(
            self.scenario_id,
            self.seed,
            message=self.error_message or "",
            error_type=self.error_type,
            traceback_text=self.traceback_text,
        )


def _error_text(error: BaseException) -> str:
    """Human-readable message (str() of a KeyError is the repr of its argument)."""
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


def execute_point(item: WorkItem, keep_cause: bool = False) -> PointOutcome:
    """Run one ``(index, scenario)`` work item, capturing any failure as data."""
    index, scenario = item
    from repro.sim.sweep import run_scenario

    try:
        rows = run_scenario(scenario)
    except Exception as error:
        return PointOutcome(
            index=index,
            scenario_id=scenario.scenario_id,
            seed=scenario.seed,
            error_type=type(error).__name__,
            error_message=_error_text(error),
            traceback_text=traceback.format_exc(),
            cause=error if keep_cause else None,
        )
    return PointOutcome(index=index, scenario_id=scenario.scenario_id, seed=scenario.seed, rows=rows)


class SweepBackend(Protocol):
    """The execution seam: run work items, yield outcomes in completion order."""

    name: str

    def run(self, items: Iterable[WorkItem], ordered: bool = True) -> Iterator[PointOutcome]:
        ...  # pragma: no cover - protocol


def _normalize_processes(processes: Optional[int]) -> int:
    """Worker count for pool backends: ``None``/``<=0`` means every core."""
    if processes is None or processes <= 0:
        return multiprocessing.cpu_count()
    return processes


class SerialBackend:
    """In-process, one point at a time -- the ``processes<=1`` execution shape."""

    name = "serial"

    def run(self, items: Iterable[WorkItem], ordered: bool = True) -> Iterator[PointOutcome]:
        for item in items:
            yield execute_point(item, keep_cause=True)


class MultiprocessingBackend:
    """``multiprocessing.Pool`` fan-out (the historical ``run_sweep`` pool).

    ``ordered=True`` streams results back in submission order (``imap``);
    ``ordered=False`` is work-stealing (``imap_unordered``): workers pull the
    next scenario the moment they finish their current one, so heterogeneous
    grids do not leave workers idle behind fixed chunking.  Either way the
    sweep layer reassembles rows by grid index, so results are identical.
    """

    name = "multiprocessing"

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = _normalize_processes(processes)

    def run(self, items: Iterable[WorkItem], ordered: bool = True) -> Iterator[PointOutcome]:
        items = list(items)
        if not items:
            return
        with multiprocessing.Pool(processes=min(self.processes, len(items))) as pool:
            mapper = pool.imap if ordered else pool.imap_unordered
            for outcome in mapper(execute_point, items, chunksize=1):
                yield outcome


class FuturesBackend:
    """``concurrent.futures.ProcessPoolExecutor`` fan-out.

    Every point is its own submitted task, so workers steal naturally;
    ``ordered`` only changes whether results stream back in submission order
    or completion order, never their content.
    """

    name = "futures"

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = _normalize_processes(processes)

    def run(self, items: Iterable[WorkItem], ordered: bool = True) -> Iterator[PointOutcome]:
        items = list(items)
        if not items:
            return
        with _futures.ProcessPoolExecutor(max_workers=min(self.processes, len(items))) as pool:
            pending = [pool.submit(execute_point, item) for item in items]
            try:
                for future in pending if ordered else _futures.as_completed(pending):
                    yield future.result()
            finally:
                for future in pending:
                    future.cancel()


# ----------------------------------------------------------------------
# Multi-node backend: a TCP work queue plus the worker loop behind the
# ``repro-serverless-costs sweep-worker`` subcommand.
# ----------------------------------------------------------------------

_HEADER = struct.Struct(">Q")


def _send(connection: socket.socket, payload: object) -> None:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    connection.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(connection: socket.socket, length: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    while length:
        chunk = connection.recv(min(length, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        length -= len(chunk)
    return b"".join(chunks)


def _recv(connection: socket.socket) -> Optional[Tuple[object, ...]]:
    """One length-prefixed pickled message, or ``None`` on a clean hang-up."""
    header = _recv_exact(connection, _HEADER.size)
    if header is None:
        return None
    data = _recv_exact(connection, _HEADER.unpack(header)[0])
    if data is None:
        return None
    return pickle.loads(data)


class SocketQueueBackend:
    """Multi-node work queue over a plain TCP socket (stdlib only).

    The backend is the *server*: it binds at construction (so the address is
    known before the sweep starts -- pass ``port=0`` for an ephemeral port
    and read :attr:`address`), queues ``(index, Scenario)`` items, and hands
    one item at a time to each connected worker: a remote process started
    with ``repro-serverless-costs sweep-worker --connect host:port``.
    Outcomes stream back as they finish, which is inherently work-stealing
    -- a worker pulls its next item the moment it returns one.

    Fault tolerance: if a worker dies mid-point its in-flight item is
    re-queued to the survivors, so the sweep outlives individual workers.  A
    late duplicate (the first worker finished but its result was lost in the
    hang-up) is harmless -- the sweep layer deduplicates by grid index, and
    per-point derived seeds make both executions byte-identical anyway.

    ``timeout_s`` is an *idle* bound: the sweep fails if no outcome arrives
    for that long (e.g. no worker ever connects).  One sweep per instance;
    the listening socket closes when ``run`` finishes.
    """

    name = "socket-queue"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: Optional[float] = None,
        announce: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.timeout_s = timeout_s
        self.announce = announce
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._used = False

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def run(self, items: Iterable[WorkItem], ordered: bool = True) -> Iterator[PointOutcome]:
        if self._used:
            raise RuntimeError(
                "SocketQueueBackend instances are single-use (the listener closes "
                "with the sweep); construct a new one per run_sweep call"
            )
        self._used = True
        items = list(items)
        if not items:
            self.close()
            return
        work: "queue.Queue[WorkItem]" = queue.Queue()
        for item in items:
            work.put(item)
        results: "queue.Queue[PointOutcome]" = queue.Queue()
        done = threading.Event()
        handlers: List[threading.Thread] = []

        def serve(connection: socket.socket) -> None:
            in_flight: Optional[WorkItem] = None
            try:
                _recv(connection)  # worker hello (hostname, pid); identification only
                while not done.is_set():
                    try:
                        item = work.get(timeout=0.1)
                    except queue.Empty:
                        continue
                    in_flight = item
                    _send(connection, ("item", item))
                    reply = _recv(connection)
                    if reply is None:
                        raise ConnectionError("worker hung up mid-point")
                    results.put(reply[1])
                    in_flight = None
            except (OSError, ConnectionError, EOFError, pickle.UnpicklingError):
                if in_flight is not None:
                    work.put(in_flight)  # re-queue: the sweep outlives the worker
            finally:
                try:
                    _send(connection, ("shutdown",))
                except OSError:
                    pass
                connection.close()

        def accept() -> None:
            while not done.is_set():
                try:
                    connection, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                handler = threading.Thread(target=serve, args=(connection,), daemon=True)
                handler.start()
                handlers.append(handler)

        acceptor = threading.Thread(target=accept, daemon=True)
        acceptor.start()
        if self.announce is not None:
            host, port = self.address
            self.announce(
                f"sweep server listening on {host}:{port} ({len(items)} points); start "
                f"workers with: repro-serverless-costs sweep-worker --connect <host>:{port}"
            )
        seen: set = set()
        idle_deadline = None if self.timeout_s is None else time.monotonic() + self.timeout_s
        try:
            while len(seen) < len(items):
                try:
                    outcome = results.get(timeout=0.2)
                except queue.Empty:
                    if idle_deadline is not None and time.monotonic() > idle_deadline:
                        raise RuntimeError(
                            f"socket-queue sweep idle for {self.timeout_s}s with "
                            f"{len(items) - len(seen)} of {len(items)} points outstanding "
                            "-- are any sweep workers connected?"
                        )
                    continue
                if outcome.index in seen:
                    continue  # late duplicate from a re-queued item
                seen.add(outcome.index)
                if idle_deadline is not None:
                    idle_deadline = time.monotonic() + self.timeout_s
                yield outcome
        finally:
            done.set()
            self.close()
            acceptor.join(timeout=2.0)
            for handler in handlers:
                handler.join(timeout=2.0)


def run_sweep_worker(
    host: str,
    port: int,
    retry_window_s: float = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Serve one socket-queue sweep: pull items, run them, push outcomes back.

    Connects to ``host:port`` -- retrying for ``retry_window_s``, so workers
    may be started before the server -- then executes each received
    ``(index, Scenario)`` item via :func:`execute_point` until the server
    sends shutdown or hangs up.  Returns the number of completed points.
    """
    deadline = time.monotonic() + max(retry_window_s, 0.0)
    connection: Optional[socket.socket] = None
    while connection is None:
        try:
            connection = socket.create_connection((host, port))
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
    completed = 0
    try:
        _send(connection, ("hello", socket.gethostname(), os.getpid()))
        while True:
            message = _recv(connection)
            if message is None or message[0] == "shutdown":
                break
            outcome = execute_point(message[1])
            _send(connection, ("result", outcome))
            completed += 1
            if log is not None:
                status = "failed" if outcome.failed else "completed"
                log(f"{status} {outcome.scenario_id!r} ({completed} points so far)")
    finally:
        connection.close()
    return completed


def resolve_backend(
    backend: Union[str, SweepBackend, None],
    processes: Optional[int] = None,
    grid_size: Optional[int] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> SweepBackend:
    """A backend instance from a name/spec string, an instance, or ``None``.

    ``None`` reproduces the historical ``run_sweep`` defaults byte-for-byte:
    serial when ``processes`` is unset/``<=1`` or the grid has at most one
    point, the multiprocessing pool otherwise (``-1`` = every core).

    String specs: ``"serial"``, ``"multiprocessing"``, ``"futures"``,
    ``"socket-queue"`` (ephemeral port on localhost), ``"socket-queue:PORT"``
    (all interfaces) or ``"socket-queue:HOST:PORT"`` to choose the bind
    address workers connect to.  ``announce`` is called with the socket
    server's listening address once the sweep starts.
    """
    if backend is None:
        if processes is not None and processes < 0:
            processes = multiprocessing.cpu_count()
        if processes is None or processes <= 1 or (grid_size is not None and grid_size <= 1):
            return SerialBackend()
        return MultiprocessingBackend(processes)
    if not isinstance(backend, str):
        return backend
    name, _, spec = backend.partition(":")
    name = name.strip().lower()
    if name == "serial":
        return SerialBackend()
    if name == "multiprocessing":
        return MultiprocessingBackend(processes)
    if name == "futures":
        return FuturesBackend(processes)
    if name == "socket-queue":
        host, port = "127.0.0.1", 0
        if spec:
            bind_host, _, bind_port = spec.rpartition(":")
            host = bind_host or "0.0.0.0"
            try:
                port = int(bind_port)
            except ValueError:
                raise ValueError(
                    f"invalid socket-queue port in backend spec {backend!r} "
                    "(expected socket-queue[:host]:port)"
                ) from None
        return SocketQueueBackend(host=host, port=port, announce=announce)
    raise ValueError(f"unknown sweep backend {backend!r}; choose from: {', '.join(BACKEND_NAMES)}")
