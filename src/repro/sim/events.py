"""Typed publish/subscribe event bus for simulation instrumentation.

Simulators publish small frozen event records; metrics collectors, tracers
and experiment-specific probes subscribe to the event *types* they care
about.  This decouples "what happened" from "who is counting": the platform
simulator no longer hard-wires its metrics object, and new collectors (cost
meters, timeline captures, debug traces) attach without touching simulator
code.

Dispatch is deterministic: subscribers of the exact event class run first in
subscription order, then subscribers of each base class in method-resolution
order.  Subscribing to :class:`SimEvent` therefore observes everything.

Dispatch is also the hottest bus path in the repo, so :meth:`EventBus.publish`
resolves each *concrete* event type's subscriber chain once -- the MRO walk
runs only on the first publish of a type (and again after any subscription
change, tracked by a version counter), and the per-publish cost is a single
dict lookup plus the callback calls, with no allocation.  The subscriber set
a publish delivers to is the one resolved when that publish started: a
callback that subscribes or unsubscribes mid-dispatch affects the *next*
publish, never the one in flight.

The payload fields are deliberately loosely typed (``Any``): the bus sits
below the domain layers (`repro.platform`, `repro.sched`) and must not import
them.  Event records are frozen dataclasses with ``__slots__`` (on Python
3.10+) -- one is allocated per simulated occurrence, so their footprint is
hot-path state.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Tuple, Type

#: ``slots=True`` shrinks and speeds up the per-occurrence event records, but
#: the dataclass flag only exists on Python 3.10+; older interpreters fall
#: back to ordinary (dict-backed) dataclasses with identical behaviour.
_SLOTS: Dict[str, bool] = {"slots": True} if sys.version_info >= (3, 10) else {}

__all__ = [
    "EventBus",
    "InstanceCountChanged",
    "KeepAliveExpired",
    "RequestArrived",
    "RequestCompleted",
    "RequestDenied",
    "RequestExecuting",
    "RequestFailed",
    "RetryScheduled",
    "SandboxAdmitted",
    "SandboxBusy",
    "SandboxColdStart",
    "SandboxEvicted",
    "SandboxIdle",
    "SandboxProvisioned",
    "SandboxQueued",
    "SandboxRejected",
    "SandboxTerminated",
    "SimEvent",
]


@dataclass(frozen=True, **_SLOTS)
class SimEvent:
    """Base class for all bus events; carries the simulation time."""

    time_s: float


@dataclass(frozen=True, **_SLOTS)
class RequestArrived(SimEvent):
    """A request entered the platform (organic arrival or retry re-injection).

    Published by the platform simulator only when span emission is enabled
    (an observability layer is attached) -- the hot path stays allocation-free
    otherwise.  ``parent_id`` is the request id of the failed attempt this
    arrival retries (empty for organic, attempt-1 traffic); the trace layer
    uses it to link retry chains.
    """

    request_id: str
    function_name: str = ""
    attempts: int = 1
    retry_wait_s: float = 0.0
    parent_id: str = ""
    tenant: str = ""


@dataclass(frozen=True, **_SLOTS)
class RequestExecuting(SimEvent):
    """A request was admitted into a sandbox and (modulo contention) started.

    Published under the same span-emission gate as :class:`RequestArrived`.
    ``cold_start`` marks requests that waited for the sandbox's cold
    initialisation; ``rate_factor`` is the feedback-layer service rate the
    sandbox is running at (1.0 without feedback).
    """

    request_id: str
    sandbox_name: str = ""
    cold_start: bool = False
    rate_factor: float = 1.0


@dataclass(frozen=True, **_SLOTS)
class RetryScheduled(SimEvent):
    """The client retry loop scheduled a failed request's re-injection.

    ``request_id`` is the *failed* attempt (the parent of the upcoming
    arrival); the re-injected arrival fires ``delay_s`` later and will carry
    ``next_attempt`` as its attempt number.
    """

    request_id: str
    function_name: str = ""
    next_attempt: int = 2
    delay_s: float = 0.0


@dataclass(frozen=True, **_SLOTS)
class RequestCompleted(SimEvent):
    """A request finished; ``outcome`` is the domain-level outcome record."""

    outcome: Any


@dataclass(frozen=True, **_SLOTS)
class RequestFailed(SimEvent):
    """A request will never be served; ``outcome`` is the failure record.

    Published by the platform simulator when the execution-feedback layer
    reports that the fleet rejected the cold-started sandbox the request was
    waiting on (admission backpressure with a full or disabled queue).  The
    payload is a :class:`repro.platform.metrics.FailedRequest`-shaped record
    (request id, arrival, failure time, reason) -- loosely typed here because
    the bus sits below the domain layers.
    """

    outcome: Any


@dataclass(frozen=True, **_SLOTS)
class RequestDenied(SimEvent):
    """Admission control refused a request before any capacity was burned.

    Published by the platform simulator when the tenancy layer's
    :class:`~repro.tenancy.admission.AdmissionController` denies an arrival
    (the tenant's credit account is exhausted and its policy says deny rather
    than queue).  Denials are terminal and client-visible -- they model a
    throttling response, so the retry loop never re-injects them.
    """

    request_id: str
    tenant: str = ""
    function_name: str = ""
    reason: str = "credits"


@dataclass(frozen=True, **_SLOTS)
class SandboxProvisioned(SimEvent):
    """A new sandbox started cold-initialising."""

    sandbox_name: str


@dataclass(frozen=True, **_SLOTS)
class SandboxColdStart(SandboxProvisioned):
    """A sandbox cold start, with the resource demand it places on the fleet.

    Subclasses :class:`SandboxProvisioned` so existing subscribers keep
    working; fleet placement and cost metering need the function identity,
    the resource allocation, and the expected initialisation duration.
    """

    function_name: str = ""
    alloc_vcpus: float = 0.0
    alloc_memory_gb: float = 0.0
    init_duration_s: float = 0.0


@dataclass(frozen=True, **_SLOTS)
class SandboxBusy(SimEvent):
    """An idle (or freshly initialised) sandbox started serving requests."""

    sandbox_name: str
    concurrency: int = 1


@dataclass(frozen=True, **_SLOTS)
class SandboxIdle(SimEvent):
    """A sandbox drained its last request and entered the keep-alive phase."""

    sandbox_name: str


@dataclass(frozen=True, **_SLOTS)
class KeepAliveExpired(SimEvent):
    """A sandbox's keep-alive window elapsed without a new request."""

    sandbox_name: str


@dataclass(frozen=True, **_SLOTS)
class SandboxTerminated(SimEvent):
    """A sandbox was torn down (keep-alive expiry or scale-down)."""

    sandbox_name: str


@dataclass(frozen=True, **_SLOTS)
class SandboxEvicted(SandboxTerminated):
    """A sandbox was evicted, with the reason (``keepalive_expire``, ``scale_down``).

    Subclasses :class:`SandboxTerminated` so subscribers that only care about
    teardown keep working.
    """

    reason: str = ""


@dataclass(frozen=True, **_SLOTS)
class SandboxQueued(SimEvent):
    """A cold-started sandbox found no host and entered the admission queue.

    Published by the fleet layer when admission backpressure is enabled:
    instead of dropping an unplaceable sandbox, the fleet parks it in a
    bounded queue and retries on every capacity release.  ``queue_depth`` is
    the depth *after* this sandbox joined.
    """

    sandbox_name: str
    queue_depth: int = 0


@dataclass(frozen=True, **_SLOTS)
class SandboxAdmitted(SimEvent):
    """The fleet placed a sandbox on a host.

    Published on every successful placement.  ``queue_wait_s`` is zero for
    sandboxes placed directly on cold start and positive for sandboxes that
    waited in the admission queue until capacity was released.
    """

    sandbox_name: str
    host_name: str = ""
    queue_wait_s: float = 0.0


@dataclass(frozen=True, **_SLOTS)
class SandboxRejected(SimEvent):
    """The fleet refused a sandbox for good.

    ``reason`` is ``"oversized"`` (the demand exceeds every zone's host
    shape), ``"no_capacity"`` (no host fits and queueing is disabled), or
    ``"queue_full"`` (the bounded admission queue is at its depth limit).

    ``retry_after_s`` is the fleet's load-shedding hint: how long a client
    should wait before retrying (0.0 when the fleet is not configured to
    issue hints).  The feedback channel records it per sandbox so the
    platform can stamp it onto the failure record and the retry loop can
    stretch its backoff to honour it.
    """

    sandbox_name: str
    reason: str = ""
    retry_after_s: float = 0.0


@dataclass(frozen=True, **_SLOTS)
class InstanceCountChanged(SimEvent):
    """The alive-instance count was re-sampled after a pool change."""

    count: int


Subscriber = Callable[[SimEvent], None]


class EventBus:
    """Deterministic typed pub/sub: exact type first, then bases in MRO order.

    ``publish`` dispatches off a per-concrete-type cache: the first publish of
    an event type resolves its full subscriber chain (exact type, then each
    base in MRO order) into one flat tuple, and every later publish reuses it
    with a single dict lookup -- no MRO walk, no per-base list copy, no
    allocation.  ``subscribe``/``unsubscribe`` bump a version counter that
    lazily invalidates every cached chain.

    The resolved tuple is also the dispatch *snapshot*: a callback that
    changes subscriptions mid-dispatch changes what the next publish sees,
    never the publish that is currently delivering.
    """

    __slots__ = ("_subscribers", "_resolved", "_version", "_profiler")

    def __init__(self) -> None:
        self._subscribers: Dict[Type[SimEvent], List[Subscriber]] = {}
        #: concrete event type -> (version the chain was resolved at, chain).
        self._resolved: Dict[Type[SimEvent], Tuple[int, Tuple[Subscriber, ...]]] = {}
        #: Bumped on every subscription change; stale chains re-resolve lazily.
        self._version = 0
        # Dormant profiling slot (see repro.obs.profile): None keeps publish()
        # on the exact pre-profiling path.
        self._profiler = None

    def set_profiler(self, profiler) -> None:
        """Install an opt-in publish profiler (``None`` restores the fast path)."""
        self._profiler = profiler

    def subscribe(self, event_type: Type[SimEvent], callback: Subscriber) -> Subscriber:
        """Register ``callback`` for events of ``event_type`` (or subclasses)."""
        self._subscribers.setdefault(event_type, []).append(callback)
        self._version += 1
        return callback

    def unsubscribe(self, event_type: Type[SimEvent], callback: Subscriber) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(event_type, [])
        if callback in callbacks:
            callbacks.remove(callback)
            self._version += 1

    def _resolve(self, event_type: Type[SimEvent]) -> Tuple[int, Tuple[Subscriber, ...]]:
        """Flatten ``event_type``'s subscriber chain (exact first, then MRO bases)."""
        chain: List[Subscriber] = []
        for klass in event_type.__mro__:
            if klass is object:
                break
            callbacks = self._subscribers.get(klass)
            if callbacks:
                chain.extend(callbacks)
        entry = (self._version, tuple(chain))
        self._resolved[event_type] = entry
        return entry

    def publish(self, event: SimEvent) -> None:
        """Deliver ``event`` to all matching subscribers in deterministic order."""
        event_type = event.__class__
        entry = self._resolved.get(event_type)
        if entry is None or entry[0] != self._version:
            entry = self._resolve(event_type)
        chain = entry[1]
        profiler = self._profiler
        if profiler is None:
            if len(chain) == 1:
                # The common shape on hot buses: exactly one subscriber per
                # concrete type (a metrics recorder, the fleet, a forwarder).
                chain[0](event)
                return
            for callback in chain:
                callback(event)
            return
        start = perf_counter()
        for callback in chain:
            callback(event)
        profiler.record_publish(event_type.__name__, len(chain), perf_counter() - start)

    def subscriber_count(self, event_type: Type[SimEvent]) -> int:
        """Number of direct subscriptions for ``event_type`` (diagnostics)."""
        return len(self._subscribers.get(event_type, ()))
