"""The execution-feedback layer: cross-layer state coupling for co-simulations.

PRs 1-3 put every simulator on one kernel, but the layers still shared a
*clock*, not *state*: CPU throttling computed by :mod:`repro.sched` never
stretched request service times in :mod:`repro.platform`, and admission
queueing/rejection in :mod:`repro.cluster` never delayed sandbox readiness or
failed requests.  This module closes that loop with two mechanisms:

- **Service-time modifiers** (:class:`ServiceTimeModifier`): components that
  know about execution slowdown -- the CPU-bandwidth scheduler publishing its
  per-period effective-bandwidth factor, or a static degradation injected by
  an experiment -- register a modifier on the channel.  Consumers (the
  platform simulator) read the *combined* rate at event-schedule time and
  stretch busy times accordingly.  Factors are piecewise-constant between the
  events that re-read them, so resolution is deterministic: the same seed
  replays the same stretched timeline.
- **Readiness gates**: the channel subscribes to the fleet's admission-outcome
  events (:class:`~repro.sim.events.SandboxQueued` /
  :class:`~repro.sim.events.SandboxAdmitted` /
  :class:`~repro.sim.events.SandboxRejected`) and lets the platform simulator
  ask, synchronously after publishing a cold start, what the fleet decided --
  and be called back when a queued sandbox is finally admitted (or rejected),
  so admission queueing defers sandbox readiness and rejection fails the
  pending request instead of both being invisible to the serving layer.

The channel is deliberately passive: it never schedules kernel events itself.
Every effect happens inside an existing event's handler (publish, gate
callback, or a consumer reading :meth:`FeedbackChannel.service_rate`), which
keeps the shared kernel's event order -- and therefore determinism --
unchanged.  With no channel attached (``feedback="off"``, the default for
every existing entry point), simulators take exactly the pre-feedback code
paths and reproduce PR-3 outputs byte-for-byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.sim.events import (
    EventBus,
    SandboxAdmitted,
    SandboxQueued,
    SandboxRejected,
    SimEvent,
)

__all__ = [
    "AdmissionState",
    "FeedbackChannel",
    "PublishedRate",
    "ServiceTimeModifier",
    "StaticSlowdown",
]


@runtime_checkable
class ServiceTimeModifier(Protocol):
    """Anything that can slow execution down, as a multiplicative rate factor.

    ``service_rate(now_s)`` returns the fraction of nominal execution speed
    available at ``now_s``: ``1.0`` means full speed, ``0.5`` means busy times
    stretch by 2x.  Implementations must be deterministic functions of
    simulation state (never wall clock or unseeded randomness).
    """

    def service_rate(self, now_s: float) -> float:
        ...


@dataclass(frozen=True)
class StaticSlowdown:
    """A constant service-rate factor (experiment-injected degradation)."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")

    def service_rate(self, now_s: float) -> float:
        return self.rate


class PublishedRate:
    """A piecewise-constant rate factor a producer pushes updates into.

    The CPU-bandwidth scheduler cannot be *pulled* for a factor (computing it
    requires closing an accounting interval), so it publishes one at each
    bandwidth-period boundary instead.  ``service_rate`` returns the most
    recently published value; the full history is kept for introspection and
    tests (it is tiny: one entry per period).
    """

    def __init__(self, initial_rate: float = 1.0) -> None:
        self._rate = float(initial_rate)
        #: (time published, rate) history, in publish order.
        self.history: List[Tuple[float, float]] = []

    def publish(self, now_s: float, rate: float) -> None:
        """Set the current rate (clamped to (0, 1]; zero is floored, see below).

        A producer measuring "no CPU delivered at all this interval" must not
        stall consumers forever (a rate of exactly zero would schedule
        completions at infinity), so published rates are floored at 1e-3.
        """
        self._rate = min(max(float(rate), 1e-3), 1.0)
        self.history.append((now_s, self._rate))

    def service_rate(self, now_s: float) -> float:
        return self._rate


class AdmissionState(str, enum.Enum):
    """What the fleet decided about one cold-started sandbox."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"


class FeedbackChannel:
    """Shared mailbox between simulators: slowdown factors and readiness gates.

    One channel serves one co-simulation (one shared kernel + bus).  Producers
    register :class:`ServiceTimeModifier` objects under string keys; consumers
    read the combined rate with :meth:`service_rate`.  Attaching the channel
    to the co-simulation bus (:meth:`attach`) makes it track fleet admission
    outcomes so the platform simulator can gate sandbox readiness on them.
    """

    def __init__(self, min_service_rate: float = 0.01) -> None:
        if not 0.0 < min_service_rate <= 1.0:
            raise ValueError("min_service_rate must be in (0, 1]")
        self.min_service_rate = float(min_service_rate)
        #: key -> modifier, in registration order (deterministic product).
        self._modifiers: Dict[str, ServiceTimeModifier] = {}
        self._admission: Dict[str, AdmissionState] = {}
        self._queue_wait_s: Dict[str, float] = {}
        #: sandboxes currently waiting in the fleet's admission queue.
        self._queued: List[str] = []
        #: sandbox -> one-shot callback fired when its admission resolves.
        self._gates: Dict[str, Callable[[SimEvent], None]] = {}
        #: sandbox -> retry-after hint (seconds) its rejection carried.
        self._retry_after_s: Dict[str, float] = {}
        #: tenant -> simulator id prefixes owned by that tenant (set by the
        #: co-simulation host when the tenancy layer is active).
        self._tenant_prefixes: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Service-time side
    # ------------------------------------------------------------------

    def set_modifier(self, key: str, modifier: ServiceTimeModifier) -> ServiceTimeModifier:
        """Register (or replace) the modifier published under ``key``."""
        self._modifiers[key] = modifier
        return modifier

    def remove_modifier(self, key: str) -> None:
        """Drop a modifier (no-op if absent)."""
        self._modifiers.pop(key, None)

    def service_rate(self, now_s: float) -> float:
        """The combined execution-rate factor at ``now_s``.

        Factors compose multiplicatively (two independent 50% slowdowns give
        25% of nominal speed) and the product is clamped to
        ``[min_service_rate, 1]`` so a pathological producer can neither
        stall the simulation nor speed it up.  With no modifiers registered
        the rate is exactly ``1.0``.
        """
        rate = 1.0
        for modifier in self._modifiers.values():
            rate *= modifier.service_rate(now_s)
        return min(max(rate, self.min_service_rate), 1.0)

    # ------------------------------------------------------------------
    # Admission side
    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "FeedbackChannel":
        """Track fleet admission outcomes published on ``bus``."""
        bus.subscribe(SandboxQueued, self._on_queued)
        bus.subscribe(SandboxAdmitted, self._on_admitted)
        bus.subscribe(SandboxRejected, self._on_rejected)
        return self

    def _on_queued(self, event: SandboxQueued) -> None:
        self._admission[event.sandbox_name] = AdmissionState.QUEUED
        self._queued.append(event.sandbox_name)

    def _on_admitted(self, event: SandboxAdmitted) -> None:
        self._admission[event.sandbox_name] = AdmissionState.ADMITTED
        self._queue_wait_s[event.sandbox_name] = event.queue_wait_s
        if event.sandbox_name in self._queued:
            self._queued.remove(event.sandbox_name)
        self._resolve_gate(event.sandbox_name, event)

    def _on_rejected(self, event: SandboxRejected) -> None:
        self._admission[event.sandbox_name] = AdmissionState.REJECTED
        retry_after = getattr(event, "retry_after_s", 0.0)
        if retry_after > 0.0:
            self._retry_after_s[event.sandbox_name] = retry_after
        if event.sandbox_name in self._queued:
            self._queued.remove(event.sandbox_name)
        self._resolve_gate(event.sandbox_name, event)

    def _resolve_gate(self, sandbox_name: str, event: SimEvent) -> None:
        callback = self._gates.pop(sandbox_name, None)
        if callback is not None:
            callback(event)

    def admission_state(self, sandbox_name: str) -> Optional[AdmissionState]:
        """The fleet's decision for a sandbox, or ``None`` if it never saw one.

        ``None`` means no admission-publishing fleet is attached (a standalone
        platform simulation); callers should treat it as admitted.
        """
        return self._admission.get(sandbox_name)

    def queue_wait_s(self, sandbox_name: str) -> float:
        """How long an admitted sandbox waited in the admission queue."""
        return self._queue_wait_s.get(sandbox_name, 0.0)

    def retry_after_s(self, sandbox_name: str) -> float:
        """The retry-after hint a rejected sandbox's rejection carried.

        ``0.0`` when the fleet issues no hints
        (:attr:`~repro.cluster.fleet.FleetConfig.retry_after_hint_s` unset)
        or the sandbox was never rejected.  The platform simulator stamps
        this onto the :class:`~repro.platform.metrics.FailedRequest` of every
        request that was waiting on the sandbox, and the retry loop floors
        its backoff at the hint.
        """
        return self._retry_after_s.get(sandbox_name, 0.0)

    def gate_readiness(self, sandbox_name: str, callback: Callable[[SimEvent], None]) -> None:
        """Call ``callback`` (once) when the sandbox's queued admission resolves.

        The callback receives the resolving event (:class:`SandboxAdmitted` or
        :class:`SandboxRejected`) and runs synchronously inside that event's
        bus publish -- i.e. inside an existing kernel event, keeping event
        order deterministic.
        """
        state = self._admission.get(sandbox_name)
        if state is not None and state is not AdmissionState.QUEUED:
            raise ValueError(
                f"sandbox {sandbox_name!r} admission already resolved ({state.value}); "
                "gate it before publishing the cold start or not at all"
            )
        self._gates[sandbox_name] = callback

    def admission_queue_depth(self, prefix: str = "") -> int:
        """Sandboxes currently in the admission queue, optionally by name prefix.

        Co-simulated platform simulators namespace sandbox names as
        ``<function>/sandbox-...``, so a simulator can read *its own* share of
        the fleet's admission queue by passing its id prefix -- the signal the
        queue-aware autoscaler scales on.  Cold starts provoked by retry
        re-injections (:mod:`repro.sim.retry`) queue exactly like organic
        ones, so this depth -- and everything scaling or placing on it
        (queue-aware autoscaling, ``COST_FIT``) -- sees the amplified load
        retrying clients actually offer, not just the first-attempt load.
        """
        if not prefix:
            return len(self._queued)
        return sum(1 for name in self._queued if name.startswith(prefix))

    def set_tenant_prefixes(self, prefixes: Dict[str, Tuple[str, ...]]) -> None:
        """Declare which simulator id prefixes each tenant owns.

        Set once by the co-simulation host when the tenancy layer is active;
        makes the admission-queue signal readable per *tenant* rather than
        per simulator (:meth:`tenant_admission_queue_depth`).
        """
        self._tenant_prefixes = {
            tenant: tuple(owned) for tenant, owned in prefixes.items()
        }

    def tenant_admission_queue_depth(self, tenant: str) -> int:
        """One tenant's share of the fleet admission queue.

        The sum of :meth:`admission_queue_depth` over every simulator prefix
        the tenant owns -- the per-tenant backpressure signal (who is being
        queued-out under saturation).  ``0`` for unknown tenants or when
        :meth:`set_tenant_prefixes` was never called.
        """
        total = 0
        for prefix in self._tenant_prefixes.get(tenant, ()):
            total += self.admission_queue_depth(prefix)
        return total
