"""Named, seed-derived random streams.

A single shared ``Generator`` makes results depend on *consumption order*:
adding a metrics subscriber that draws one sample shifts every later draw.
These helpers instead derive an independent stream per (root seed, name)
pair, so:

- each component's randomness depends only on the root seed and its own
  stream name, never on what other components sampled;
- the scenario-sweep orchestrator can hand every run a distinct,
  reproducible seed derived from one base seed, stable under re-ordering
  and parallel execution.

Derivation uses ``numpy.random.SeedSequence`` keyed with CRC32 hashes of the
stream names -- stable across processes and Python versions (unlike
``hash()``, which is salted per interpreter).
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["RngStreams", "derive_seed", "named_generator"]

Name = Union[str, int]


def _name_key(name: Name) -> int:
    if isinstance(name, int):
        return name & 0xFFFFFFFF
    return zlib.crc32(str(name).encode("utf-8"))


def _seed_sequence(root_seed: int, names: Tuple[Name, ...]) -> np.random.SeedSequence:
    return np.random.SeedSequence((int(root_seed),) + tuple(_name_key(n) for n in names))


def named_generator(root_seed: int, *names: Name) -> np.random.Generator:
    """An independent ``Generator`` for the stream ``names`` under ``root_seed``."""
    return np.random.default_rng(_seed_sequence(root_seed, names))


def derive_seed(root_seed: int, *names: Name) -> int:
    """A stable 63-bit integer seed for the named stream.

    Use this to hand seeds across process boundaries (sweep workers) or to
    APIs that take plain integer seeds.
    """
    state = _seed_sequence(root_seed, names).generate_state(2, dtype=np.uint32)
    return (int(state[0]) << 31) ^ int(state[1])


class RngStreams:
    """A registry of named streams under one root seed.

    Repeated requests for the same name return the *same* generator object,
    so a component that draws incrementally keeps its position; distinct
    names are statistically independent.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[Tuple[Name, ...], np.random.Generator] = {}

    def stream(self, *names: Name) -> np.random.Generator:
        """The (cached) generator for the given stream name path."""
        key = tuple(names)
        if key not in self._streams:
            self._streams[key] = named_generator(self.root_seed, *names)
        return self._streams[key]

    def seed_for(self, *names: Name) -> int:
        """Integer seed derived for the named stream (see :func:`derive_seed`)."""
        return derive_seed(self.root_seed, *names)
