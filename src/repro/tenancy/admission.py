"""Credit-metered admission control: the multi-tenant gate above the fleet.

The :class:`AdmissionController` sits *before* routing: every arrival of a
registered platform simulator asks it for admission first, and only admitted
requests ever touch sandboxes, the fleet, or the bill.  One controller serves
one co-simulation; it holds a :class:`~repro.tenancy.credits.CreditAccount`
per tenant and a per-tenant FIFO of credit-parked requests.

Decisions, by tenant policy (:attr:`~repro.tenancy.model.TenantConfig.on_exhausted`):

- ``ADMIT`` -- the account covered the request cost (and no earlier request
  of the same tenant is still parked: the credit queue is strictly FIFO).
  The caller routes the request normally.
- ``DENY`` -- the account is dry and the tenant's policy is ``deny`` (or its
  credit queue is at ``max_queued``).  The caller fails the request with a
  typed :class:`~repro.sim.events.RequestDenied` -- terminal, never retried,
  no capacity burned.
- ``QUEUE`` -- the request parks in the tenant's credit queue.  The
  controller schedules one ``tenancy:credit_release`` kernel event for the
  instant the refill covers the *head* request, and re-arms it each time it
  fires with work left over -- at most one pending event per tenant, so the
  heap stays bounded.  On release, the owning simulator's
  ``resume_admission`` re-enters routing with the original arrival metadata:
  the credit wait is visible in the request's latency (and SLO attainment),
  exactly like any other queueing delay.

Determinism: releases are kernel events ordered by the standard (time, seq)
tie-break; everything else happens synchronously inside the arrival event
that asked.  A tenant whose bucket cannot refill (rate 0) strands its queue
-- those requests stay *pending* and the conservation law still closes.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.sim.kernel import Event, SimulationKernel
from repro.tenancy.credits import CreditAccount
from repro.tenancy.model import TenantConfig

__all__ = ["AdmissionController", "AdmissionDecision"]


class AdmissionDecision(enum.Enum):
    """What the controller decided about one arrival."""

    ADMIT = "admit"
    DENY = "deny"
    QUEUE = "queue"


class AdmissionController:
    """Per-tenant credit metering over every registered simulator's arrivals."""

    #: Kernel event kind of the deferred credit-release wake-ups.
    EVENT_KIND = "tenancy:credit_release"

    def __init__(self, tenants: Sequence[TenantConfig], start_s: float = 0.0) -> None:
        configs = list(tenants)
        if not configs:
            raise ValueError("at least one tenant is required")
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self._configs: Dict[str, TenantConfig] = {c.name: c for c in configs}
        self._accounts: Dict[str, CreditAccount] = {
            c.name: CreditAccount(
                c.credit_capacity,
                c.credit_refill_per_s,
                initial=c.initial_credits,
                start_s=start_s,
            )
            for c in configs
        }
        #: tenant -> FIFO of (owner name, request args) awaiting credits.
        self._queues: Dict[str, Deque[Tuple[str, tuple]]] = {c.name: deque() for c in configs}
        self._kernel: Optional[SimulationKernel] = None
        self._tenant_of: Dict[str, str] = {}
        self._resumers: Dict[str, object] = {}
        self._queued_by_owner: Dict[str, int] = {}
        # Live per-tenant counters (read by the tenancy report).
        self.admitted: Dict[str, int] = {c.name: 0 for c in configs}
        self.denied: Dict[str, int] = {c.name: 0 for c in configs}
        self.queued_total: Dict[str, int] = {c.name: 0 for c in configs}
        self.resumed: Dict[str, int] = {c.name: 0 for c in configs}
        self.credits_spent: Dict[str, float] = {c.name: 0.0 for c in configs}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def tenant_names(self) -> List[str]:
        """Tenant names in configuration order."""
        return list(self._configs)

    def config(self, tenant: str) -> TenantConfig:
        """The configuration of one tenant."""
        return self._configs[tenant]

    def account(self, tenant: str) -> CreditAccount:
        """The live credit account of one tenant (exposed for tests/reports)."""
        return self._accounts[tenant]

    def attach(self, kernel: SimulationKernel) -> "AdmissionController":
        """Register the credit-release handler on the co-simulation kernel."""
        self._kernel = kernel
        kernel.on(self.EVENT_KIND, self._handle_release)
        return self

    def register(self, owner: str, tenant: str, resumer) -> None:
        """Meter the simulator named ``owner`` against ``tenant``'s account.

        ``resumer`` must expose ``resume_admission(*request_args)`` -- the
        platform simulator re-enters routing there when a credit-parked
        request is released.
        """
        if tenant not in self._configs:
            raise ValueError(f"unknown tenant {tenant!r} (have {list(self._configs)})")
        self._tenant_of[owner] = tenant
        self._resumers[owner] = resumer
        self._queued_by_owner.setdefault(owner, 0)

    def tenant_of(self, owner: str) -> str:
        """Which tenant a registered simulator is metered against."""
        return self._tenant_of[owner]

    # ------------------------------------------------------------------
    # The admission gate
    # ------------------------------------------------------------------

    def admit(self, owner: str, now_s: float, request_args: tuple) -> AdmissionDecision:
        """Decide one arrival of ``owner`` at ``now_s``.

        ``request_args`` are held verbatim for ``QUEUE`` decisions and passed
        back to the owner's ``resume_admission`` when credits free up; they
        are ignored for ``ADMIT``/``DENY``.
        """
        tenant = self._tenant_of[owner]
        config = self._configs[tenant]
        account = self._accounts[tenant]
        queue = self._queues[tenant]
        cost = config.request_cost
        # FIFO: while earlier requests are parked, new ones park behind them
        # even if the balance momentarily covers the cost.
        if not queue and account.try_spend(now_s, cost):
            self.admitted[tenant] += 1
            self.credits_spent[tenant] += cost
            return AdmissionDecision.ADMIT
        if config.on_exhausted == "deny" or (
            config.max_queued is not None and len(queue) >= config.max_queued
        ):
            self.denied[tenant] += 1
            return AdmissionDecision.DENY
        was_empty = not queue
        queue.append((owner, request_args))
        self._queued_by_owner[owner] += 1
        self.queued_total[tenant] += 1
        if was_empty:
            self._arm_release(tenant, now_s, account, cost)
        return AdmissionDecision.QUEUE

    def _arm_release(
        self, tenant: str, now_s: float, account: CreditAccount, cost: float
    ) -> None:
        """Schedule the tenant's (single) pending credit-release wake-up."""
        wait = account.time_until(now_s, cost)
        if wait == float("inf"):
            # The bucket can never cover the head request: the queue strands
            # (its entries stay pending for conservation purposes).
            return
        assert self._kernel is not None, "attach() the controller before admitting"
        self._kernel.schedule_in(wait, self.EVENT_KIND, {"tenant": tenant})

    def _handle_release(self, event: Event) -> None:
        tenant = event.data["tenant"]
        queue = self._queues[tenant]
        if not queue:
            return
        account = self._accounts[tenant]
        cost = self._configs[tenant].request_cost
        now_s = event.time
        while queue and account.try_spend(now_s, cost):
            owner, request_args = queue.popleft()
            self._queued_by_owner[owner] -= 1
            self.admitted[tenant] += 1
            self.resumed[tenant] += 1
            self.credits_spent[tenant] += cost
            self._resumers[owner].resume_admission(*request_args)
        if queue:
            self._arm_release(tenant, now_s, account, cost)

    # ------------------------------------------------------------------
    # Accounting views
    # ------------------------------------------------------------------

    def queued_count(self, owner: str) -> int:
        """Requests of one simulator currently parked in its tenant's credit queue.

        The platform simulator folds this into ``pending_request_count`` so
        credit-parked requests stay inside the conservation law.
        """
        return self._queued_by_owner.get(owner, 0)

    def queue_depth(self, tenant: str) -> int:
        """Requests currently parked in one tenant's credit queue."""
        return len(self._queues[tenant])

    def total_denied(self) -> int:
        """Credit denials across all tenants."""
        return sum(self.denied.values())
