"""Multi-tenant admission control: credits, SLOs, and fairness accounting.

The control plane layered above the closed serving loop (PR 9): tenants own
deployments, a per-tenant token-bucket :class:`~repro.tenancy.credits.CreditAccount`
meters admission *before* fleet capacity is burned
(:class:`~repro.tenancy.admission.AdmissionController`; exhausted buckets
deny -- a typed :class:`~repro.sim.events.RequestDenied` -- or queue, per
tenant policy), and per-tenant SLO attainment, goodput, invoice share and
Jain's fairness index surface in the run summary
(:class:`~repro.tenancy.metrics.TenancyReport`).

Every entry point defaults to *no* tenancy, and with ``tenants=None`` all
simulators take byte-identical pre-tenancy code paths -- the same gating
contract the feedback/retry/observability layers ship under.
"""

from repro.tenancy.admission import AdmissionController, AdmissionDecision
from repro.tenancy.credits import CreditAccount
from repro.tenancy.metrics import TenancyReport, TenantReport, jain_fairness
from repro.tenancy.model import TenantConfig, resolve_tenants

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CreditAccount",
    "TenancyReport",
    "TenantReport",
    "TenantConfig",
    "jain_fairness",
    "resolve_tenants",
]
