"""Token-bucket credit accounting for one tenant.

The account is *lazy*: the balance is materialised only when queried, by
folding the elapsed simulated time into ``balance + elapsed * refill_rate``
(clamped at capacity).  Nothing here touches the kernel -- the
:class:`~repro.tenancy.admission.AdmissionController` owns event scheduling
-- so the account is a pure, deterministic function of (query times, spends).

Float care: a caller that waits exactly :meth:`time_until` and spends again
must succeed, but kernel time arithmetic (``(now + wait) - last``) is not
exact in binary floating point.  :meth:`try_spend` therefore grants a
``1e-9``-credit tolerance, orders of magnitude above the rounding error and
orders of magnitude below any meaningful request cost.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["CreditAccount"]

#: Spend tolerance absorbing float rounding in refill-time round trips.
_SPEND_EPS = 1e-9


class CreditAccount:
    """A lazily-refilled token bucket, in credits.

    Attributes:
        capacity: bucket cap (``inf`` = unmetered: every spend succeeds).
        refill_per_s: refill rate in credits per simulated second.
    """

    __slots__ = ("capacity", "refill_per_s", "_balance", "_last_s")

    def __init__(
        self,
        capacity: float,
        refill_per_s: float = 0.0,
        initial: Optional[float] = None,
        start_s: float = 0.0,
    ) -> None:
        if not capacity > 0:
            raise ValueError("capacity must be > 0 (inf for unmetered)")
        if refill_per_s < 0:
            raise ValueError("refill_per_s must be >= 0")
        if initial is not None and initial < 0:
            raise ValueError("initial must be >= 0 (or None for full)")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._balance = self.capacity if initial is None else min(float(initial), self.capacity)
        self._last_s = float(start_s)

    def _refill(self, now_s: float) -> None:
        if now_s > self._last_s:
            if self.refill_per_s > 0.0 and self._balance < self.capacity:
                self._balance = min(
                    self.capacity, self._balance + (now_s - self._last_s) * self.refill_per_s
                )
            self._last_s = now_s

    def balance(self, now_s: float) -> float:
        """The balance at ``now_s`` (monotonically non-decreasing query times)."""
        self._refill(now_s)
        return self._balance

    def try_spend(self, now_s: float, amount: float) -> bool:
        """Spend ``amount`` credits if affordable at ``now_s``; report success."""
        self._refill(now_s)
        if self._balance + _SPEND_EPS < amount:
            return False
        self._balance = max(self._balance - amount, 0.0)
        return True

    def time_until(self, now_s: float, amount: float) -> float:
        """Seconds until ``amount`` becomes affordable (0 if it already is).

        ``inf`` when the bucket cannot ever afford it (no refill, or the
        amount exceeds capacity) -- the caller must not schedule a wake-up.
        """
        self._refill(now_s)
        if self._balance + _SPEND_EPS >= amount:
            return 0.0
        if self.refill_per_s <= 0.0 or amount > self.capacity + _SPEND_EPS:
            return math.inf
        return (amount - self._balance) / self.refill_per_s
