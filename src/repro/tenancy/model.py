"""Tenant model: who is calling, what they are entitled to, what they expect.

A :class:`TenantConfig` is the control-plane contract for one tenant of the
co-simulated cluster: a credit entitlement (token-bucket capacity and refill
rate metered per admitted request), the policy applied when the bucket runs
dry (deny the request outright, or park it until credits refill), an optional
latency SLO the fairness metrics judge completions against, and a fairness
weight.  Deployments are tagged with a tenant name
(:attr:`repro.cluster.cosim.FunctionDeployment.tenant`); the
:class:`~repro.tenancy.admission.AdmissionController` holds one
:class:`~repro.tenancy.credits.CreditAccount` per tenant and meters every
arrival of every deployment the tenant owns.

:func:`resolve_tenants` is the sweep-grid adapter, following the exact
``resolve_retry`` contract: the mode is ``None`` when the ``tenants`` param
is absent (rows stay byte-identical to pre-tenancy output -- no column at
all), ``"off"`` for an explicit off-cell, or the tenant count for active
cells (tenant configs are then built from the point's ``tenant_*`` params).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple, Union

__all__ = ["TenantConfig", "resolve_tenants"]

#: Valid values of :attr:`TenantConfig.on_exhausted`.
_EXHAUSTION_POLICIES = ("deny", "queue")


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission entitlement and service expectations.

    Attributes:
        name: unique tenant identifier; stamped onto every request record and
            event the tenant's deployments produce.
        credit_capacity: token-bucket capacity in credits.  ``inf`` (the
            default) makes the tenant unmetered: admission always succeeds
            and the run's timings are identical to an untenanted one.
        credit_refill_per_s: bucket refill rate in credits per simulated
            second (lazy refill, clamped at capacity).
        initial_credits: starting balance; ``None`` starts the bucket full.
        request_cost: credits one admission spends.
        on_exhausted: ``"deny"`` fails an unaffordable arrival immediately
            with a typed :class:`~repro.sim.events.RequestDenied` (a
            throttling response -- terminal, never retried); ``"queue"``
            parks it until the bucket refills enough (the wait is visible in
            the request's latency and SLO attainment).
        max_queued: bound on the credit queue under ``on_exhausted="queue"``;
            arrivals beyond it are denied.  ``None`` means unbounded.
        slo_latency_s: client-perceived latency target (completion minus the
            *first* attempt's arrival).  Drives the per-tenant SLO-attainment
            and goodput columns; ``None`` means every completion is goodput.
        weight: fairness weight; Jain's index is computed over
            ``goodput / weight``, so a tenant paying for twice the share is
            expected to get twice the goodput.
    """

    name: str
    credit_capacity: float = math.inf
    credit_refill_per_s: float = 0.0
    initial_credits: Optional[float] = None
    request_cost: float = 1.0
    on_exhausted: str = "deny"
    max_queued: Optional[int] = None
    slo_latency_s: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if "/" in self.name or ":" in self.name:
            raise ValueError(f"tenant name must not contain '/' or ':', got {self.name!r}")
        if not self.credit_capacity > 0:
            raise ValueError("credit_capacity must be > 0 (inf for unmetered)")
        if self.credit_refill_per_s < 0:
            raise ValueError("credit_refill_per_s must be >= 0")
        if self.initial_credits is not None and self.initial_credits < 0:
            raise ValueError("initial_credits must be >= 0 (or None for full)")
        if not self.request_cost > 0:
            raise ValueError("request_cost must be > 0")
        if self.on_exhausted not in _EXHAUSTION_POLICIES:
            raise ValueError(
                f"on_exhausted must be one of {_EXHAUSTION_POLICIES}, got {self.on_exhausted!r}"
            )
        if self.max_queued is not None and self.max_queued < 0:
            raise ValueError("max_queued must be >= 0 (or None for unbounded)")
        if self.slo_latency_s is not None and not self.slo_latency_s > 0:
            raise ValueError("slo_latency_s must be > 0 (or None for no SLO)")
        if not self.weight > 0:
            raise ValueError("weight must be > 0")

    @property
    def unmetered(self) -> bool:
        """Whether admission can never run out of credits."""
        return math.isinf(self.credit_capacity)


def resolve_tenants(
    params: Mapping[str, object],
) -> Tuple[Optional[Union[int, str]], Optional[List[TenantConfig]]]:
    """One sweep grid point's (tenants mode, tenant configs) pair.

    Shared by the analysis sweep runners (``cluster_point``,
    ``backpressure_point``) and the CLI.  The mode is ``None`` when the
    ``tenants`` param is absent -- deliberately distinct from ``"off"``, so
    pre-tenancy grids keep producing byte-identical rows (no ``tenants``
    column at all).  An integer count ``N >= 1`` builds ``N`` identical
    tenants named ``tenant-00 .. tenant-{N-1}`` from the point's optional
    ``tenant_*`` params: ``tenant_credit_capacity`` (default 50),
    ``tenant_credit_refill_per_s`` (default 2), ``tenant_request_cost``
    (default 1), ``tenant_on_exhausted`` (default ``deny``),
    ``tenant_max_queued``, ``tenant_slo_latency_s``.
    """
    mode = params["tenants"] if "tenants" in params else None
    if mode is None:
        return None, None
    if str(mode) == "off":
        return "off", None
    count = int(mode)  # type: ignore[arg-type]
    if count < 1:
        raise ValueError(f"tenants must be >= 1 or 'off', got {mode!r}")
    slo = params.get("tenant_slo_latency_s")
    max_queued = params.get("tenant_max_queued")
    configs = [
        TenantConfig(
            name=f"tenant-{index:02d}",
            credit_capacity=float(params.get("tenant_credit_capacity", 50.0)),  # type: ignore[arg-type]
            credit_refill_per_s=float(params.get("tenant_credit_refill_per_s", 2.0)),  # type: ignore[arg-type]
            request_cost=float(params.get("tenant_request_cost", 1.0)),  # type: ignore[arg-type]
            on_exhausted=str(params.get("tenant_on_exhausted", "deny")),
            max_queued=int(max_queued) if max_queued is not None else None,  # type: ignore[arg-type]
            slo_latency_s=float(slo) if slo is not None else None,  # type: ignore[arg-type]
        )
        for index in range(count)
    ]
    return count, configs
