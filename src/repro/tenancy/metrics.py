"""Per-tenant fairness and SLO metrics over a multi-tenant co-simulation.

Answers the control-plane questions the per-function summaries cannot: who
got starved under backpressure and retry amplification, who met their latency
SLO, and how the bill splits across tenants.  Built once per run by the
cluster host (:meth:`repro.cluster.cosim.ClusterSimulator.run`) from the
per-simulator metrics, the admission controller's counters and the cost
meter's per-tenant invoice buckets.

Definitions:

- **SLO attainment**: fraction of completed requests whose *client-perceived*
  latency (completion minus the first attempt's arrival, so failed attempts
  and client backoff count) met the tenant's
  :attr:`~repro.tenancy.model.TenantConfig.slo_latency_s`.  Tenants without
  a target attain trivially: every completion counts.
- **Goodput**: completions that met the SLO -- the work the tenant actually
  paid for usefully; ``billed_usd / goodput`` is the unit price of useful
  work (retry amplification and SLO misses inflate it).
- **Jain's fairness index** over weight-normalised goodput
  ``x_i = goodput_i / weight_i``: ``(sum x)^2 / (n * sum x^2)``, 1.0 when
  every tenant gets goodput proportional to its weight, ``1/n`` when one
  tenant monopolises the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["TenantReport", "TenancyReport", "jain_fairness"]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``values``.

    1.0 for a perfectly even allocation (including the all-zero one: nobody
    is being favoured when nobody gets anything), down to ``1/n`` when one
    participant takes everything.  ``nan`` for an empty sequence.
    """
    xs = [float(v) for v in values]
    if not xs:
        return float("nan")
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)


@dataclass
class TenantReport:
    """One tenant's aggregate outcome over a run."""

    name: str
    #: Deployments (platform simulators) the tenant owns.
    functions: int
    arrivals: int
    completed: int
    failed: int
    #: Credit denials (terminal, before any capacity was burned).
    denied: int
    #: Ingress/cold-start parked plus credit-queue parked at horizon.
    pending: int
    in_flight: int
    #: The SLO target the attainment below was judged against (``None`` =
    #: no target: every completion attained).
    slo_target_s: Optional[float]
    #: Completions that met the target (== ``completed`` without a target).
    slo_attained: int
    billed_usd: float
    credits_spent: float
    weight: float = 1.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of completions meeting the SLO (``nan`` with none completed)."""
        if not self.completed:
            return float("nan")
        return self.slo_attained / self.completed

    @property
    def goodput(self) -> int:
        """Completions that met the SLO: the tenant's useful work."""
        return self.slo_attained

    @property
    def billed_per_goodput_usd(self) -> float:
        """Unit price of useful work (``nan`` when there was none)."""
        if not self.goodput:
            return float("nan")
        return self.billed_usd / self.goodput

    def conserves(self) -> bool:
        """The per-tenant conservation law at this snapshot."""
        return self.arrivals == (
            self.completed + self.failed + self.denied + self.pending + self.in_flight
        )


@dataclass
class TenancyReport:
    """All tenants' reports plus the cross-tenant fairness aggregates."""

    tenants: List[TenantReport]

    def by_name(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise KeyError(name)

    @property
    def total_denied(self) -> int:
        return sum(t.denied for t in self.tenants)

    def fairness(self) -> float:
        """Jain's index over weight-normalised goodput across tenants."""
        return jain_fairness([t.goodput / t.weight for t in self.tenants])

    def aggregate_slo_attainment(self) -> float:
        """Attained completions over all completions (``nan`` with none)."""
        completed = sum(t.completed for t in self.tenants)
        if not completed:
            return float("nan")
        return sum(t.slo_attained for t in self.tenants) / completed

    def summary_columns(self) -> Dict[str, object]:
        """The sweep/summary columns tenancy-active rows gain.

        Aggregates first, then per-tenant columns keyed
        ``tenant:<name>:<metric>`` in configuration order -- stable keys, so
        CSV headers are deterministic for a fixed tenant population.
        """
        columns: Dict[str, object] = {
            "num_tenants": float(len(self.tenants)),
            "credit_denied_requests": float(self.total_denied),
            "slo_attainment": self.aggregate_slo_attainment(),
            "jain_fairness": self.fairness(),
        }
        for tenant in self.tenants:
            prefix = f"tenant:{tenant.name}:"
            columns[prefix + "arrivals"] = float(tenant.arrivals)
            columns[prefix + "completed"] = float(tenant.completed)
            columns[prefix + "denied"] = float(tenant.denied)
            columns[prefix + "goodput"] = float(tenant.goodput)
            columns[prefix + "slo_attainment"] = tenant.slo_attainment
            columns[prefix + "billed_usd"] = tenant.billed_usd
            columns[prefix + "credits_spent"] = tenant.credits_spent
        return columns
